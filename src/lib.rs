//! # cmap-suite — harnessing exposed terminals in wireless networks
//!
//! A from-scratch Rust reproduction of **CMAP** (Vutukuru, Jamieson,
//! Balakrishnan — *"Harnessing Exposed Terminals in Wireless Networks"*,
//! NSDI 2008): a reactive wireless channel-access protocol that transmits
//! optimistically, learns which pairs of transmissions actually conflict
//! from observed packet loss, and consults that distributed *conflict map*
//! instead of carrier sense.
//!
//! This crate re-exports the whole workspace so applications can depend on
//! one crate:
//!
//! * [`phy`] — 802.11a OFDM rates and the SINR→BER→PER error model
//! * [`wire`] — frame formats (CMAP header/trailer/data/ACK, 802.11)
//! * [`sim`] — the deterministic discrete-event wireless simulator
//! * [`topo`] — 50-node office-testbed generation and link classification
//! * [`mac80211`] — the 802.11 DCF baseline (CS/ACK switches)
//! * [`cmap`] — the CMAP link layer itself
//! * [`experiments`] — the paper's evaluation scenarios (§5)
//! * [`stats`] — CDFs/percentiles used by the figure harness
//! * [`exec`] — the deterministic parallel run executor (`--jobs`)
//!
//! ## Quickstart
//!
//! ```
//! use cmap_suite::prelude::*;
//!
//! // Two strong links whose senders hear each other but whose receivers
//! // don't hear the other sender: the exposed-terminal configuration.
//! let phy = PhyConfig::default();
//! let n = 4;
//! let mut gains = vec![f64::NEG_INFINITY; n * n];
//! let mut set = |a: usize, b: usize, rss_dbm: f64| {
//!     gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
//!     gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
//! };
//! set(0, 1, -60.0); // sender 0 -> receiver 1
//! set(2, 3, -60.0); // sender 2 -> receiver 3
//! set(0, 2, -75.0); // senders in range of each other
//! set(0, 3, -93.0); // cross links weak
//! set(2, 1, -93.0);
//!
//! let medium = MediumBuilder::new(&phy)
//!     .gains_db(n, &gains, &vec![100; n * n])
//!     .build();
//! let mut world = World::builder().medium(medium).phy(phy).seed(7).build();
//! let f1 = world.add_flow(0, 1, 1400);
//! let f2 = world.add_flow(2, 3, 1400);
//! for node in 0..n {
//!     world.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
//! }
//! world.run_until(time::secs(3));
//!
//! let t1 = world.stats().flow_throughput_mbps(f1, 1400, time::secs(1), time::secs(3));
//! let t2 = world.stats().flow_throughput_mbps(f2, 1400, time::secs(1), time::secs(3));
//! assert!(t1 + t2 > 8.0, "exposed pair should run concurrently: {} + {}", t1, t2);
//! ```

pub use cmap_core as cmap;
pub use cmap_exec as exec;
pub use cmap_experiments as experiments;
pub use cmap_mac80211 as mac80211;
pub use cmap_obs as obs;
pub use cmap_phy as phy;
pub use cmap_sim as sim;
pub use cmap_stats as stats;
pub use cmap_topo as topo;
pub use cmap_wire as wire;

/// The names almost every user of the suite needs.
pub mod prelude {
    pub use cmap_core::{CmapConfig, CmapMac};
    pub use cmap_mac80211::{DcfConfig, DcfMac};
    pub use cmap_obs::{CounterId, GaugeId, RunReport, SuiteReport, TraceEvent, TraceSink};
    pub use cmap_phy::Rate;
    pub use cmap_sim::time;
    pub use cmap_sim::{
        FaultPlan, Mac, Medium, MediumBuilder, NodeCtx, NodeId, PhyConfig, Propagation, World,
        WorldBuilder,
    };
    pub use cmap_topo::{LinkMeasurements, Testbed, TestbedParams};
    pub use cmap_wire::{Frame, MacAddr};
}
