//! Summary statistics: mean, standard deviation, percentiles.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Interpolated percentile `p` in `[0, 100]` of an **unsorted** slice.
///
/// Uses the linear-interpolation definition (R-7 / NumPy default).
/// Panics on an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut v: Vec<f64> = xs.to_vec();
    assert!(v.iter().all(|s| !s.is_nan()), "NaN in percentile input");
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)` — 1.0 is perfectly fair,
/// `1/n` is a single winner. Used to compare per-sender throughput shares
/// (Fig 18's concern in a single number).
pub fn jain_index(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "Jain index of empty slice");
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0; // all-zero allocations are (vacuously) fair
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// A one-shot summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a non-empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty slice");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: percentile(xs, 0.0),
            p10: percentile(xs, 10.0),
            p25: percentile(xs, 25.0),
            median: percentile(xs, 50.0),
            p75: percentile(xs, 75.0),
            p90: percentile(xs, 90.0),
            max: percentile(xs, 100.0),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p10={:.3} p25={:.3} med={:.3} p75={:.3} p90={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.p10, self.p25,
            self.median, self.p75, self.p90, self.max
        )
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        // Unsorted input works.
        let ys = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&ys, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample() {
        let xs = [7.5];
        assert_eq!(percentile(&xs, 0.0), 7.5);
        assert_eq!(percentile(&xs, 50.0), 7.5);
        assert_eq!(percentile(&xs, 100.0), 7.5);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p10 < s.p25 && s.p25 < s.median);
        assert!(s.median < s.p75 && s.p75 < s.p90);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn jain_index_bounds_and_extremes() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let single = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((single - 0.25).abs() < 1e-12);
        let mixed = jain_index(&[4.0, 2.0]);
        assert!((0.5..1.0).contains(&mixed));
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
