//! Plain-text rendering of figure data.
//!
//! The benchmark binaries regenerate each paper figure as aligned text: one
//! [`Series`] per curve, combined into a [`Table`] whose first column is the
//! shared x-axis. Output is stable and diff-friendly so EXPERIMENTS.md can
//! quote it directly.

/// One named curve: `(x, y)` points in x order.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"CMAP"` or `"CS, acks"`.
    pub name: String,
    /// Points in ascending x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from a name and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Linear interpolation of y at `x`; clamps outside the domain.
    pub fn interpolate(&self, x: f64) -> f64 {
        assert!(!self.points.is_empty());
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        // Duplicate-x guard: the points carry *identical* stored values when
        // a series repeats an x, so bit equality is the intended test (and
        // avoids an arbitrary epsilon on an arbitrary scale).
        if x1.to_bits() == x0.to_bits() {
            y0
        } else {
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        }
    }
}

/// A multi-curve table sharing one x grid.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Label of the x axis.
    pub x_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Table {
    /// Start a table with the given x-axis label.
    pub fn new(x_label: impl Into<String>) -> Table {
        Table {
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Render as aligned text over a shared x grid of `bins` points from
    /// `lo` to `hi`, interpolating each curve.
    pub fn render_grid(&self, lo: f64, hi: f64, bins: usize) -> String {
        assert!(bins >= 2 && hi > lo);
        let mut out = String::new();
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", truncate(&s.name, 14)));
        }
        out.push('\n');
        for i in 0..bins {
            let x = lo + (hi - lo) * i as f64 / (bins - 1) as f64;
            out.push_str(&format!("{x:>12.3}"));
            for s in &self.series {
                out.push_str(&format!(" {:>14.4}", s.interpolate(x)));
            }
            out.push('\n');
        }
        out
    }

    /// Render each curve's own points (no interpolation): suitable for bar
    /// charts and percentile series with few x values.
    pub fn render_rows(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {:>14}", truncate(&s.name, 14)));
        }
        out.push('\n');
        let xs: Vec<f64> = {
            let mut v: Vec<f64> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(x, _)| x))
                .collect();
            v.sort_by(f64::total_cmp);
            v.dedup();
            v
        };
        for x in xs {
            out.push_str(&format!("{x:>12.3}"));
            for s in &self.series {
                match s
                    .points
                    .iter()
                    .find(|&&(px, _)| px.to_bits() == x.to_bits())
                {
                    Some(&(_, y)) => out.push_str(&format!(" {y:>14.4}")),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn interpolation() {
        let s = Series::new("a", vec![(0.0, 0.0), (10.0, 1.0)]);
        assert_eq!(s.interpolate(-5.0), 0.0);
        assert_eq!(s.interpolate(15.0), 1.0);
        assert!((s.interpolate(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_x_does_not_divide_by_zero() {
        let s = Series::new("a", vec![(1.0, 2.0), (1.0, 3.0), (2.0, 4.0)]);
        let y = s.interpolate(1.0);
        assert!(y == 2.0 || y == 3.0);
    }

    #[test]
    fn grid_render_shape() {
        let mut t = Table::new("x");
        t.push(Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)]));
        t.push(Series::new("down", vec![(0.0, 1.0), (1.0, 0.0)]));
        let text = t.render_grid(0.0, 1.0, 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].contains("up") && lines[0].contains("down"));
        // Middle row: x=0.5, both curves at 0.5.
        assert!(lines[2].matches("0.5000").count() == 2, "{}", lines[2]);
    }

    #[test]
    fn rows_render_marks_missing_points() {
        let mut t = Table::new("N");
        t.push(Series::new("a", vec![(3.0, 1.0), (4.0, 2.0)]));
        t.push(Series::new("b", vec![(3.0, 5.0)]));
        let text = t.render_rows();
        assert!(text.contains('-'), "{text}");
        assert_eq!(text.lines().count(), 3);
    }
}
