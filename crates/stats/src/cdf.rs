//! Empirical cumulative distribution functions.
//!
//! Most of the paper's figures are CDFs of per-configuration throughput.
//! [`Cdf`] wraps a sorted sample and answers the questions the paper asks of
//! them: "what fraction of pairs exceed X Mbit/s", "what is the median",
//! "where does curve A sit relative to curve B at quantile q".

/// An empirical CDF over a non-empty sample.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from any sample order. Panics on empty input or NaNs.
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(!samples.is_empty(), "CDF of empty sample");
        assert!(samples.iter().all(|s| !s.is_nan()), "NaN in CDF input");
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); provided for
    /// clippy-idiomatic pairing with [`Cdf::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)`: fraction of samples `<= x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// Quantile `q` in `[0, 1]` with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::summary::percentile(&self.sorted, q * 100.0)
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Step points `(x, F(x))` of the CDF — one per sample — for plotting or
    /// textual rendering.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Evaluate the CDF on a fixed grid of `bins` points spanning
    /// `[lo, hi]` — used to print aligned multi-curve figures.
    pub fn on_grid(&self, lo: f64, hi: f64, bins: usize) -> Vec<(f64, f64)> {
        assert!(bins >= 2 && hi > lo);
        (0..bins)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (bins - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.5), 0.5);
        assert_eq!(c.fraction_at_or_below(10.0), 1.0);
        assert_eq!(c.fraction_above(2.5), 0.5);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::new((1..=5).map(f64::from).collect());
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.median(), 3.0);
    }

    #[test]
    fn ties_are_counted_inclusively() {
        let c = Cdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.fraction_at_or_below(2.0), 0.75);
        assert_eq!(c.fraction_at_or_below(1.999), 0.0);
    }

    #[test]
    fn points_are_a_step_function() {
        let c = Cdf::new(vec![10.0, 20.0]);
        assert_eq!(c.points(), vec![(10.0, 0.5), (20.0, 1.0)]);
    }

    #[test]
    fn grid_spans_inclusive() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0]);
        let g = c.on_grid(0.0, 4.0, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], (0.0, 0.0));
        assert_eq!(g[4], (4.0, 1.0));
        assert_eq!(g[2].0, 2.0);
        assert!((g[2].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Cdf::new(vec![]);
    }
}
