//! # cmap-stats — statistics toolkit for the evaluation harness
//!
//! Small, dependency-free building blocks used by `cmap-experiments` and the
//! figure-regeneration binaries: summary statistics ([`summary`]), empirical
//! CDFs ([`Cdf`]), and a plain-text renderer for figure series ([`series`]).
//! Every figure in the paper is either a CDF (Figs 12, 13, 15, 16, 18, 20),
//! a scatter (Fig 14), or a mean/percentile series (Figs 17, 19) — these
//! types cover all three.

pub mod cdf;
pub mod series;
pub mod summary;

pub use cdf::Cdf;
pub use series::{Series, Table};
pub use summary::{jain_index, mean, median, percentile, std_dev, Summary};
