//! The workspace's single approved threading module: a deterministic
//! parallel run executor.
//!
//! Every figure in the reproduction suite is a grid of *independent*
//! (parameter-point × seed) simulations. Each job owns its own
//! single-threaded [`World`](../cmap_sim/world/struct.World.html), so the
//! simulations themselves stay strictly deterministic; the only thing the
//! pool parallelises is *which core* a given job happens to run on. Results
//! are joined and reduced in **job-index order**, never completion order,
//! so every downstream artifact (figure reports, `BENCH_repro.json`, trace
//! JSONL) is byte-identical between `jobs = 1` and `jobs = N`.
//!
//! Design constraints (see DESIGN.md §9 "Performance architecture"):
//!
//! * std-only — a fixed-size pool of `std::thread` scoped workers pulling
//!   job indices from a shared cursor and returning `(index, result)`
//!   pairs over an `mpsc` channel. No rayon, no vendored executor.
//! * `jobs == 1` takes a thread-free serial path that is *exactly* the
//!   `items.iter().map(f).collect()` loop the suite ran before the pool
//!   existed, so `--jobs 1` is today's behavior by construction.
//! * The core-count probe ([`default_jobs`]) may consult the machine, but
//!   its answer must never leak into report bytes — callers only use it to
//!   size the pool, and `cmap-lint`'s `thread-spawn` rule confines all
//!   threading primitives to this crate so that stays auditable.
//!
//! Wall-clock use below is confined to harness-side utilization metering
//! (busy-ns per worker) that feeds the `timing`/`loop_profile` section of
//! run reports — the one place wall-clock-derived numbers are allowed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads to use when the caller does not pin one: the
/// machine's available parallelism. Determinism note: this probe influences
/// *scheduling only*; job results are index-joined, so the value never
/// affects (and is never written into) deterministic report bytes.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cumulative pool-utilization counters, kept process-global so the bench
/// harness can report them without threading a handle through every figure.
/// Order-independent sums of per-job contributions: deterministic in value
/// for a fixed workload, except `busy_ns` which is wall-clock-derived and
/// therefore only ever reported inside `timing`-scoped report sections.
static BATCHES: AtomicU64 = AtomicU64::new(0);
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static MAX_WORKERS: AtomicU64 = AtomicU64::new(1);

/// Snapshot of the global pool-utilization counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel batches dispatched (serial `jobs == 1` batches included).
    pub batches: u64,
    /// Total jobs executed across all batches.
    pub jobs_executed: u64,
    /// Summed wall-clock nanoseconds workers spent inside job closures.
    /// Harness-side metering only — never part of deterministic output.
    pub busy_ns: u64,
    /// Largest worker count any batch ran with.
    pub max_workers: u64,
}

/// Read the global utilization counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        batches: BATCHES.load(Ordering::Relaxed),
        jobs_executed: JOBS_EXECUTED.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
        max_workers: MAX_WORKERS.load(Ordering::Relaxed),
    }
}

/// Reset the global utilization counters (test isolation).
pub fn reset_pool_stats() {
    BATCHES.store(0, Ordering::Relaxed);
    JOBS_EXECUTED.store(0, Ordering::Relaxed);
    BUSY_NS.store(0, Ordering::Relaxed);
    MAX_WORKERS.store(1, Ordering::Relaxed);
}

fn note_batch(workers: usize, jobs: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    JOBS_EXECUTED.fetch_add(jobs as u64, Ordering::Relaxed);
    MAX_WORKERS.fetch_max(workers as u64, Ordering::Relaxed);
}

/// A fixed-size deterministic worker pool.
///
/// The pool is cheap to construct (it holds only the configured job count);
/// worker threads are scoped to each [`Pool::map`] call so no threads
/// outlive a batch and borrowed inputs need no `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool that runs up to `jobs` jobs concurrently (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// The configured concurrency.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Map `f` over `items`, returning outputs in **input order** regardless
    /// of which worker finished first. With `jobs == 1` this is a plain
    /// serial loop on the calling thread — byte-for-byte today's behavior.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len().max(1));
        if workers <= 1 {
            note_batch(1, items.len());
            // cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
            let t0 = std::time::Instant::now();
            let out: Vec<R> = items.iter().map(&f).collect();
            BUSY_NS.fetch_add(elapsed_ns(t0), Ordering::Relaxed);
            return out;
        }
        note_batch(workers, items.len());

        // Work distribution: a shared cursor hands out *chunks* of
        // contiguous job indices first-come-first-served (pure scheduling —
        // no effect on results). Chunked claiming plus worker-local result
        // accumulation amortizes the per-job synchronization that made
        // small-job batches slower under `--jobs 2` than serial: one
        // cursor RMW and one `Instant` pair per chunk, and exactly one
        // channel send per worker instead of one per job. The receive side
        // slots results by index, which is what makes the join
        // deterministic.
        let chunk = chunk_size(items.len(), workers);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Vec<(usize, R)>>();
        let f = &f;
        let cursor = &cursor;
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        // cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
                        let t0 = std::time::Instant::now();
                        for (i, item) in items[start..end].iter().enumerate() {
                            local.push((start + i, f(item)));
                        }
                        BUSY_NS.fetch_add(elapsed_ns(t0), Ordering::Relaxed);
                    }
                    if !local.is_empty() {
                        let _ = tx.send(local);
                    }
                });
            }
            drop(tx);
            // Drain inside the scope: if a worker panics it sends nothing,
            // its channel handle closes, we fall out of the loop, and the
            // scope re-raises the worker's panic at join.
            for batch in rx {
                for (i, r) in batch {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect()
    }
}

/// Contiguous indices claimed per cursor bump. 8 chunks per worker keeps
/// claims coarse enough to amortize synchronization while still letting a
/// straggler-heavy tail rebalance across workers.
fn chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers * 8)).max(1)
}

// cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_matches_plain_map() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(Pool::new(1).map(&items, |&x| x * 3 + 1), expect);
    }

    #[test]
    fn parallel_pool_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [2, 3, 4, 8] {
            assert_eq!(Pool::new(jobs).map(&items, |&x| x * x), expect);
        }
    }

    #[test]
    fn parallel_equals_serial_on_stateful_work() {
        // Each job derives from its index only, as real runs derive from
        // their (point, seed) — cross-checks the index-ordered join.
        let items: Vec<usize> = (0..64).collect();
        let work = |&i: &usize| -> u64 {
            let mut acc = i as u64 + 0x9E37_79B9;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            Pool::new(4).map(&items, work),
            Pool::new(1).map(&items, work)
        );
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(
            Pool::new(0).map(&[1, 2, 3], |&x: &i32| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(Pool::new(8).map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn pool_stats_accumulate() {
        reset_pool_stats();
        let items: Vec<u32> = (0..10).collect();
        let _ = Pool::new(2).map(&items, |&x| x);
        let _ = Pool::new(1).map(&items, |&x| x);
        // Other tests in this binary may bump the global counters
        // concurrently, so assert lower bounds only.
        let s = pool_stats();
        assert!(s.batches >= 2);
        assert!(s.jobs_executed >= 20);
        assert!(s.max_workers >= 1);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn chunk_size_is_coarse_but_balanced() {
        // Big batches: several chunks per worker, none empty.
        assert_eq!(chunk_size(64, 2), 4);
        assert_eq!(chunk_size(1000, 4), 31);
        // Small batches: never below one job per claim.
        assert_eq!(chunk_size(3, 2), 1);
        assert_eq!(chunk_size(1, 8), 1);
    }

    #[test]
    fn chunked_claims_cover_ragged_tails() {
        // Lengths straddling chunk boundaries for several worker counts:
        // every index must appear exactly once, in order.
        for jobs in [2, 3, 5] {
            for len in [1usize, 2, 7, 16, 17, 33, 100, 129] {
                let items: Vec<usize> = (0..len).collect();
                let got = Pool::new(jobs).map(&items, |&i| i);
                assert_eq!(got, items, "jobs={jobs} len={len}");
            }
        }
    }
}
