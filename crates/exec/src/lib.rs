//! The workspace's single approved threading module: a deterministic
//! parallel run executor.
//!
//! Every figure in the reproduction suite is a grid of *independent*
//! (parameter-point × seed) simulations. Each job owns its own
//! single-threaded [`World`](../cmap_sim/world/struct.World.html), so the
//! simulations themselves stay strictly deterministic; the only thing the
//! pool parallelises is *which core* a given job happens to run on. Results
//! are joined and reduced in **job-index order**, never completion order,
//! so every downstream artifact (figure reports, `BENCH_repro.json`, trace
//! JSONL) is byte-identical between `jobs = 1` and `jobs = N`.
//!
//! Design constraints (see DESIGN.md §9 "Performance architecture"):
//!
//! * std-only — a fixed-size pool of `std::thread` scoped workers pulling
//!   job indices from a shared cursor and returning `(index, result)`
//!   pairs over an `mpsc` channel. No rayon, no vendored executor.
//! * `jobs == 1` takes a thread-free serial path that is *exactly* the
//!   `items.iter().map(f).collect()` loop the suite ran before the pool
//!   existed, so `--jobs 1` is today's behavior by construction.
//! * The core-count probe ([`default_jobs`]) may consult the machine, but
//!   its answer must never leak into report bytes — callers only use it to
//!   size the pool, and `cmap-lint`'s `thread-spawn` rule confines all
//!   threading primitives to this crate so that stays auditable.
//!
//! Wall-clock use below is confined to harness-side utilization metering
//! (busy-ns per worker) that feeds the `timing`/`loop_profile` section of
//! run reports — the one place wall-clock-derived numbers are allowed.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Number of worker threads to use when the caller does not pin one: the
/// machine's available parallelism. Determinism note: this probe influences
/// *scheduling only*; job results are index-joined, so the value never
/// affects (and is never written into) deterministic report bytes.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cumulative pool-utilization counters, kept process-global so the bench
/// harness can report them without threading a handle through every figure.
/// Order-independent sums of per-job contributions: deterministic in value
/// for a fixed workload, except `busy_ns` which is wall-clock-derived and
/// therefore only ever reported inside `timing`-scoped report sections.
static BATCHES: AtomicU64 = AtomicU64::new(0);
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static MAX_WORKERS: AtomicU64 = AtomicU64::new(1);

/// Snapshot of the global pool-utilization counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel batches dispatched (serial `jobs == 1` batches included).
    pub batches: u64,
    /// Total jobs executed across all batches.
    pub jobs_executed: u64,
    /// Summed wall-clock nanoseconds workers spent inside job closures.
    /// Harness-side metering only — never part of deterministic output.
    pub busy_ns: u64,
    /// Largest worker count any batch ran with.
    pub max_workers: u64,
}

/// Read the global utilization counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        batches: BATCHES.load(Ordering::Relaxed),
        jobs_executed: JOBS_EXECUTED.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
        max_workers: MAX_WORKERS.load(Ordering::Relaxed),
    }
}

/// Reset the global utilization counters (test isolation).
pub fn reset_pool_stats() {
    BATCHES.store(0, Ordering::Relaxed);
    JOBS_EXECUTED.store(0, Ordering::Relaxed);
    BUSY_NS.store(0, Ordering::Relaxed);
    MAX_WORKERS.store(1, Ordering::Relaxed);
}

fn note_batch(workers: usize, jobs: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    JOBS_EXECUTED.fetch_add(jobs as u64, Ordering::Relaxed);
    MAX_WORKERS.fetch_max(workers as u64, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Supervision: catch, retry, quarantine.
// ---------------------------------------------------------------------------

/// Retries granted to a failed job beyond its first attempt. Retries run
/// serially on the coordinator thread in ascending job-index order, round by
/// round — a deterministic, seed- and wall-clock-free backoff ordering (the
/// "backoff" is positional: every other failed job of the round goes first).
pub const RETRY_LIMIT: u32 = 2;

/// Supervision counters, process-global like the pool-utilization counters
/// above. Mirrored into the typed `exec.job_panic` / `exec.job_retry` /
/// `exec.job_quarantined` observability counters by the bench harness.
static JOB_PANICS: AtomicU64 = AtomicU64::new(0);
static JOB_RETRIES: AtomicU64 = AtomicU64::new(0);
static JOB_QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Process-global quarantine log: every job that exhausted its retries, in
/// quarantine order. [`take_quarantined`] drains it; the bench harness does
/// so after each figure so a panicking figure still yields a structured
/// record of exactly which cells failed.
static QUARANTINED: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());

/// Label prefix applied to jobs dispatched through the unlabelled
/// [`Pool::map`] path (e.g. the current figure name, set by `repro_all`).
static JOB_CONTEXT: Mutex<String> = Mutex::new(String::new());

/// One job that failed all of its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the job within its batch.
    pub index: usize,
    /// Human-readable job label (figure/cell identity).
    pub label: String,
    /// Attempts made (first run plus retries).
    pub attempts: u32,
    /// The panic payload of the final attempt.
    pub error: String,
}

impl JobFailure {
    /// One-line description used in panic messages and failure reports.
    pub fn describe(&self) -> String {
        format!(
            "{} (job {}) failed after {} attempts: {}",
            self.label, self.index, self.attempts, self.error
        )
    }
}

/// The jobs of one supervised batch that exhausted all retries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureManifest {
    /// Quarantined jobs in ascending job-index order.
    pub jobs: Vec<JobFailure>,
}

impl FailureManifest {
    /// True when every job of the batch eventually succeeded.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of quarantined jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

/// Snapshot of the process-global supervision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Job attempts that ended in a caught panic (including retries).
    pub panics: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Jobs that exhausted all retries.
    pub quarantined: u64,
}

/// Read the global supervision counters.
pub fn supervision_stats() -> SupervisionStats {
    SupervisionStats {
        panics: JOB_PANICS.load(Ordering::Relaxed),
        retries: JOB_RETRIES.load(Ordering::Relaxed),
        quarantined: JOB_QUARANTINED.load(Ordering::Relaxed),
    }
}

/// Reset the global supervision counters (test isolation).
pub fn reset_supervision_stats() {
    JOB_PANICS.store(0, Ordering::Relaxed);
    JOB_RETRIES.store(0, Ordering::Relaxed);
    JOB_QUARANTINED.store(0, Ordering::Relaxed);
}

/// Set the label prefix for jobs dispatched through [`Pool::map`], which
/// has no per-job label argument of its own. Labels become
/// `"<context>[<index>]"`.
pub fn set_job_context(context: &str) {
    *lock_unpoisoned(&JOB_CONTEXT) = context.to_string();
}

/// The current [`Pool::map`] label prefix (`"job"` when unset).
pub fn job_context() -> String {
    let ctx = lock_unpoisoned(&JOB_CONTEXT);
    if ctx.is_empty() {
        "job".to_string()
    } else {
        ctx.clone()
    }
}

/// Drain the process-global quarantine log.
pub fn take_quarantined() -> Vec<JobFailure> {
    std::mem::take(&mut *lock_unpoisoned(&QUARANTINED))
}

/// Locks survive panics in lock holders: supervision state must stay
/// readable precisely when something panicked.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Render a caught panic payload. `panic!` with a literal yields
/// `&'static str`; `panic!` with a format string yields `String`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one job under `catch_unwind`, translating a panic into its message.
/// `AssertUnwindSafe` is sound here: a failed attempt's partially-mutated
/// captures are never observed — the job either returns a value or is
/// re-run from scratch / quarantined.
fn run_caught<T, R, F>(f: &F, item: &T) -> Result<R, String>
where
    F: Fn(&T) -> R,
{
    match std::panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(r) => Ok(r),
        Err(payload) => {
            JOB_PANICS.fetch_add(1, Ordering::Relaxed);
            Err(panic_message(&*payload))
        }
    }
}

/// A fixed-size deterministic worker pool.
///
/// The pool is cheap to construct (it holds only the configured job count);
/// worker threads are scoped to each [`Pool::map`] call so no threads
/// outlive a batch and borrowed inputs need no `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool that runs up to `jobs` jobs concurrently (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// The configured concurrency.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Worker threads actually spawned for a batch of `len` jobs: the
    /// configured count, but never more than the jobs available and never
    /// more than the machine's cores. Worker count is a scheduling resource
    /// only — oversubscribing (e.g. `--jobs 2` on a single-core box) makes
    /// workers time-slice one core, paying context-switch and cache
    /// overhead for zero added parallelism (measured as a 0.77x slowdown on
    /// the mesh-dissemination figure under exactly that condition). The
    /// result join is index-based, so the clamp can never change report
    /// bytes.
    fn effective_workers(&self, len: usize) -> usize {
        self.jobs.min(default_jobs()).min(len.max(1))
    }

    /// Map `f` over `items`, returning outputs in **input order** regardless
    /// of which worker finished first. With `jobs == 1` this is a plain
    /// serial loop on the calling thread — byte-for-byte today's behavior.
    ///
    /// Jobs run supervised: a panicking job is retried [`RETRY_LIMIT`]
    /// times, and only if every attempt fails does this method panic — with
    /// the job's *label* (see [`set_job_context`]) and final panic message,
    /// after all other jobs completed and the failure was recorded in the
    /// process-global quarantine log. Callers that want to survive failures
    /// use [`Pool::map_supervised`] instead.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let ctx = job_context();
        let (slots, manifest) = self.map_supervised(items, |i| format!("{ctx}[{i}]"), f);
        if let Some(first) = manifest.jobs.first() {
            panic!(
                "{} job(s) quarantined; first: {}",
                manifest.len(),
                first.describe()
            );
        }
        slots
            .into_iter()
            .map(|r| r.expect("supervised job missing result without a failure record"))
            .collect()
    }

    /// Supervised map: like [`Pool::map`], but failures never abort the
    /// batch. Every job runs under `catch_unwind`; panicking jobs are
    /// retried up to [`RETRY_LIMIT`] times serially on the coordinator
    /// thread in ascending job-index order (deterministic backoff — no
    /// seeds, no wall clock), and jobs that fail every attempt are
    /// quarantined. Returns per-job results (`None` exactly for quarantined
    /// jobs) plus the batch's [`FailureManifest`]; quarantined jobs are
    /// also appended to the process-global log drained by
    /// [`take_quarantined`]. `label(i)` is only invoked for failed jobs.
    pub fn map_supervised<T, R, F, L>(
        &self,
        items: &[T],
        label: L,
        f: F,
    ) -> (Vec<Option<R>>, FailureManifest)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        L: Fn(usize) -> String,
    {
        let workers = self.effective_workers(items.len());
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        // (index, last panic message) of jobs whose first attempt failed,
        // kept in ascending index order for the deterministic retry pass.
        let mut failed: Vec<(usize, String)> = Vec::new();

        if workers <= 1 {
            note_batch(1, items.len());
            // cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
            let t0 = std::time::Instant::now();
            for (i, item) in items.iter().enumerate() {
                match run_caught(&f, item) {
                    Ok(r) => slots[i] = Some(r),
                    Err(e) => failed.push((i, e)),
                }
            }
            BUSY_NS.fetch_add(elapsed_ns(t0), Ordering::Relaxed);
        } else {
            note_batch(workers, items.len());

            // Work distribution: a shared cursor hands out *chunks* of
            // contiguous job indices first-come-first-served (pure
            // scheduling — no effect on results). Chunked claiming plus
            // worker-local result accumulation amortizes the per-job
            // synchronization that made small-job batches slower under
            // `--jobs 2` than serial: one cursor RMW and one `Instant` pair
            // per chunk, and exactly one channel send per worker instead of
            // one per job. The receive side slots results by index, which
            // is what makes the join deterministic.
            let chunk = chunk_size(items.len(), workers);
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<Vec<(usize, Result<R, String>)>>();
            let f = &f;
            let cursor = &cursor;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut local: Vec<(usize, Result<R, String>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            // cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
                            let t0 = std::time::Instant::now();
                            for (i, item) in items[start..end].iter().enumerate() {
                                local.push((start + i, run_caught(f, item)));
                            }
                            BUSY_NS.fetch_add(elapsed_ns(t0), Ordering::Relaxed);
                        }
                        if !local.is_empty() {
                            let _ = tx.send(local);
                        }
                    });
                }
                drop(tx);
                // Drain inside the scope. Worker panics cannot happen any
                // more (each job is caught), so every index arrives exactly
                // once; errors are collected for the retry pass below.
                for batch in rx {
                    for (i, r) in batch {
                        match r {
                            Ok(v) => slots[i] = Some(v),
                            Err(e) => failed.push((i, e)),
                        }
                    }
                }
            });
            failed.sort_unstable_by_key(|&(i, _)| i);
        }

        // Retry pass: serial, coordinator-thread, ascending index, round by
        // round — fully deterministic and identical for every pool width.
        for _round in 0..RETRY_LIMIT {
            if failed.is_empty() {
                break;
            }
            let mut still_failed = Vec::new();
            for (i, _prev) in failed {
                JOB_RETRIES.fetch_add(1, Ordering::Relaxed);
                match run_caught(&f, &items[i]) {
                    Ok(r) => slots[i] = Some(r),
                    Err(e) => still_failed.push((i, e)),
                }
            }
            failed = still_failed;
        }

        let mut manifest = FailureManifest::default();
        for (i, e) in failed {
            let failure = JobFailure {
                index: i,
                label: label(i),
                attempts: 1 + RETRY_LIMIT,
                error: e,
            };
            JOB_QUARANTINED.fetch_add(1, Ordering::Relaxed);
            lock_unpoisoned(&QUARANTINED).push(failure.clone());
            manifest.jobs.push(failure);
        }
        (slots, manifest)
    }
}

/// Contiguous indices claimed per cursor bump. 8 chunks per worker keeps
/// claims coarse enough to amortize synchronization while still letting a
/// straggler-heavy tail rebalance across workers.
fn chunk_size(len: usize, workers: usize) -> usize {
    (len / (workers * 8)).max(1)
}

// cmap-lint: allow(wall-clock) — harness-side pool busy metering, timing-scoped only
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_matches_plain_map() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(Pool::new(1).map(&items, |&x| x * 3 + 1), expect);
    }

    #[test]
    fn parallel_pool_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [2, 3, 4, 8] {
            assert_eq!(Pool::new(jobs).map(&items, |&x| x * x), expect);
        }
    }

    #[test]
    fn parallel_equals_serial_on_stateful_work() {
        // Each job derives from its index only, as real runs derive from
        // their (point, seed) — cross-checks the index-ordered join.
        let items: Vec<usize> = (0..64).collect();
        let work = |&i: &usize| -> u64 {
            let mut acc = i as u64 + 0x9E37_79B9;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(
            Pool::new(4).map(&items, work),
            Pool::new(1).map(&items, work)
        );
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(
            Pool::new(0).map(&[1, 2, 3], |&x: &i32| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(Pool::new(8).map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn pool_stats_accumulate() {
        reset_pool_stats();
        let items: Vec<u32> = (0..10).collect();
        let _ = Pool::new(2).map(&items, |&x| x);
        let _ = Pool::new(1).map(&items, |&x| x);
        // Other tests in this binary may bump the global counters
        // concurrently, so assert lower bounds only.
        let s = pool_stats();
        assert!(s.batches >= 2);
        assert!(s.jobs_executed >= 20);
        assert!(s.max_workers >= 1);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn effective_workers_clamps_to_cores_and_batch() {
        let cores = default_jobs();
        // Oversubscription is capped at the core count: asking for more
        // workers than cores must not spawn them.
        assert_eq!(Pool::new(usize::MAX).effective_workers(1000), cores.min(1000));
        assert_eq!(Pool::new(cores + 7).effective_workers(1000), cores.min(1000));
        // Never more workers than jobs, and always at least one.
        assert_eq!(Pool::new(8).effective_workers(1), 1);
        assert_eq!(Pool::new(1).effective_workers(0), 1);
        assert_eq!(Pool::new(1).effective_workers(1000), 1);
    }

    /// Serializes tests that touch the process-global quarantine log and
    /// job-context label, so drains don't steal each other's entries.
    static SUPERVISION_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn supervised_map_quarantines_and_completes() {
        let _guard = lock_unpoisoned(&SUPERVISION_TEST_LOCK);
        let items: Vec<u32> = (0..20).collect();
        for jobs in [1, 4] {
            let (slots, manifest) = Pool::new(jobs).map_supervised(
                &items,
                |i| format!("cell[{i}]"),
                |&x| {
                    if x == 7 || x == 13 {
                        panic!("boom {x}");
                    }
                    x * 2
                },
            );
            // Both failing cells quarantined, ascending index order, with
            // label / attempts / final panic message recorded.
            assert_eq!(manifest.len(), 2, "jobs={jobs}");
            assert_eq!(manifest.jobs[0].index, 7);
            assert_eq!(manifest.jobs[0].label, "cell[7]");
            assert_eq!(manifest.jobs[0].attempts, 1 + RETRY_LIMIT);
            assert_eq!(manifest.jobs[0].error, "boom 7");
            assert_eq!(manifest.jobs[1].index, 13);
            // Every other cell still produced its result.
            for (i, slot) in slots.iter().enumerate() {
                if i == 7 || i == 13 {
                    assert!(slot.is_none(), "jobs={jobs} i={i}");
                } else {
                    assert_eq!(*slot, Some(items[i] * 2), "jobs={jobs} i={i}");
                }
            }
            let drained = take_quarantined();
            assert!(drained.iter().any(|j| j.label == "cell[7]"));
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let _guard = lock_unpoisoned(&SUPERVISION_TEST_LOCK);
        let attempts = AtomicU64::new(0);
        let items = [42u32];
        let (slots, manifest) = Pool::new(1).map_supervised(
            &items,
            |i| format!("t[{i}]"),
            |&x| {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                x
            },
        );
        assert!(manifest.is_empty());
        assert_eq!(slots, vec![Some(42)]);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        assert!(take_quarantined().is_empty());
    }

    #[test]
    fn map_panics_with_job_label_after_quarantine() {
        let _guard = lock_unpoisoned(&SUPERVISION_TEST_LOCK);
        set_job_context("fig_demo");
        let items: Vec<u32> = (0..4).collect();
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Pool::new(1).map(&items, |&x| {
                if x == 2 {
                    panic!("dead cell");
                }
                x
            })
        }))
        .unwrap_err();
        set_job_context("");
        let msg = panic_message(&*payload);
        assert!(msg.contains("fig_demo[2]"), "panic message: {msg}");
        assert!(msg.contains("dead cell"), "panic message: {msg}");
        let drained = take_quarantined();
        assert!(drained
            .iter()
            .any(|j| j.label == "fig_demo[2]" && j.index == 2));
    }

    #[test]
    fn supervision_counters_accumulate() {
        let _guard = lock_unpoisoned(&SUPERVISION_TEST_LOCK);
        let before = supervision_stats();
        let items = [1u32];
        let (_slots, manifest) = Pool::new(1).map_supervised(
            &items,
            |i| format!("q[{i}]"),
            |_| -> u32 { panic!("always fails") },
        );
        assert_eq!(manifest.len(), 1);
        // Other tests in this binary may bump the globals concurrently, so
        // assert lower bounds only.
        let after = supervision_stats();
        assert!(after.panics >= before.panics + 1 + u64::from(RETRY_LIMIT));
        assert!(after.retries >= before.retries + u64::from(RETRY_LIMIT));
        assert!(after.quarantined > before.quarantined);
        let _ = take_quarantined();
    }

    #[test]
    fn chunk_size_is_coarse_but_balanced() {
        // Big batches: several chunks per worker, none empty.
        assert_eq!(chunk_size(64, 2), 4);
        assert_eq!(chunk_size(1000, 4), 31);
        // Small batches: never below one job per claim.
        assert_eq!(chunk_size(3, 2), 1);
        assert_eq!(chunk_size(1, 8), 1);
    }

    #[test]
    fn chunked_claims_cover_ragged_tails() {
        // Lengths straddling chunk boundaries for several worker counts:
        // every index must appear exactly once, in order.
        for jobs in [2, 3, 5] {
            for len in [1usize, 2, 7, 16, 17, 33, 100, 129] {
                let items: Vec<usize> = (0..len).collect();
                let got = Pool::new(jobs).map(&items, |&i| i);
                assert_eq!(got, items, "jobs={jobs} len={len}");
            }
        }
    }
}
