//! Radio/PHY configuration shared by every node in a world.

/// Physical-layer configuration for a simulated world.
///
/// Defaults are calibrated to a commodity 5 GHz 802.11a card (Atheros
/// AR5212-class, as in the paper's testbed).
#[derive(Debug, Clone)]
pub struct PhyConfig {
    /// Transmit power in dBm (fixed network-wide; the paper assumes all
    /// sources always transmit at the same power level, note 2).
    pub tx_power_dbm: f64,
    /// Receiver noise floor in dBm (thermal + noise figure).
    pub noise_floor_dbm: f64,
    /// Minimum RSS for a receiver to even attempt preamble lock.
    pub sensitivity_dbm: f64,
    /// Energy-detect carrier-sense threshold in dBm: the medium reads busy
    /// when total received energy exceeds this, even without a decodable
    /// preamble (802.11 CCA-ED; only DCF consults it).
    pub ed_threshold_dbm: f64,
    /// Preamble-detection carrier-sense threshold in dBm. Real CCA asserts
    /// busy on training-sequence correlation well below the level needed to
    /// *decode* a frame — this is why carrier sense reaches 1.5–3x the data
    /// range and is "too conservative" (the paper's premise). The radio
    /// reports busy when total in-band energy exceeds this even without a
    /// lock. Only DCF consults CCA; CMAP ignores it by design.
    pub cs_detect_dbm: f64,
    /// Preamble capture: a frame arriving while another frame's
    /// preamble/SIGNAL is still being received steals the lock if it is at
    /// least this many dB stronger.
    pub capture_margin_db: f64,
    /// Enable preamble capture at all.
    pub preamble_capture: bool,
    /// Message-in-message capture: a frame arriving *after* the locked
    /// frame's preamble window still steals the lock if it is at least
    /// `mim_margin_db` stronger (the OFDM receiver restarts on the louder
    /// preamble). Atheros-era hardware does this, and the paper's exposed
    /// terminals depend on it: the ACK from R must punch through at S while
    /// S's radio is chewing on ES's (much weaker) transmission.
    pub mim_capture: bool,
    /// Strength margin for message-in-message capture, in dB.
    pub mim_margin_db: f64,
    /// Standard deviation (dB) of the per-frame, per-receiver lognormal
    /// fading applied on top of the frozen link gain. Softens the otherwise
    /// knife-edge PER-vs-SINR curve the way real multipath does.
    pub fading_sigma_db: f64,
    /// Probability that a frame instead experiences an *upfade* burst:
    /// fading drawn as `N(fading_boost_db, fading_sigma_db)`. Models the
    /// occasional constructive multipath/temporal alignment that gives
    /// far-away pairs trace connectivity — the paper's testbed has a large
    /// population of links with PRR barely above zero (§5.1).
    pub fading_boost_prob: f64,
    /// Mean of the upfade component in dB.
    pub fading_boost_db: f64,
    /// If true (default, matching MadWifi with carrier sense disabled), a
    /// node that starts transmitting while mid-reception aborts that
    /// reception. If false, `transmit` fails while receiving.
    pub abort_rx_on_tx: bool,
    /// Frames arriving below this RSS are not even generated as events at
    /// the receiver (they would change the noise level by well under a dB).
    pub delivery_floor_dbm: f64,
}

impl Default for PhyConfig {
    fn default() -> PhyConfig {
        PhyConfig {
            tx_power_dbm: 15.0,
            noise_floor_dbm: cmap_phy::NOISE_FLOOR_DBM,
            sensitivity_dbm: -95.0,
            ed_threshold_dbm: -62.0,
            cs_detect_dbm: -98.0,
            capture_margin_db: 10.0,
            preamble_capture: true,
            mim_capture: true,
            mim_margin_db: 10.0,
            fading_sigma_db: 2.0,
            fading_boost_prob: 0.08,
            fading_boost_db: 18.0,
            abort_rx_on_tx: true,
            delivery_floor_dbm: -105.0,
        }
    }
}

impl PhyConfig {
    /// Noise floor in linear milliwatts.
    pub fn noise_mw(&self) -> f64 {
        cmap_phy::dbm_to_mw(self.noise_floor_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_internally_consistent() {
        let c = PhyConfig::default();
        assert!(c.delivery_floor_dbm < c.sensitivity_dbm);
        assert!(c.sensitivity_dbm < c.ed_threshold_dbm);
        assert!(c.cs_detect_dbm < c.sensitivity_dbm);
        assert!(c.delivery_floor_dbm < c.cs_detect_dbm);
        assert!(c.noise_floor_dbm < c.sensitivity_dbm + 5.0);
        assert!(c.capture_margin_db > 0.0);
    }
}
