//! The shared wireless medium: who hears whom, and how loudly.
//!
//! A [`Medium`] is an `n × n` matrix of frozen large-scale channel gains
//! (path loss + shadowing, computed by `cmap-topo` or built directly in
//! tests) plus per-link propagation delays. It pre-computes, for every
//! transmitter, the list of nodes whose received power would exceed the
//! delivery floor — the only nodes for which frame events are generated.

use crate::config::PhyConfig;
use crate::world::NodeId;
use cmap_phy::{dbm_to_mw, mw_to_dbm};

/// Frozen large-scale channel state between every pair of nodes.
///
/// The per-transmitter reachability lists are stored in CSR form — one flat
/// index array plus `n + 1` offsets — instead of a `Vec<Vec<NodeId>>`, so
/// the fan-out walk at every transmission start reads one contiguous slice
/// with no per-transmitter pointer chase.
#[derive(Debug, Clone)]
pub struct Medium {
    n: usize,
    /// Linear power gain from tx to rx, row-major `[tx * n + rx]`.
    gain: Vec<f64>,
    /// Propagation delay in ns, same layout.
    delay_ns: Vec<u64>,
    /// Receivers above the delivery floor, all transmitters concatenated.
    reach_idx: Vec<NodeId>,
    /// CSR offsets: tx's receivers are `reach_idx[reach_off[tx]..reach_off[tx + 1]]`.
    reach_off: Vec<u32>,
    tx_power_mw: f64,
}

impl Medium {
    /// Build a medium from a matrix of link gains in dB (negative = loss),
    /// row-major `[tx * n + rx]`, and per-link delays in nanoseconds.
    /// Diagonal entries are ignored.
    pub fn from_gains_db(n: usize, gains_db: &[f64], delay_ns: &[u64], phy: &PhyConfig) -> Medium {
        assert_eq!(gains_db.len(), n * n, "gain matrix must be n*n");
        assert_eq!(delay_ns.len(), n * n, "delay matrix must be n*n");
        let gain: Vec<f64> = gains_db.iter().map(|&db| dbm_to_mw(db)).collect();
        let tx_power_mw = dbm_to_mw(phy.tx_power_dbm);
        let floor_mw = dbm_to_mw(phy.delivery_floor_dbm);
        let mut reach_idx = Vec::new();
        let mut reach_off = Vec::with_capacity(n + 1);
        reach_off.push(0u32);
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx && tx_power_mw * gain[tx * n + rx] >= floor_mw {
                    reach_idx.push(rx);
                }
            }
            reach_off.push(u32::try_from(reach_idx.len()).expect("reachability fits u32"));
        }
        Medium {
            n,
            gain,
            delay_ns: delay_ns.to_vec(),
            reach_idx,
            reach_off,
            tx_power_mw,
        }
    }

    /// A medium where every pair of distinct nodes has the same gain and a
    /// 100 ns delay. Handy in unit tests.
    pub fn uniform(n: usize, gain_db: f64, phy: &PhyConfig) -> Medium {
        let mut gains = vec![gain_db; n * n];
        for i in 0..n {
            gains[i * n + i] = f64::NEG_INFINITY;
        }
        let delays = vec![100u64; n * n];
        Medium::from_gains_db(n, &gains, &delays, phy)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Linear gain from `tx` to `rx`.
    pub fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        debug_assert!(
            tx < self.n && rx < self.n,
            "gain({tx}, {rx}) out of bounds for {} nodes",
            self.n
        );
        self.gain[tx * self.n + rx]
    }

    /// Received power in linear mW at `rx` from a transmission by `tx`,
    /// before fading.
    pub fn rss_mw(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.tx_power_mw * self.gain(tx, rx)
    }

    /// Received power in dBm at `rx` from `tx`, before fading.
    pub fn rss_dbm(&self, tx: NodeId, rx: NodeId) -> f64 {
        mw_to_dbm(self.rss_mw(tx, rx))
    }

    /// Received power in mW with a time-varying dB offset applied on top of
    /// the frozen gain — the fault-injection hook for Gilbert–Elliott burst
    /// loss and stepped shadowing (negative offset = extra loss).
    pub fn rss_mw_with_db_offset(&self, tx: NodeId, rx: NodeId, offset_db: f64) -> f64 {
        self.rss_mw(tx, rx) * cmap_phy::units::db_to_ratio(offset_db)
    }

    /// Propagation delay from `tx` to `rx` in nanoseconds.
    pub fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64 {
        debug_assert!(
            tx < self.n && rx < self.n,
            "delay_ns({tx}, {rx}) out of bounds for {} nodes",
            self.n
        );
        self.delay_ns[tx * self.n + rx]
    }

    /// Receivers that get events for transmissions from `tx`, in ascending
    /// node order (one contiguous CSR slice).
    pub fn reachable(&self, tx: NodeId) -> &[NodeId] {
        &self.reach_idx[self.reach_off[tx] as usize..self.reach_off[tx + 1] as usize]
    }

    /// Configured transmit power in linear mW.
    pub fn tx_power_mw(&self) -> f64 {
        self.tx_power_mw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_medium_reaches_everyone() {
        let phy = PhyConfig::default();
        let m = Medium::uniform(4, -80.0, &phy);
        assert_eq!(m.len(), 4);
        for tx in 0..4 {
            let mut r = m.reachable(tx).to_vec();
            r.sort_unstable();
            let expect: Vec<NodeId> = (0..4).filter(|&x| x != tx).collect();
            assert_eq!(r, expect);
            // 15 dBm - 80 dB = -65 dBm at each receiver.
            for rx in 0..4 {
                if rx != tx {
                    assert!((m.rss_dbm(tx, rx) + 65.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn weak_links_fall_below_delivery_floor() {
        let phy = PhyConfig::default();
        // 15 dBm - 125 dB = -110 dBm, below the -105 dBm delivery floor.
        let gains = vec![f64::NEG_INFINITY, -125.0, -80.0, f64::NEG_INFINITY];
        let m = Medium::from_gains_db(2, &gains, &[0, 10, 10, 0], &phy);
        assert!(m.reachable(0).is_empty());
        assert_eq!(m.reachable(1), &[0]);
    }

    #[test]
    fn asymmetric_gains_are_respected() {
        let phy = PhyConfig::default();
        let gains = vec![f64::NEG_INFINITY, -70.0, -90.0, f64::NEG_INFINITY];
        let m = Medium::from_gains_db(2, &gains, &[0, 33, 33, 0], &phy);
        assert!(m.rss_dbm(0, 1) > m.rss_dbm(1, 0));
        assert_eq!(m.delay_ns(0, 1), 33);
    }

    #[test]
    fn delays_are_directional() {
        // A waveguide-ish link: the two directions carry different delays
        // (row-major [tx * n + rx]), and the accessor must not mix them up.
        let phy = PhyConfig::default();
        let gains = vec![f64::NEG_INFINITY, -70.0, -70.0, f64::NEG_INFINITY];
        let m = Medium::from_gains_db(2, &gains, &[0, 120, 450, 0], &phy);
        assert_eq!(m.delay_ns(0, 1), 120);
        assert_eq!(m.delay_ns(1, 0), 450);
        assert_eq!(m.delay_ns(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_delay_is_caught() {
        let phy = PhyConfig::default();
        let m = Medium::uniform(2, -70.0, &phy);
        let _ = m.delay_ns(0, 2);
    }
}
