//! The shared wireless medium: who hears whom, and how loudly.
//!
//! The medium layer is built around the sealed [`Propagation`] trait —
//! gain, delay, reachability and spatial neighborhood queries — with two
//! engines behind the [`Medium`] enum:
//!
//! * [`DenseMedium`] — the original `n × n` matrix of frozen large-scale
//!   channel gains (path loss + shadowing, computed by `cmap-topo` or
//!   built directly in tests) plus per-link propagation delays. Exact,
//!   O(n²) memory; the regression baseline at testbed scale (≤ 50
//!   nodes), byte-identical to the pre-redesign engine.
//! * [`SparseMedium`] — CSR link lists over a uniform-grid spatial
//!   index. Links whose received power falls below the delivery floor
//!   *plus a configurable epsilon margin* are pruned at build time, and
//!   the worst-case interference power dropped at any receiver is
//!   recorded as an error bound ([`SparseStats`]) so run artifacts can
//!   state exactly how much physics the pruning discarded. Memory and
//!   event fan-out scale with the *link* count, which is what makes
//!   10k–100k-node deployments tractable.
//!
//! Both engines pre-compute, for every transmitter, the list of nodes
//! whose received power clears the pruning threshold — the only nodes
//! for which frame events are generated.
//!
//! Construction goes through [`MediumBuilder`]; the old free
//! constructors (`Medium::from_gains_db`, `Medium::uniform`) survive one
//! PR cycle as deprecated shims.

use crate::config::PhyConfig;
use crate::node::NodeId;
use cmap_phy::units::{db_to_ratio, SPEED_OF_LIGHT_M_PER_S};
use cmap_phy::{dbm_to_mw, mw_to_dbm, propagation};

mod sealed {
    /// Seals [`super::Propagation`]: the engine's event fan-out and
    /// grading paths are validated against exactly these
    /// implementations, so downstream crates may *call* the trait but
    /// not implement it.
    pub trait Sealed {}
    impl Sealed for super::DenseMedium {}
    impl Sealed for super::SparseMedium {}
    impl Sealed for super::Medium {}
}

/// Frozen large-scale propagation state between every pair of nodes.
///
/// Sealed: implemented by [`DenseMedium`], [`SparseMedium`] and the
/// dispatching [`Medium`] enum only. All power quantities are linear mW
/// (gains are linear power ratios); conversions to dB happen at the
/// edges.
pub trait Propagation: sealed::Sealed {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// True when the medium has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured transmit power in linear mW.
    fn tx_power_mw(&self) -> f64;

    /// Linear power gain from `tx` to `rx`. For a pruned (sparse) link
    /// this is exactly `0.0` — the link contributes no energy.
    fn gain(&self, tx: NodeId, rx: NodeId) -> f64;

    /// Propagation delay from `tx` to `rx` in nanoseconds. Pruned links
    /// report `0` (they generate no events, so the value is never used
    /// on the simulation path).
    fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64;

    /// Receivers that get events for transmissions from `tx`, in
    /// ascending node order (one contiguous CSR slice).
    fn reachable(&self, tx: NodeId) -> &[NodeId];

    /// Append every *other* node within `radius_m` metres of `node` to
    /// `out`, in ascending node order. [`SparseMedium`] answers from its
    /// grid index; [`DenseMedium`] has no coordinates and derives
    /// distance from the stored propagation delay (quantized to the
    /// ~0.3 m the delay's whole-nanosecond rounding allows).
    fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>);

    /// Received power in linear mW at `rx` from a transmission by `tx`,
    /// before fading.
    fn rss_mw(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.tx_power_mw() * self.gain(tx, rx)
    }

    /// Received power in dBm at `rx` from `tx`, before fading.
    fn rss_dbm(&self, tx: NodeId, rx: NodeId) -> f64 {
        mw_to_dbm(self.rss_mw(tx, rx))
    }

    /// Received power in mW with a time-varying dB offset applied on top
    /// of the frozen gain — the fault-injection hook for Gilbert–Elliott
    /// burst loss and stepped shadowing (negative offset = extra loss).
    fn rss_mw_with_db_offset(&self, tx: NodeId, rx: NodeId, offset_db: f64) -> f64 {
        self.rss_mw(tx, rx) * db_to_ratio(offset_db)
    }
}

/// Metres of free-space travel per nanosecond of propagation delay (the
/// inverse of [`propagation::propagation_delay_ns`]'s rate).
const METRES_PER_NS: f64 = SPEED_OF_LIGHT_M_PER_S * 1e-9;

// ---- dense engine --------------------------------------------------------

/// The exact `n × n` medium: every pair's gain and delay is stored.
///
/// The per-transmitter reachability lists are stored in CSR form — one
/// flat index array plus `n + 1` offsets — instead of a
/// `Vec<Vec<NodeId>>`, so the fan-out walk at every transmission start
/// reads one contiguous slice with no per-transmitter pointer chase.
#[derive(Debug, Clone)]
pub struct DenseMedium {
    n: usize,
    /// Linear power gain from tx to rx, row-major `[tx * n + rx]`.
    gain: Vec<f64>,
    /// Propagation delay in ns, same layout.
    delay_ns: Vec<u64>,
    /// Receivers above the delivery floor, all transmitters concatenated.
    reach_idx: Vec<NodeId>,
    /// CSR offsets: tx's receivers are `reach_idx[reach_off[tx]..reach_off[tx + 1]]`.
    reach_off: Vec<u32>,
    tx_power_mw: f64,
}

impl DenseMedium {
    /// Build from a matrix of link gains in dB (negative = loss),
    /// row-major `[tx * n + rx]`, and per-link delays in nanoseconds.
    /// Diagonal entries are ignored.
    pub fn from_gains_db(
        n: usize,
        gains_db: &[f64],
        delay_ns: &[u64],
        phy: &PhyConfig,
    ) -> DenseMedium {
        assert_eq!(gains_db.len(), n * n, "gain matrix must be n*n");
        assert_eq!(delay_ns.len(), n * n, "delay matrix must be n*n");
        let gain: Vec<f64> = gains_db.iter().map(|&db| dbm_to_mw(db)).collect();
        let tx_power_mw = dbm_to_mw(phy.tx_power_dbm);
        let floor_mw = dbm_to_mw(phy.delivery_floor_dbm);
        let mut reach_idx = Vec::new();
        let mut reach_off = Vec::with_capacity(n + 1);
        reach_off.push(0u32);
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx && tx_power_mw * gain[tx * n + rx] >= floor_mw {
                    reach_idx.push(NodeId::new(rx));
                }
            }
            reach_off.push(u32::try_from(reach_idx.len()).expect("reachability fits u32"));
        }
        DenseMedium {
            n,
            gain,
            delay_ns: delay_ns.to_vec(),
            reach_idx,
            reach_off,
            tx_power_mw,
        }
    }

    /// A medium where every pair of distinct nodes has the same gain and
    /// a 100 ns delay. Handy in unit tests.
    pub fn uniform(n: usize, gain_db: f64, phy: &PhyConfig) -> DenseMedium {
        let mut gains = vec![gain_db; n * n];
        for i in 0..n {
            gains[i * n + i] = f64::NEG_INFINITY;
        }
        let delays = vec![100u64; n * n];
        DenseMedium::from_gains_db(n, &gains, &delays, phy)
    }
}

impl Propagation for DenseMedium {
    fn len(&self) -> usize {
        self.n
    }

    fn tx_power_mw(&self) -> f64 {
        self.tx_power_mw
    }

    fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        debug_assert!(
            tx.index() < self.n && rx.index() < self.n,
            "DenseMedium::gain(tx {tx}, rx {rx}) out of bounds for {} nodes",
            self.n
        );
        self.gain[tx.index() * self.n + rx.index()]
    }

    fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64 {
        debug_assert!(
            tx.index() < self.n && rx.index() < self.n,
            "DenseMedium::delay_ns(tx {tx}, rx {rx}) out of bounds for {} nodes",
            self.n
        );
        self.delay_ns[tx.index() * self.n + rx.index()]
    }

    fn reachable(&self, tx: NodeId) -> &[NodeId] {
        &self.reach_idx
            [self.reach_off[tx.index()] as usize..self.reach_off[tx.index() + 1] as usize]
    }

    fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>) {
        out.clear();
        for rx in 0..self.n {
            if rx == node.index() {
                continue;
            }
            let d_ns = self.delay_ns[node.index() * self.n + rx];
            // cmap-lint: allow(unit-cast) — delay→distance conversion is this function's contract; METRES_PER_NS carries the units
            if d_ns as f64 * METRES_PER_NS <= radius_m {
                out.push(NodeId::new(rx));
            }
        }
    }
}

// ---- sparse engine -------------------------------------------------------

/// Build-time accounting of what sparse pruning discarded, recorded in
/// run artifacts so a pruned run states its own physics error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseStats {
    /// Directed links kept (above the pruning threshold).
    pub links: u64,
    /// Directed links evaluated but pruned while a dense medium would
    /// have kept them (received power in `[delivery floor, threshold)`).
    pub pruned: u64,
    /// Directed pairs never evaluated (outside the spatial candidate
    /// range of a generator-fed build); bounded by the tail gain.
    pub tail_pairs: u64,
    /// The configured pruning margin above the delivery floor, in dB.
    pub epsilon_db: f64,
    /// Worst-case accumulated interference power dropped at any single
    /// receiver, expressed as the SINR-denominator inflation it could
    /// cause: `10·log10(1 + max_rx dropped_mw / noise_mw)` dB. `0.0`
    /// when epsilon is zero and every pair was evaluated.
    pub error_bound_db: f64,
}

/// Uniform-grid spatial index over node positions.
#[derive(Debug, Clone)]
struct Grid {
    cell_m: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// CSR buckets: cell `c`'s nodes are `nodes[off[c]..off[c + 1]]`,
    /// ascending.
    off: Vec<u32>,
    nodes: Vec<NodeId>,
    pos: Vec<(f64, f64)>,
}

impl Grid {
    fn build(pos: &[(f64, f64)], cell_m: f64) -> Grid {
        assert!(cell_m > 0.0, "grid cell must be positive");
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in pos {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        if pos.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let cols = (((max_x - min_x) / cell_m).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell_m).floor() as usize + 1).max(1);
        // Counting sort into CSR buckets: two passes, no per-cell Vec.
        let cell_of = |x: f64, y: f64| {
            let cx = (((x - min_x) / cell_m).floor() as usize).min(cols - 1);
            let cy = (((y - min_y) / cell_m).floor() as usize).min(rows - 1);
            cy * cols + cx
        };
        let mut counts = vec![0u32; cols * rows + 1];
        for &(x, y) in pos {
            counts[cell_of(x, y) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let off = counts.clone();
        let mut cursor = counts;
        let mut nodes = vec![NodeId::default(); pos.len()];
        for (i, &(x, y)) in pos.iter().enumerate() {
            let c = cell_of(x, y);
            nodes[cursor[c] as usize] = NodeId::new(i);
            cursor[c] += 1;
        }
        Grid {
            cell_m,
            min_x,
            min_y,
            cols,
            rows,
            off,
            nodes,
            pos: pos.to_vec(),
        }
    }

    fn dist_m(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.pos[a.index()];
        let (bx, by) = self.pos[b.index()];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Nodes (other than `node`) within `radius_m`, appended to `out` in
    /// ascending node order.
    fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let (x, y) = self.pos[node.index()];
        let reach = (radius_m / self.cell_m).ceil() as isize;
        let cx = (((x - self.min_x) / self.cell_m).floor() as usize).min(self.cols - 1) as isize;
        let cy = (((y - self.min_y) / self.cell_m).floor() as usize).min(self.rows - 1) as isize;
        let r2 = radius_m * radius_m;
        for gy in (cy - reach).max(0)..=(cy + reach).min(self.rows as isize - 1) {
            for gx in (cx - reach).max(0)..=(cx + reach).min(self.cols as isize - 1) {
                let c = gy as usize * self.cols + gx as usize;
                for &other in &self.nodes[self.off[c] as usize..self.off[c + 1] as usize] {
                    if other == node {
                        continue;
                    }
                    let (ox, oy) = self.pos[other.index()];
                    if (ox - x).powi(2) + (oy - y).powi(2) <= r2 {
                        out.push(other);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

/// The spatially indexed sparse medium: only links above the pruning
/// threshold are materialised, in CSR form per transmitter.
#[derive(Debug, Clone)]
pub struct SparseMedium {
    n: usize,
    tx_power_mw: f64,
    /// CSR offsets: tx's links are index range `link_off[tx]..link_off[tx+1]`.
    link_off: Vec<u32>,
    /// Link receivers, ascending within each transmitter's row.
    link_rx: Vec<NodeId>,
    /// Linear power gain per link, parallel to `link_rx`.
    link_gain: Vec<f64>,
    /// Propagation delay per link in ns, parallel to `link_rx`.
    link_delay: Vec<u64>,
    /// Spatial index; present when built from positions.
    grid: Option<Grid>,
    stats: SparseStats,
}

impl SparseMedium {
    /// Row slice of link array indices for `tx`.
    fn row(&self, tx: NodeId) -> std::ops::Range<usize> {
        self.link_off[tx.index()] as usize..self.link_off[tx.index() + 1] as usize
    }

    /// Position of `rx` within `tx`'s sorted link row, if the link is
    /// stored.
    fn find(&self, tx: NodeId, rx: NodeId) -> Option<usize> {
        let row = self.row(tx);
        self.link_rx[row.clone()]
            .binary_search(&rx)
            .ok()
            .map(|i| row.start + i)
    }

    /// Pruning accounting for this medium.
    pub fn stats(&self) -> &SparseStats {
        &self.stats
    }

    /// Build by sparsifying a dense gain/delay matrix (test-scale `n`;
    /// the matrix is O(n²) to hand over in the first place). With
    /// `epsilon_db == 0` the kept link set, gains and delays are
    /// bit-identical to [`DenseMedium::from_gains_db`] over the same
    /// inputs.
    pub fn from_gains_db(
        n: usize,
        gains_db: &[f64],
        delay_ns: &[u64],
        phy: &PhyConfig,
        epsilon_db: f64,
    ) -> SparseMedium {
        assert_eq!(gains_db.len(), n * n, "gain matrix must be n*n");
        assert_eq!(delay_ns.len(), n * n, "delay matrix must be n*n");
        assert!(epsilon_db >= 0.0, "epsilon is a margin above the floor");
        let tx_power_mw = dbm_to_mw(phy.tx_power_dbm);
        let floor_mw = dbm_to_mw(phy.delivery_floor_dbm);
        let threshold_mw = floor_mw * db_to_ratio(epsilon_db);
        let mut link_off = Vec::with_capacity(n + 1);
        link_off.push(0u32);
        let mut link_rx = Vec::new();
        let mut link_gain = Vec::new();
        let mut link_delay = Vec::new();
        let mut pruned = 0u64;
        let mut dropped_mw = vec![0.0f64; n];
        for tx in 0..n {
            for rx in 0..n {
                if tx == rx {
                    continue;
                }
                let gain = dbm_to_mw(gains_db[tx * n + rx]);
                let rss = tx_power_mw * gain;
                if rss >= threshold_mw {
                    link_rx.push(NodeId::new(rx));
                    link_gain.push(gain);
                    link_delay.push(delay_ns[tx * n + rx]);
                } else if rss >= floor_mw {
                    pruned += 1;
                    dropped_mw[rx] += rss;
                }
            }
            link_off.push(u32::try_from(link_rx.len()).expect("links fit u32"));
        }
        let stats = finish_stats(
            link_rx.len() as u64,
            pruned,
            0,
            epsilon_db,
            &dropped_mw,
            phy.noise_mw(),
        );
        SparseMedium {
            n,
            tx_power_mw,
            link_off,
            link_rx,
            link_gain,
            link_delay,
            grid: None,
            stats,
        }
    }

    /// Build from node positions and a link-gain model, evaluating only
    /// candidate pairs within `eval_range_m` of each other (via the grid
    /// index) — the path that never materialises an O(n²) matrix.
    ///
    /// `model(tx, rx, dist_m)` returns the frozen link gain in dB
    /// (negative = loss) and must be a pure function of its arguments so
    /// the build is deterministic and order-independent. Delays come
    /// from straight-line geometry. Pairs beyond `eval_range_m` are
    /// never evaluated; each is assumed to contribute at most
    /// `tail_gain_db` (the caller's bound on the model's gain at the
    /// evaluation range) to the recorded error bound.
    pub fn from_positions(
        positions: &[(f64, f64)],
        phy: &PhyConfig,
        epsilon_db: f64,
        eval_range_m: f64,
        tail_gain_db: f64,
        model: &dyn Fn(usize, usize, f64) -> f64,
    ) -> SparseMedium {
        assert!(epsilon_db >= 0.0, "epsilon is a margin above the floor");
        assert!(eval_range_m > 0.0, "evaluation range must be positive");
        let n = positions.len();
        let tx_power_mw = dbm_to_mw(phy.tx_power_dbm);
        let floor_mw = dbm_to_mw(phy.delivery_floor_dbm);
        let threshold_mw = floor_mw * db_to_ratio(epsilon_db);
        // Cell size = evaluation range keeps the candidate scan to the
        // 3×3 cell neighborhood.
        let grid = Grid::build(positions, eval_range_m);
        let mut link_off = Vec::with_capacity(n + 1);
        link_off.push(0u32);
        let mut link_rx = Vec::new();
        let mut link_gain = Vec::new();
        let mut link_delay = Vec::new();
        let mut pruned = 0u64;
        let mut tail_pairs = 0u64;
        let mut dropped_mw = vec![0.0f64; n];
        let tail_rss_mw = tx_power_mw * dbm_to_mw(tail_gain_db);
        let mut candidates = Vec::new();
        for tx in 0..n {
            let tx_id = NodeId::new(tx);
            grid.neighbors_within(tx_id, eval_range_m, &mut candidates);
            for &rx in &candidates {
                let dist = grid.dist_m(tx_id, rx);
                let gain = dbm_to_mw(model(tx, rx.index(), dist));
                let rss = tx_power_mw * gain;
                if rss >= threshold_mw {
                    link_rx.push(rx);
                    link_gain.push(gain);
                    link_delay.push(propagation::propagation_delay_ns(dist));
                } else if rss >= floor_mw {
                    pruned += 1;
                    dropped_mw[rx.index()] += rss;
                }
            }
            // Every never-evaluated pair is bounded by the tail gain.
            let beyond = (n - 1 - candidates.len()) as u64;
            tail_pairs += beyond;
            link_off.push(u32::try_from(link_rx.len()).expect("links fit u32"));
        }
        // The tail bound is per *receiver*: a node can absorb at most
        // one tail contribution from each never-evaluated transmitter,
        // and the candidate relation is symmetric, so the per-tx count
        // mirrors the per-rx count.
        if tail_rss_mw > 0.0 {
            let mut evaluated = vec![0u64; n];
            for (tx, count) in evaluated.iter_mut().enumerate() {
                grid.neighbors_within(NodeId::new(tx), eval_range_m, &mut candidates);
                *count = candidates.len() as u64;
            }
            for rx in 0..n {
                let beyond = (n as u64 - 1).saturating_sub(evaluated[rx]);
                // cmap-lint: allow(unit-cast) — `beyond` is a dimensionless pair count scaling the per-pair tail power
                dropped_mw[rx] += beyond as f64 * tail_rss_mw;
            }
        }
        let stats = finish_stats(
            link_rx.len() as u64,
            pruned,
            tail_pairs,
            epsilon_db,
            &dropped_mw,
            phy.noise_mw(),
        );
        SparseMedium {
            n,
            tx_power_mw,
            link_off,
            link_rx,
            link_gain,
            link_delay,
            grid: Some(grid),
            stats,
        }
    }
}

/// Fold per-receiver dropped power into the recorded [`SparseStats`].
fn finish_stats(
    links: u64,
    pruned: u64,
    tail_pairs: u64,
    epsilon_db: f64,
    dropped_mw: &[f64],
    noise_mw: f64,
) -> SparseStats {
    let worst = dropped_mw.iter().fold(0.0f64, |a, &b| a.max(b));
    SparseStats {
        links,
        pruned,
        tail_pairs,
        epsilon_db,
        error_bound_db: 10.0 * (1.0 + worst / noise_mw).log10(),
    }
}

impl Propagation for SparseMedium {
    fn len(&self) -> usize {
        self.n
    }

    fn tx_power_mw(&self) -> f64 {
        self.tx_power_mw
    }

    fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        debug_assert!(
            tx.index() < self.n && rx.index() < self.n,
            "SparseMedium::gain(tx {tx}, rx {rx}) out of bounds for {} nodes",
            self.n
        );
        match self.find(tx, rx) {
            Some(i) => self.link_gain[i],
            None => 0.0,
        }
    }

    fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64 {
        debug_assert!(
            tx.index() < self.n && rx.index() < self.n,
            "SparseMedium::delay_ns(tx {tx}, rx {rx}) out of bounds for {} nodes",
            self.n
        );
        match self.find(tx, rx) {
            Some(i) => self.link_delay[i],
            None => 0,
        }
    }

    fn reachable(&self, tx: NodeId) -> &[NodeId] {
        &self.link_rx[self.row(tx)]
    }

    fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>) {
        match &self.grid {
            Some(grid) => grid.neighbors_within(node, radius_m, out),
            None => {
                // Matrix-built: no coordinates; fall back to the stored
                // link delays, like the dense engine.
                out.clear();
                let row = self.row(node);
                for i in row {
                    // cmap-lint: allow(unit-cast) — delay→distance conversion is this function's contract; METRES_PER_NS carries the units
                    if self.link_delay[i] as f64 * METRES_PER_NS <= radius_m {
                        out.push(self.link_rx[i]);
                    }
                }
            }
        }
    }
}

// ---- the dispatching enum ------------------------------------------------

/// The medium a [`World`](crate::World) runs over: one of the two
/// propagation engines behind one concrete type (no fat pointers or
/// virtual dispatch on the event hot path — each accessor is a single
/// two-arm match).
#[derive(Debug, Clone)]
pub enum Medium {
    /// Exact O(n²) matrix engine.
    Dense(DenseMedium),
    /// Spatially indexed, epsilon-pruned CSR engine.
    Sparse(SparseMedium),
}

macro_rules! on_engine {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            Medium::Dense($m) => $body,
            Medium::Sparse($m) => $body,
        }
    };
}

impl Medium {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        on_engine!(self, m => Propagation::len(m))
    }

    /// True when the medium has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured transmit power in linear mW.
    pub fn tx_power_mw(&self) -> f64 {
        on_engine!(self, m => Propagation::tx_power_mw(m))
    }

    /// Linear gain from `tx` to `rx` (see [`Propagation::gain`]).
    pub fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        on_engine!(self, m => Propagation::gain(m, tx, rx))
    }

    /// Propagation delay from `tx` to `rx` in nanoseconds.
    pub fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64 {
        on_engine!(self, m => Propagation::delay_ns(m, tx, rx))
    }

    /// Receivers that get events for transmissions from `tx`, ascending.
    pub fn reachable(&self, tx: NodeId) -> &[NodeId] {
        on_engine!(self, m => Propagation::reachable(m, tx))
    }

    /// Nodes within `radius_m` of `node` (see
    /// [`Propagation::neighbors_within`]).
    pub fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>) {
        on_engine!(self, m => Propagation::neighbors_within(m, node, radius_m, out))
    }

    /// Received power in linear mW at `rx` from `tx`, before fading.
    pub fn rss_mw(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.tx_power_mw() * self.gain(tx, rx)
    }

    /// Received power in dBm at `rx` from `tx`, before fading.
    pub fn rss_dbm(&self, tx: NodeId, rx: NodeId) -> f64 {
        mw_to_dbm(self.rss_mw(tx, rx))
    }

    /// Received power in mW with a fault-injection dB offset applied.
    pub fn rss_mw_with_db_offset(&self, tx: NodeId, rx: NodeId, offset_db: f64) -> f64 {
        self.rss_mw(tx, rx) * db_to_ratio(offset_db)
    }

    /// `"dense"` or `"sparse"`, for artifacts and error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Medium::Dense(_) => "dense",
            Medium::Sparse(_) => "sparse",
        }
    }

    /// Pruning accounting, when this is a sparse medium.
    pub fn sparse_stats(&self) -> Option<&SparseStats> {
        match self {
            Medium::Dense(_) => None,
            Medium::Sparse(m) => Some(m.stats()),
        }
    }

    /// Structural fingerprint: FNV-1a over the engine kind, node count,
    /// transmit power and every stored link. Two media with the same
    /// fingerprint produce the same event fan-out, so checkpoints echo
    /// it to reject restores into a differently-built world
    /// (`cmap-ckpt/v2`).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.len() as u64);
        h.u64(self.tx_power_mw().to_bits());
        match self {
            Medium::Dense(m) => {
                h.u64(1);
                for &g in &m.gain {
                    h.u64(g.to_bits());
                }
                for &d in &m.delay_ns {
                    h.u64(d);
                }
                for &r in &m.reach_idx {
                    h.u64(r.index() as u64);
                }
            }
            Medium::Sparse(m) => {
                h.u64(2);
                for &off in &m.link_off {
                    h.u64(u64::from(off));
                }
                for i in 0..m.link_rx.len() {
                    h.u64(m.link_rx[i].index() as u64);
                    h.u64(m.link_gain[i].to_bits());
                    h.u64(m.link_delay[i]);
                }
            }
        }
        h.finish()
    }

    /// Deprecated shim for the pre-builder dense constructor.
    #[deprecated(
        since = "0.2.0",
        note = "use MediumBuilder::new(phy).gains_db(n, gains, delays).build()"
    )]
    pub fn from_gains_db(n: usize, gains_db: &[f64], delay_ns: &[u64], phy: &PhyConfig) -> Medium {
        Medium::Dense(DenseMedium::from_gains_db(n, gains_db, delay_ns, phy))
    }

    /// Deprecated shim for the pre-builder uniform constructor.
    #[deprecated(
        since = "0.2.0",
        note = "use MediumBuilder::new(phy).uniform(n, gain_db).build()"
    )]
    pub fn uniform(n: usize, gain_db: f64, phy: &PhyConfig) -> Medium {
        Medium::Dense(DenseMedium::uniform(n, gain_db, phy))
    }
}

impl Propagation for Medium {
    fn len(&self) -> usize {
        Medium::len(self)
    }
    fn tx_power_mw(&self) -> f64 {
        Medium::tx_power_mw(self)
    }
    fn gain(&self, tx: NodeId, rx: NodeId) -> f64 {
        Medium::gain(self, tx, rx)
    }
    fn delay_ns(&self, tx: NodeId, rx: NodeId) -> u64 {
        Medium::delay_ns(self, tx, rx)
    }
    fn reachable(&self, tx: NodeId) -> &[NodeId] {
        Medium::reachable(self, tx)
    }
    fn neighbors_within(&self, node: NodeId, radius_m: f64, out: &mut Vec<NodeId>) {
        Medium::neighbors_within(self, node, radius_m, out)
    }
}

/// FNV-1a over a stream of `u64` words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

// ---- builder -------------------------------------------------------------

/// Where the builder's channel data comes from.
enum Source<'m> {
    None,
    GainsDb {
        n: usize,
        gains_db: Vec<f64>,
        delay_ns: Vec<u64>,
    },
    Uniform {
        n: usize,
        gain_db: f64,
    },
    Positions {
        positions: Vec<(f64, f64)>,
        eval_range_m: f64,
        tail_gain_db: f64,
        model: Box<dyn Fn(usize, usize, f64) -> f64 + 'm>,
    },
}

/// Builds a [`Medium`]: pick a source (gain matrix, uniform gain, or
/// positions + link model), an engine (dense or sparse), the transmit
/// power and the sparse pruning epsilon.
///
/// Matrix and uniform sources default to the dense engine; position
/// sources default to sparse. Replaces `Medium::from_gains_db` /
/// `Medium::uniform`:
///
/// ```
/// use cmap_sim::{MediumBuilder, PhyConfig};
/// let phy = PhyConfig::default();
/// let medium = MediumBuilder::new(&phy).uniform(3, -70.0).build();
/// assert_eq!(medium.len(), 3);
/// assert_eq!(medium.kind_name(), "dense");
/// ```
pub struct MediumBuilder<'m> {
    phy: PhyConfig,
    epsilon_db: f64,
    sparse: Option<bool>,
    source: Source<'m>,
}

impl<'m> MediumBuilder<'m> {
    /// Start from a PHY configuration (transmit power, delivery floor
    /// and noise floor are taken from it).
    pub fn new(phy: &PhyConfig) -> MediumBuilder<'m> {
        MediumBuilder {
            phy: phy.clone(),
            epsilon_db: 0.0,
            sparse: None,
            source: Source::None,
        }
    }

    /// Override the transmit power (dBm) the medium assumes.
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.phy.tx_power_dbm = dbm;
        self
    }

    /// Sparse pruning margin above the delivery floor, in dB (≥ 0).
    /// Links whose received power is below `delivery_floor + epsilon`
    /// are dropped; `0` keeps the sparse engine bit-identical to dense.
    pub fn epsilon_db(mut self, db: f64) -> Self {
        assert!(db >= 0.0, "epsilon is a margin above the floor");
        self.epsilon_db = db;
        self
    }

    /// Source: a row-major `n × n` gain matrix in dB plus per-link
    /// delays in ns (diagonal ignored).
    pub fn gains_db(mut self, n: usize, gains_db: &[f64], delay_ns: &[u64]) -> Self {
        assert_eq!(gains_db.len(), n * n, "gain matrix must be n*n");
        assert_eq!(delay_ns.len(), n * n, "delay matrix must be n*n");
        self.source = Source::GainsDb {
            n,
            gains_db: gains_db.to_vec(),
            delay_ns: delay_ns.to_vec(),
        };
        self
    }

    /// Source: every distinct pair shares one gain (dB) and a 100 ns
    /// delay.
    pub fn uniform(mut self, n: usize, gain_db: f64) -> Self {
        self.source = Source::Uniform { n, gain_db };
        self
    }

    /// Source: node coordinates (metres) plus a pure link-gain model
    /// `model(tx, rx, dist_m) -> gain dB`. Candidate pairs are
    /// enumerated within `eval_range_m` via the grid index;
    /// `tail_gain_db` bounds the model's gain at that range so
    /// never-evaluated pairs are accounted in the recorded error bound.
    pub fn positions(
        mut self,
        positions: Vec<(f64, f64)>,
        eval_range_m: f64,
        tail_gain_db: f64,
        model: impl Fn(usize, usize, f64) -> f64 + 'm,
    ) -> Self {
        self.source = Source::Positions {
            positions,
            eval_range_m,
            tail_gain_db,
            model: Box::new(model),
        };
        self
    }

    /// Force the dense engine.
    pub fn dense(mut self) -> Self {
        self.sparse = Some(false);
        self
    }

    /// Force the sparse engine.
    pub fn sparse(mut self) -> Self {
        self.sparse = Some(true);
        self
    }

    /// Build the medium. Panics when no source was given, or when a
    /// position source is forced dense at a size where the O(n²) matrix
    /// is plainly a mistake.
    pub fn build(self) -> Medium {
        let phy = &self.phy;
        match self.source {
            Source::None => {
                panic!("MediumBuilder: no source configured (gains_db/uniform/positions)")
            }
            Source::GainsDb {
                n,
                gains_db,
                delay_ns,
            } => {
                if self.sparse == Some(true) {
                    Medium::Sparse(SparseMedium::from_gains_db(
                        n,
                        &gains_db,
                        &delay_ns,
                        phy,
                        self.epsilon_db,
                    ))
                } else {
                    Medium::Dense(DenseMedium::from_gains_db(n, &gains_db, &delay_ns, phy))
                }
            }
            Source::Uniform { n, gain_db } => {
                let mut gains = vec![gain_db; n * n];
                for i in 0..n {
                    gains[i * n + i] = f64::NEG_INFINITY;
                }
                let delays = vec![100u64; n * n];
                if self.sparse == Some(true) {
                    Medium::Sparse(SparseMedium::from_gains_db(
                        n,
                        &gains,
                        &delays,
                        phy,
                        self.epsilon_db,
                    ))
                } else {
                    Medium::Dense(DenseMedium::from_gains_db(n, &gains, &delays, phy))
                }
            }
            Source::Positions {
                positions,
                eval_range_m,
                tail_gain_db,
                model,
            } => {
                if self.sparse == Some(false) {
                    let n = positions.len();
                    assert!(
                        n <= 8192,
                        "dense medium from {n} positions would allocate an O(n²) matrix; \
                         use the sparse engine"
                    );
                    let mut gains = vec![f64::NEG_INFINITY; n * n];
                    let mut delays = vec![0u64; n * n];
                    for tx in 0..n {
                        for rx in 0..n {
                            if tx == rx {
                                continue;
                            }
                            let (ax, ay) = positions[tx];
                            let (bx, by) = positions[rx];
                            let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                            gains[tx * n + rx] = model(tx, rx, dist);
                            delays[tx * n + rx] = propagation::propagation_delay_ns(dist);
                        }
                    }
                    Medium::Dense(DenseMedium::from_gains_db(n, &gains, &delays, phy))
                } else {
                    Medium::Sparse(SparseMedium::from_positions(
                        &positions,
                        phy,
                        self.epsilon_db,
                        eval_range_m,
                        tail_gain_db,
                        &model,
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uniform_medium_reaches_everyone() {
        let phy = PhyConfig::default();
        let m = MediumBuilder::new(&phy).uniform(4, -80.0).build();
        assert_eq!(m.len(), 4);
        for tx in 0..4 {
            let mut r = m.reachable(nid(tx)).to_vec();
            r.sort_unstable();
            let expect: Vec<NodeId> = (0..4).filter(|&x| x != tx).map(nid).collect();
            assert_eq!(r, expect);
            // 15 dBm - 80 dB = -65 dBm at each receiver.
            for rx in 0..4 {
                if rx != tx {
                    assert!((m.rss_dbm(nid(tx), nid(rx)) + 65.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn weak_links_fall_below_delivery_floor() {
        let phy = PhyConfig::default();
        // 15 dBm - 125 dB = -110 dBm, below the -105 dBm delivery floor.
        let gains = vec![f64::NEG_INFINITY, -125.0, -80.0, f64::NEG_INFINITY];
        let m = MediumBuilder::new(&phy)
            .gains_db(2, &gains, &[0, 10, 10, 0])
            .build();
        assert!(m.reachable(nid(0)).is_empty());
        assert_eq!(m.reachable(nid(1)), &[nid(0)]);
    }

    #[test]
    fn asymmetric_gains_are_respected() {
        let phy = PhyConfig::default();
        let gains = vec![f64::NEG_INFINITY, -70.0, -90.0, f64::NEG_INFINITY];
        let m = MediumBuilder::new(&phy)
            .gains_db(2, &gains, &[0, 33, 33, 0])
            .build();
        assert!(m.rss_dbm(nid(0), nid(1)) > m.rss_dbm(nid(1), nid(0)));
        assert_eq!(m.delay_ns(nid(0), nid(1)), 33);
    }

    #[test]
    fn delays_are_directional() {
        // A waveguide-ish link: the two directions carry different delays
        // (row-major [tx * n + rx]), and the accessor must not mix them up.
        let phy = PhyConfig::default();
        let gains = vec![f64::NEG_INFINITY, -70.0, -70.0, f64::NEG_INFINITY];
        let m = MediumBuilder::new(&phy)
            .gains_db(2, &gains, &[0, 120, 450, 0])
            .build();
        assert_eq!(m.delay_ns(nid(0), nid(1)), 120);
        assert_eq!(m.delay_ns(nid(1), nid(0)), 450);
        assert_eq!(m.delay_ns(nid(0), nid(0)), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_delay_is_caught() {
        let phy = PhyConfig::default();
        let m = MediumBuilder::new(&phy).uniform(2, -70.0).build();
        let _ = m.delay_ns(nid(0), nid(2));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn bounds_panic_names_the_offending_pair() {
        let phy = PhyConfig::default();
        let m = MediumBuilder::new(&phy).uniform(3, -70.0).build();
        let err = std::panic::catch_unwind(|| m.gain(nid(1), nid(9))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("tx 1") && msg.contains("rx 9") && msg.contains("3 nodes"),
            "panic message must name tx, rx and n: {msg}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_build_dense() {
        let phy = PhyConfig::default();
        let a = Medium::uniform(3, -70.0, &phy);
        assert_eq!(a.kind_name(), "dense");
        let gains = vec![f64::NEG_INFINITY, -70.0, -70.0, f64::NEG_INFINITY];
        let b = Medium::from_gains_db(2, &gains, &[0, 100, 100, 0], &phy);
        assert_eq!(b.reachable(nid(0)), &[nid(1)]);
    }

    #[test]
    fn sparse_epsilon_zero_matches_dense_exactly() {
        let phy = PhyConfig::default();
        let n = 5;
        let mut gains = vec![f64::NEG_INFINITY; n * n];
        let mut delays = vec![0u64; n * n];
        // A spread of strong, weak and sub-floor links.
        let levels = [-60.0, -80.0, -100.0, -118.0, -126.0];
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx {
                    gains[tx * n + rx] = levels[(tx * 3 + rx) % levels.len()];
                    delays[tx * n + rx] = 30 + (tx * 7 + rx) as u64;
                }
            }
        }
        let dense = MediumBuilder::new(&phy)
            .gains_db(n, &gains, &delays)
            .build();
        let sparse = MediumBuilder::new(&phy)
            .gains_db(n, &gains, &delays)
            .sparse()
            .build();
        assert_eq!(sparse.kind_name(), "sparse");
        for tx in 0..n {
            assert_eq!(dense.reachable(nid(tx)), sparse.reachable(nid(tx)));
            for &rx in dense.reachable(nid(tx)) {
                assert_eq!(
                    dense.gain(nid(tx), rx).to_bits(),
                    sparse.gain(nid(tx), rx).to_bits()
                );
                assert_eq!(dense.delay_ns(nid(tx), rx), sparse.delay_ns(nid(tx), rx));
            }
        }
        let st = sparse.sparse_stats().unwrap();
        assert_eq!(st.pruned, 0);
        assert_eq!(st.error_bound_db.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn sparse_epsilon_prunes_and_records_the_bound() {
        let phy = PhyConfig::default();
        let n = 3;
        // 0→1 strong; 2→1 sits between the floor (-105) and floor+15.
        let mut gains = vec![f64::NEG_INFINITY; n * n];
        gains[1] = -60.0; // 0→1
        gains[2 * n + 1] = -117.0; // 2→1: rss = -102 dBm
        let delays = vec![50u64; n * n];
        let sparse = MediumBuilder::new(&phy)
            .gains_db(n, &gains, &delays)
            .sparse()
            .epsilon_db(15.0)
            .build();
        assert_eq!(sparse.reachable(nid(2)), &[] as &[NodeId]);
        assert_eq!(sparse.gain(nid(2), nid(1)).to_bits(), 0.0f64.to_bits());
        let st = sparse.sparse_stats().unwrap();
        assert_eq!(st.pruned, 1);
        assert_eq!(st.epsilon_db.to_bits(), 15.0f64.to_bits());
        // Dropped -102 dBm against the noise floor: a small but nonzero
        // SINR-denominator inflation.
        assert!(st.error_bound_db > 0.0, "{}", st.error_bound_db);
        assert!(st.error_bound_db < 3.0, "{}", st.error_bound_db);
    }

    #[test]
    fn positions_build_matches_dense_materialisation() {
        let phy = PhyConfig::default();
        // A 4-node square, 20 m sides; a pure path-loss model.
        let pos = vec![(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        let model = |_tx: usize, _rx: usize, dist: f64| -propagation::path_loss_db(dist, 3.3);
        let sparse = MediumBuilder::new(&phy)
            .positions(pos.clone(), 100.0, -120.0, model)
            .build();
        let dense = MediumBuilder::new(&phy)
            .positions(pos, 100.0, -120.0, model)
            .dense()
            .build();
        assert_eq!(sparse.kind_name(), "sparse");
        for tx in 0..4 {
            assert_eq!(dense.reachable(nid(tx)), sparse.reachable(nid(tx)));
            for &rx in dense.reachable(nid(tx)) {
                assert_eq!(
                    dense.gain(nid(tx), rx).to_bits(),
                    sparse.gain(nid(tx), rx).to_bits()
                );
                assert_eq!(dense.delay_ns(nid(tx), rx), sparse.delay_ns(nid(tx), rx));
            }
        }
    }

    #[test]
    fn grid_neighbors_match_brute_force() {
        let phy = PhyConfig::default();
        // Deterministic pseudo-random scatter (LCG) over a 200×200 m box.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pos: Vec<(f64, f64)> = (0..80).map(|_| (next() * 200.0, next() * 200.0)).collect();
        let model = |_: usize, _: usize, dist: f64| -propagation::path_loss_db(dist, 3.3);
        let m = MediumBuilder::new(&phy)
            .positions(pos.clone(), 60.0, -130.0, model)
            .build();
        let mut out = Vec::new();
        for node in 0..pos.len() {
            for radius in [10.0, 35.0, 59.0] {
                m.neighbors_within(nid(node), radius, &mut out);
                let brute: Vec<NodeId> = (0..pos.len())
                    .filter(|&o| o != node)
                    .filter(|&o| {
                        let (ax, ay) = pos[node];
                        let (bx, by) = pos[o];
                        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt() <= radius
                    })
                    .map(nid)
                    .collect();
                assert_eq!(out, brute, "node {node} radius {radius}");
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_media() {
        let phy = PhyConfig::default();
        let a = MediumBuilder::new(&phy).uniform(3, -70.0).build();
        let b = MediumBuilder::new(&phy).uniform(3, -70.0).build();
        let c = MediumBuilder::new(&phy).uniform(3, -71.0).build();
        let d = MediumBuilder::new(&phy).uniform(3, -70.0).sparse().build();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(
            a.fingerprint(),
            d.fingerprint(),
            "engine kind is part of identity"
        );
    }

    #[test]
    #[should_panic(expected = "no source")]
    fn builder_without_source_panics() {
        let phy = PhyConfig::default();
        let _ = MediumBuilder::new(&phy).build();
    }
}
