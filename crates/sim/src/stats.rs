//! Runtime statistics collection.
//!
//! Everything the evaluation section needs is recorded here during a run:
//! per-flow non-duplicate deliveries with timestamps (for windowed
//! throughput, §5.1 measures the last 60 of 100 seconds), per-link virtual-
//! packet header/trailer reception (Figs 16 and 19), typed run counters and
//! gauges from the [`cmap_obs`] registry, and — when enabled — a bounded
//! structured trace of protocol decision points.
//!
//! Counters are a flat `[u64; CounterId::COUNT]` indexed by the dense
//! [`CounterId`]: the hot path is one array write, no map lookup. The old
//! string-keyed API survives as `*_named` compat shims (deprecated); names
//! outside the registry fall into a side map so third-party experiment code
//! keeps working during migration.

// BTreeMap/BTreeSet throughout: statistics feed figure output and test
// assertions, so their iteration order must not depend on hash seeds.
use std::collections::{BTreeMap, BTreeSet};

use cmap_obs::{CounterId, GaugeId, TraceEvent, TraceSink};

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::time::Time;
use crate::world::NodeId;

/// Per-flow delivery record.
#[derive(Debug, Default, Clone)]
pub struct FlowStats {
    /// Arrival time of each *first* (non-duplicate) delivery, in order.
    pub arrivals: Vec<Time>,
    /// Sequence numbers seen at or above `seen_floor` (duplicate
    /// suppression). Compacted: every seq below `seen_floor` is seen, so an
    /// in-order flow keeps this set near-empty however long the run is.
    seen: BTreeSet<u32>,
    /// All sequence numbers below this have been seen.
    seen_floor: u32,
    /// Duplicate deliveries discarded.
    pub duplicates: u64,
}

impl FlowStats {
    /// Count of non-duplicate deliveries with `from <= t < to`.
    pub fn delivered_in(&self, from: Time, to: Time) -> u64 {
        // Arrivals are pushed in nondecreasing time order.
        let lo = self.arrivals.partition_point(|&t| t < from);
        let hi = self.arrivals.partition_point(|&t| t < to);
        (hi - lo) as u64
    }
}

/// Per ordered link (sender, intended receiver): virtual-packet header and
/// trailer reception bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct VpktStats {
    /// Virtual packets announced (header transmitted) by the sender.
    pub sent: u64,
    /// Flags per-virtual-packet seq at the receiver: bit0 = header seen,
    /// bit1 = trailer seen. Capped at [`VpktStats::MAX_GOT`] entries; the
    /// counts below are cumulative and survive eviction.
    got: BTreeMap<u32, u8>,
    headers_total: u64,
    trailers_total: u64,
    either_total: u64,
    /// Entries evicted from `got` to honour the cap (long soak runs).
    pub evicted: u64,
}

impl VpktStats {
    /// Per-seq flag entries retained; far above what a tier-1 run produces
    /// (a 100 s saturated link sees ~2k vpkt seqs), so eviction only
    /// engages on long soaks.
    pub const MAX_GOT: usize = 4096;

    /// Virtual packets whose header was received.
    pub fn header_count(&self) -> u64 {
        self.headers_total
    }

    /// Virtual packets whose trailer was received.
    pub fn trailer_count(&self) -> u64 {
        self.trailers_total
    }

    /// Virtual packets with header *or* trailer received.
    pub fn either_count(&self) -> u64 {
        self.either_total
    }

    /// Fraction of sent virtual packets whose header was received.
    pub fn header_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.header_count() as f64 / self.sent as f64
    }

    /// Fraction of sent virtual packets with header or trailer received.
    pub fn either_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.either_count() as f64 / self.sent as f64).min(1.0)
    }
}

/// All statistics for one simulation run.
#[derive(Debug)]
pub struct Stats {
    flows: Vec<FlowStats>,
    vpkt: BTreeMap<(NodeId, NodeId), VpktStats>,
    /// Typed counters, indexed by `CounterId::idx()`.
    counters: [u64; CounterId::COUNT],
    /// Typed gauges, indexed by `GaugeId::idx()`.
    gauges: [u64; GaugeId::COUNT],
    /// Overflow for deprecated `*_named` calls whose name is not in the
    /// registry (third-party experiment code mid-migration).
    dynamic: BTreeMap<&'static str, u64>,
    /// Structured trace sink; `None` (the default) keeps every emit site to
    /// a single branch.
    trace: Option<TraceSink>,
}

impl Default for Stats {
    fn default() -> Stats {
        Stats {
            flows: Vec::new(),
            vpkt: BTreeMap::new(),
            counters: [0; CounterId::COUNT],
            gauges: [0; GaugeId::COUNT],
            dynamic: BTreeMap::new(),
            trace: None,
        }
    }
}

impl Stats {
    pub(crate) fn ensure_flows(&mut self, n: usize) {
        self.flows
            .resize(n.max(self.flows.len()), FlowStats::default());
    }

    /// Record a delivery; returns `true` if it was not a duplicate.
    pub(crate) fn record_delivery(&mut self, flow: u16, seq: u32, now: Time) -> bool {
        let f = &mut self.flows[flow as usize];
        if seq < f.seen_floor || !f.seen.insert(seq) {
            f.duplicates += 1;
            return false;
        }
        f.arrivals.push(now);
        // Advance the floor over any now-contiguous prefix, shedding the
        // per-seq bookkeeping so the set stays bounded on long soaks.
        while f.seen.remove(&f.seen_floor) {
            f.seen_floor += 1;
        }
        true
    }

    /// Per-flow stats.
    pub fn flow(&self, flow: u16) -> &FlowStats {
        &self.flows[flow as usize]
    }

    /// Throughput of `flow` in Mbit/s of application payload over the
    /// half-open window `[from, to)`.
    pub fn flow_throughput_mbps(&self, flow: u16, payload_len: usize, from: Time, to: Time) -> f64 {
        assert!(to > from);
        let pkts = self.flow(flow).delivered_in(from, to);
        let bits = pkts as f64 * payload_len as f64 * 8.0;
        bits / crate::time::as_secs_f64(to - from) / 1e6
    }

    /// The sender announced (sent the header of) a virtual packet to `dst`.
    pub fn vpkt_sent(&mut self, src: impl Into<NodeId>, dst: impl Into<NodeId>) {
        self.vpkt.entry((src.into(), dst.into())).or_default().sent += 1;
    }

    /// The intended receiver decoded the header (`is_trailer = false`) or
    /// trailer (`true`) of virtual packet `seq` from `src`.
    pub fn vpkt_received(
        &mut self,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        seq: u32,
        is_trailer: bool,
    ) {
        let flag = if is_trailer { 2u8 } else { 1 };
        let v = self.vpkt.entry((src.into(), dst.into())).or_default();
        let entry = v.got.entry(seq).or_insert(0);
        let old = *entry;
        *entry |= flag;
        if old == 0 {
            v.either_total += 1;
        }
        if old & flag == 0 {
            if is_trailer {
                v.trailers_total += 1;
            } else {
                v.headers_total += 1;
            }
        }
        if v.got.len() > VpktStats::MAX_GOT {
            // Oldest seq first: ACK windows only ever look forward.
            v.got.pop_first();
            v.evicted += 1;
            self.counters[CounterId::StatsVpktEvicted.idx()] += 1;
        }
    }

    /// Header/trailer bookkeeping for one ordered link, if any.
    pub fn vpkt_stats(&self, src: impl Into<NodeId>, dst: impl Into<NodeId>) -> Option<&VpktStats> {
        self.vpkt.get(&(src.into(), dst.into()))
    }

    /// All links with virtual-packet bookkeeping.
    pub fn vpkt_links(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &VpktStats)> {
        self.vpkt.iter()
    }

    /// Bump a typed counter by one.
    #[inline]
    pub fn bump(&mut self, id: CounterId) {
        self.counters[id.idx()] += 1;
    }

    /// Add to a typed counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.idx()] += v;
    }

    /// Read a typed counter.
    #[inline]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.idx()]
    }

    /// Set a typed gauge (last write wins).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.idx()] = v;
    }

    /// Read a typed gauge.
    #[inline]
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id.idx()]
    }

    /// Bump a counter by name.
    #[deprecated(since = "0.1.0", note = "use `bump(CounterId::...)`")]
    pub fn bump_named(&mut self, name: &'static str) {
        match CounterId::from_name(name) {
            Some(id) => self.counters[id.idx()] += 1,
            None => *self.dynamic.entry(name).or_insert(0) += 1,
        }
    }

    /// Add to a counter by name.
    #[deprecated(since = "0.1.0", note = "use `add(CounterId::..., v)`")]
    pub fn add_named(&mut self, name: &'static str, v: u64) {
        match CounterId::from_name(name) {
            Some(id) => self.counters[id.idx()] += v,
            None => *self.dynamic.entry(name).or_insert(0) += v,
        }
    }

    /// Read a counter by name (0 if never bumped).
    #[deprecated(since = "0.1.0", note = "use `counter(CounterId::...)`")]
    pub fn counter_named(&self, name: &str) -> u64 {
        match CounterId::from_name(name) {
            Some(id) => self.counters[id.idx()],
            None => self.dynamic.get(name).copied().unwrap_or(0),
        }
    }

    /// All nonzero counters (typed and legacy dynamic), sorted by name.
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = CounterId::ALL
            .iter()
            .filter_map(|&id| {
                let c = self.counters[id.idx()];
                (c != 0).then_some((id.name(), c))
            })
            .collect();
        out.extend(
            self.dynamic
                .iter()
                .filter(|&(_, &c)| c != 0)
                .map(|(&k, &c)| (k, c)),
        );
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Enable structured tracing with a ring buffer of `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceSink::new(capacity));
    }

    /// Whether a trace sink is attached.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Emit a trace event at simulation time `at_ns`. One branch and no
    /// work when tracing is disabled.
    #[inline]
    pub fn emit(&mut self, at_ns: u64, ev: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(at_ns, ev);
        }
    }

    /// The attached trace sink, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Detach and return the trace sink (tracing stops).
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    /// Canonical text serialization of the complete run statistics.
    ///
    /// Every piece of state this type records appears in the output in a
    /// fixed order (flow index, link key, counter/gauge name — all sorted),
    /// so two runs are behaviourally identical if and only if their
    /// snapshots are byte-for-byte equal. The determinism regression test
    /// (`tests/determinism_snapshot.rs`) relies on exactly that property.
    /// Trace contents are intentionally excluded: the trace is a bounded
    /// *view* of behaviour, not extra behaviour.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.flows.iter().enumerate() {
            out.push_str(&format!(
                "flow {i}: delivered={} duplicates={} arrivals=",
                f.arrivals.len(),
                f.duplicates
            ));
            for t in &f.arrivals {
                out.push_str(&format!("{t},"));
            }
            out.push('\n');
        }
        for (&(src, dst), v) in &self.vpkt {
            out.push_str(&format!("vpkt {src}->{dst}: sent={} got=", v.sent));
            for (seq, flags) in &v.got {
                out.push_str(&format!("{seq}:{flags},"));
            }
            out.push('\n');
        }
        for (name, c) in self.counters_sorted() {
            out.push_str(&format!("counter {name}={c}\n"));
        }
        for id in GaugeId::ALL {
            let v = self.gauges[id.idx()];
            if v != 0 {
                out.push_str(&format!("gauge {}={v}\n", id.name()));
            }
        }
        out
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Serialize the complete statistics state. Refuses runs using the
    /// deprecated dynamic-counter shim or an attached trace sink: both are
    /// outside the versioned format, and silently dropping them would break
    /// the byte-identity contract.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) -> Result<(), CkptError> {
        if !self.dynamic.is_empty() {
            return Err(CkptError::Mismatch(
                "stats with legacy dynamic counters cannot be checkpointed".to_string(),
            ));
        }
        if self.trace.is_some() {
            return Err(CkptError::Mismatch(
                "stats with an attached trace sink cannot be checkpointed".to_string(),
            ));
        }
        w.len(self.flows.len());
        for f in &self.flows {
            w.len(f.arrivals.len());
            for &t in &f.arrivals {
                w.u64(t);
            }
            w.len(f.seen.len());
            for &seq in &f.seen {
                w.u32(seq);
            }
            w.u32(f.seen_floor);
            w.u64(f.duplicates);
        }
        w.len(self.vpkt.len());
        for (&(src, dst), v) in &self.vpkt {
            w.len(src.index());
            w.len(dst.index());
            w.u64(v.sent);
            w.len(v.got.len());
            for (&seq, &flags) in &v.got {
                w.u32(seq);
                w.u8(flags);
            }
            w.u64(v.headers_total);
            w.u64(v.trailers_total);
            w.u64(v.either_total);
            w.u64(v.evicted);
        }
        w.len(self.counters.len());
        for &c in &self.counters {
            w.u64(c);
        }
        w.len(self.gauges.len());
        for &g in &self.gauges {
            w.u64(g);
        }
        Ok(())
    }

    /// Rebuild statistics from [`Stats::ckpt_save`] output.
    pub(crate) fn ckpt_load(r: &mut CkptReader<'_>) -> Result<Stats, CkptError> {
        let mut stats = Stats::default();
        let flows = r.len()?;
        stats.flows.reserve(flows);
        for _ in 0..flows {
            let mut f = FlowStats::default();
            let arrivals = r.len()?;
            f.arrivals.reserve(arrivals);
            for _ in 0..arrivals {
                f.arrivals.push(r.u64()?);
            }
            let seen = r.len()?;
            for _ in 0..seen {
                f.seen.insert(r.u32()?);
            }
            f.seen_floor = r.u32()?;
            f.duplicates = r.u64()?;
            stats.flows.push(f);
        }
        let links = r.len()?;
        for _ in 0..links {
            let key = (NodeId::new(r.len()?), NodeId::new(r.len()?));
            let mut v = VpktStats {
                sent: r.u64()?,
                ..VpktStats::default()
            };
            let got = r.len()?;
            for _ in 0..got {
                let seq = r.u32()?;
                v.got.insert(seq, r.u8()?);
            }
            v.headers_total = r.u64()?;
            v.trailers_total = r.u64()?;
            v.either_total = r.u64()?;
            v.evicted = r.u64()?;
            if stats.vpkt.insert(key, v).is_some() {
                return Err(CkptError::Malformed(format!(
                    "duplicate vpkt link ({},{})",
                    key.0, key.1
                )));
            }
        }
        let counters = r.len()?;
        if counters != CounterId::COUNT {
            return Err(CkptError::Mismatch(format!(
                "checkpoint has {counters} counters, registry has {}",
                CounterId::COUNT
            )));
        }
        for c in &mut stats.counters {
            *c = r.u64()?;
        }
        let gauges = r.len()?;
        if gauges != GaugeId::COUNT {
            return Err(CkptError::Mismatch(format!(
                "checkpoint has {gauges} gauges, registry has {}",
                GaugeId::COUNT
            )));
        }
        for g in &mut stats.gauges {
            *g = r.u64()?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_suppression() {
        let mut s = Stats::default();
        s.ensure_flows(1);
        assert!(s.record_delivery(0, 1, 100));
        assert!(s.record_delivery(0, 2, 200));
        assert!(!s.record_delivery(0, 1, 300));
        assert_eq!(s.flow(0).arrivals.len(), 2);
        assert_eq!(s.flow(0).duplicates, 1);
    }

    #[test]
    fn windowed_counts() {
        let mut s = Stats::default();
        s.ensure_flows(1);
        for (seq, t) in [(0u32, 10u64), (1, 20), (2, 30), (3, 40)] {
            s.record_delivery(0, seq, t);
        }
        assert_eq!(s.flow(0).delivered_in(0, 100), 4);
        assert_eq!(s.flow(0).delivered_in(20, 40), 2);
        assert_eq!(s.flow(0).delivered_in(41, 100), 0);
    }

    #[test]
    fn throughput_math() {
        let mut s = Stats::default();
        s.ensure_flows(1);
        // 1000 packets of 1400 bytes over 2 seconds = 5.6 Mbit/s.
        for i in 0..1000u32 {
            s.record_delivery(0, i, crate::time::secs(1) + u64::from(i));
        }
        let mbps = s.flow_throughput_mbps(0, 1400, crate::time::secs(1), crate::time::secs(3));
        assert!((mbps - 5.6).abs() < 0.01, "{mbps}");
    }

    #[test]
    fn vpkt_header_or_trailer_accounting() {
        let mut s = Stats::default();
        for _ in 0..4 {
            s.vpkt_sent(1, 2);
        }
        s.vpkt_received(1, 2, 0, false); // header only
        s.vpkt_received(1, 2, 1, true); // trailer only
        s.vpkt_received(1, 2, 2, false); // both
        s.vpkt_received(1, 2, 2, true);
        let v = s.vpkt_stats(1, 2).unwrap();
        assert_eq!(v.sent, 4);
        assert_eq!(v.header_count(), 2);
        assert_eq!(v.trailer_count(), 2);
        assert_eq!(v.either_count(), 3);
        assert!((v.header_rate() - 0.5).abs() < 1e-12);
        assert!((v.either_rate() - 0.75).abs() < 1e-12);
        assert!(s.vpkt_stats(2, 1).is_none());
    }

    #[test]
    fn seen_set_compacts_for_in_order_flows() {
        let mut s = Stats::default();
        s.ensure_flows(1);
        for i in 0..100u32 {
            assert!(s.record_delivery(0, i, u64::from(i)));
        }
        // Bookkeeping collapsed into the floor; dups below it still caught.
        assert_eq!(s.flow(0).seen_floor, 100);
        assert!(s.flow(0).seen.is_empty());
        assert!(!s.record_delivery(0, 5, 1000));
        assert_eq!(s.flow(0).duplicates, 1);
        // Out-of-order holds keep entries until the gap fills.
        assert!(s.record_delivery(0, 102, 1001));
        assert_eq!(s.flow(0).seen.len(), 1);
        assert!(s.record_delivery(0, 100, 1002));
        assert!(s.record_delivery(0, 101, 1003));
        assert!(s.flow(0).seen.is_empty());
        assert_eq!(s.flow(0).seen_floor, 103);
    }

    #[test]
    fn vpkt_got_map_is_capped_with_cumulative_counts() {
        let mut s = Stats::default();
        let extra = 100u32;
        for seq in 0..(VpktStats::MAX_GOT as u32 + extra) {
            s.vpkt_received(0, 1, seq, false);
        }
        let v = s.vpkt_stats(0, 1).unwrap();
        assert_eq!(v.got.len(), VpktStats::MAX_GOT);
        assert_eq!(
            v.header_count(),
            VpktStats::MAX_GOT as u64 + u64::from(extra)
        );
        assert_eq!(
            v.either_count(),
            VpktStats::MAX_GOT as u64 + u64::from(extra)
        );
        assert_eq!(v.trailer_count(), 0);
        assert_eq!(v.evicted, u64::from(extra));
        assert_eq!(s.counter(CounterId::StatsVpktEvicted), u64::from(extra));
        // Re-flagging an evicted seq recreates an entry but does not
        // double-count the header.
        let before = s.vpkt_stats(0, 1).unwrap().header_count();
        s.vpkt_received(0, 1, 0, true);
        let v = s.vpkt_stats(0, 1).unwrap();
        assert_eq!(v.header_count(), before); // trailer, not header
        assert_eq!(v.trailer_count(), 1);
    }

    #[test]
    fn typed_counters_and_gauges() {
        let mut s = Stats::default();
        s.bump(CounterId::SimTx);
        s.bump(CounterId::SimTx);
        s.add(CounterId::CmapDefer, 5);
        assert_eq!(s.counter(CounterId::SimTx), 2);
        assert_eq!(s.counter(CounterId::CmapDefer), 5);
        assert_eq!(s.counter(CounterId::DcfDrop), 0);
        assert_eq!(s.counters_sorted(), vec![("cmap.defer", 5), ("sim.tx", 2)]);
        s.set_gauge(GaugeId::SimSchedPending, 7);
        assert_eq!(s.gauge(GaugeId::SimSchedPending), 7);
        assert_eq!(s.gauge(GaugeId::SimInflightTx), 0);
        let snap = s.snapshot();
        assert!(snap.contains("counter cmap.defer=5\n"), "{snap}");
        assert!(snap.contains("gauge sim.sched_pending=7\n"), "{snap}");
        assert!(!snap.contains("sim.inflight_tx"), "{snap}");
    }

    #[test]
    #[allow(deprecated)]
    fn named_shims_route_registry_names_to_typed_storage() {
        let mut s = Stats::default();
        s.bump_named("sim.tx");
        s.bump_named("sim.tx");
        s.add_named("not.in.registry", 5);
        assert_eq!(s.counter(CounterId::SimTx), 2);
        assert_eq!(s.counter_named("sim.tx"), 2);
        assert_eq!(s.counter_named("not.in.registry"), 5);
        assert_eq!(s.counter_named("never.bumped"), 0);
        // Dynamic names interleave alphabetically with typed ones.
        assert_eq!(
            s.counters_sorted(),
            vec![("not.in.registry", 5), ("sim.tx", 2)]
        );
        let snap = s.snapshot();
        assert!(snap.contains("counter not.in.registry=5\n"), "{snap}");
    }

    #[test]
    fn trace_sink_is_off_by_default_and_bounded_when_on() {
        let mut s = Stats::default();
        assert!(!s.trace_enabled());
        s.emit(
            10,
            TraceEvent::FallbackToCsma {
                node: 0,
                timeout_streak: 1,
            },
        );
        assert!(s.trace().is_none());
        s.enable_trace(2);
        assert!(s.trace_enabled());
        for i in 0..5u64 {
            s.emit(
                i,
                TraceEvent::FallbackToCsma {
                    node: 0,
                    timeout_streak: 1,
                },
            );
        }
        let t = s.trace().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        // Trace contents never appear in the behavioural snapshot.
        assert!(!s.snapshot().contains("fallback_to_csma"));
        let sink = s.take_trace().unwrap();
        assert_eq!(sink.emitted(), 5);
        assert!(!s.trace_enabled());
    }
}
