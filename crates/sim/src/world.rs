//! The world: nodes, medium, event loop, and MAC dispatch.
//!
//! A [`World`] wires together a [`Medium`], one radio + RNG + app state
//! per node, and one [`Mac`] per node, then runs the event queue. All MAC
//! side effects go through [`NodeCtx`] and are applied in order when the
//! callback returns, so the engine never hands out two mutable views of the
//! same state.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::app::NodeApp;
use crate::config::PhyConfig;
use crate::event::{Event, Scheduler, TxId};
use crate::faults::{FaultAction, FaultPlan, FaultState, WatchdogConfig};
use crate::mac::{Mac, NodeCtx, NullMac, Op, RxErrorInfo, RxInfo};
use crate::medium::Medium;
use crate::pool::FramePool;
use crate::radio::{LockOutcome, RadioBank, RadioPhase, RxCompletion};
use crate::rng::{normal, stream_rng};
use crate::stats::Stats;
use crate::time::Time;
use cmap_obs::{CounterId, GaugeId, TraceEvent, TraceSink};
use cmap_phy::units::db_to_ratio;
use cmap_phy::{mw_to_dbm, BerTable, Rate, PLCP_PREAMBLE_NS, PLCP_SIG_NS};
use cmap_wire::{Frame, FrameKind, FrameView, MacAddr};

pub use crate::node::NodeId;

/// How a flow generates packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Always has the next packet ready (backlogged sender, §5.1).
    Saturated,
    /// Forwards packets delivered by `upstream` at this flow's source node
    /// (two-hop mesh dissemination, §5.7).
    Relay {
        /// The flow whose deliveries feed this one.
        upstream: u16,
    },
}

/// One unidirectional application flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow index (== position in the world's flow table).
    pub id: u16,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Application payload bytes per packet.
    pub payload_len: usize,
    /// Packet generation behaviour.
    pub kind: FlowKind,
    pub(crate) next_seq: u32,
}

/// A complete simulated network.
pub struct World {
    phy: PhyConfig,
    time: Time,
    sched: Scheduler,
    medium: Medium,
    radios: RadioBank,
    rngs: Vec<SmallRng>,
    macs: Vec<Option<Box<dyn Mac>>>,
    apps: Vec<NodeApp>,
    flows: Vec<Flow>,
    /// In-flight transmissions: pooled wire-byte buffers addressed by
    /// `TxId` (generation ‖ slot index), recycled when the air clears.
    pool: FramePool,
    stats: Stats,
    started: bool,
    seed: u64,
    /// Installed fault plan runtime state, if any.
    faults: Option<Box<FaultState>>,
    watchdog: WatchdogConfig,
    /// Recycled op buffers for MAC dispatch (dispatch can nest).
    ops_pool: Vec<Vec<Op>>,
    /// Shared per-process BER interpolation table for the grading hot path
    /// (immutable sampling of a pure function — cannot couple runs).
    ber_table: &'static BerTable,
    /// Table lookups performed while grading receptions.
    ber_lookups: u64,
    /// High-water marks already published to counters/perf totals (the
    /// run_until tail syncs deltas, so partial runs stay consistent).
    synced_events: u64,
    synced_lookups: u64,
    synced_cascades: u64,
    synced_pool_recycled: u64,
}

/// Step-by-step [`World`] construction: medium, PHY, seed, and the
/// optional pieces (fault plan, watchdog cadence, tracing) that used to
/// require separate mutating calls between `World::new` and
/// [`World::start`].
///
/// ```
/// use cmap_sim::{MediumBuilder, PhyConfig, World};
/// let phy = PhyConfig::default();
/// let medium = MediumBuilder::new(&phy).uniform(2, -70.0).build();
/// let mut world = World::builder().medium(medium).phy(phy).seed(42).build();
/// world.add_flow(0, 1, 1400);
/// ```
#[derive(Default)]
pub struct WorldBuilder {
    medium: Option<Medium>,
    phy: Option<PhyConfig>,
    seed: u64,
    faults: Option<FaultPlan>,
    watchdog: Option<WatchdogConfig>,
    trace_capacity: Option<usize>,
}

impl WorldBuilder {
    /// The propagation medium (required). Build one with
    /// [`MediumBuilder`](crate::MediumBuilder).
    pub fn medium(mut self, medium: Medium) -> Self {
        self.medium = Some(medium);
        self
    }

    /// PHY configuration; defaults to [`PhyConfig::default`].
    pub fn phy(mut self, phy: PhyConfig) -> Self {
        self.phy = Some(phy);
        self
    }

    /// Seed for every deterministic random stream (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a fault plan (arms the invariant watchdog).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the watchdog cadence.
    pub fn watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Enable structured tracing with a ring buffer of `capacity` records.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Build the world. Panics when no medium was supplied.
    pub fn build(self) -> World {
        let medium = self.medium.expect("WorldBuilder: no medium configured");
        let phy = self.phy.unwrap_or_default();
        let mut w = World::construct(medium, phy, self.seed);
        if let Some(plan) = self.faults {
            w.install_faults(plan);
        }
        if let Some(cfg) = self.watchdog {
            w.set_watchdog(cfg);
        }
        if let Some(capacity) = self.trace_capacity {
            w.enable_trace(capacity);
        }
        w
    }
}

impl World {
    /// Start building a world (see [`WorldBuilder`]).
    pub fn builder() -> WorldBuilder {
        WorldBuilder::default()
    }

    /// Deprecated shim for the pre-builder constructor.
    #[deprecated(
        since = "0.2.0",
        note = "use World::builder().medium(..).phy(..).seed(..).build()"
    )]
    pub fn new(medium: Medium, phy: PhyConfig, seed: u64) -> World {
        World::construct(medium, phy, seed)
    }

    /// Build a world over `medium`; every node starts with a [`NullMac`].
    fn construct(medium: Medium, phy: PhyConfig, seed: u64) -> World {
        let n = medium.len();
        World {
            phy,
            time: 0,
            sched: Scheduler::new(),
            radios: RadioBank::new(n),
            rngs: (0..n).map(|i| stream_rng(seed, i as u64 + 1)).collect(),
            macs: (0..n)
                .map(|_| Some(Box::new(NullMac) as Box<dyn Mac>))
                .collect(),
            apps: (0..n).map(|_| NodeApp::default()).collect(),
            flows: Vec::new(),
            pool: FramePool::new(),
            stats: Stats::default(),
            medium,
            started: false,
            seed,
            faults: None,
            watchdog: WatchdogConfig::default(),
            ops_pool: Vec::new(),
            ber_table: BerTable::shared(),
            ber_lookups: 0,
            synced_events: 0,
            synced_lookups: 0,
            synced_cascades: 0,
            synced_pool_recycled: 0,
        }
    }

    /// Install a fault plan (and arm the invariant watchdog). Must be
    /// called before [`World::start`]. All fault randomness derives from
    /// the world seed via dedicated streams, so the per-node RNG streams —
    /// and therefore any fault-free parts of the run — are unperturbed.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        assert!(!self.started, "install_faults after start");
        self.faults = Some(Box::new(FaultState::new(
            plan,
            self.seed,
            self.medium.len(),
        )));
    }

    /// Override the watchdog cadence (before [`World::start`]).
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        assert!(!self.started, "set_watchdog after start");
        self.watchdog = cfg;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// Transmissions whose pool slots are still held (in-flight frames).
    /// Must drain to ~zero when the air clears; the chaos soak asserts this.
    pub fn inflight_tx_count(&self) -> usize {
        self.pool.live()
    }

    /// Frame-pool slots currently claimed (same reading as
    /// [`World::inflight_tx_count`], named for the `pool.frames_live`
    /// gauge).
    pub fn pool_frames_live(&self) -> usize {
        self.pool.live()
    }

    /// Frame-pool slot recycle events (frees) so far.
    pub fn pool_recycled(&self) -> u64 {
        self.pool.recycled()
    }

    /// Most frame-pool slots ever claimed at once.
    pub fn pool_high_water(&self) -> usize {
        self.pool.high_water()
    }

    /// Total invariant-watchdog violations recorded so far (all
    /// `watchdog.*` counters summed). Zero on a healthy run, faults or not.
    pub fn watchdog_violations(&self) -> u64 {
        self.stats
            .counters_sorted()
            .iter()
            .filter(|(name, _)| name.starts_with("watchdog."))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.radios.len()
    }

    /// Install the MAC protocol for `node`. Must be called before
    /// [`World::start`].
    pub fn set_mac(&mut self, node: impl Into<NodeId>, mac: Box<dyn Mac>) {
        assert!(!self.started, "set_mac after start");
        self.macs[node.into().index()] = Some(mac);
    }

    /// Borrow a node's MAC for inspection (tests, experiment harnesses).
    pub fn mac_ref(&self, node: impl Into<NodeId>) -> &dyn Mac {
        self.macs[node.into().index()]
            .as_deref()
            .expect("mac taken during callback")
    }

    /// Declare a saturated flow; returns its id.
    pub fn add_flow(
        &mut self,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        payload_len: usize,
    ) -> u16 {
        self.add_flow_kind(src.into(), dst.into(), payload_len, FlowKind::Saturated)
    }

    /// Declare a relay flow forwarding `upstream`'s deliveries from `src` on
    /// to `dst`; returns its id.
    pub fn add_relay_flow(
        &mut self,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        payload_len: usize,
        upstream: u16,
    ) -> u16 {
        let (src, dst) = (src.into(), dst.into());
        assert_eq!(
            self.flows[upstream as usize].dst, src,
            "relay must start where the upstream flow ends"
        );
        self.add_flow_kind(src, dst, payload_len, FlowKind::Relay { upstream })
    }

    fn add_flow_kind(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload_len: usize,
        kind: FlowKind,
    ) -> u16 {
        assert!(!self.started, "add_flow after start");
        assert!(src.index() < self.node_count() && dst.index() < self.node_count());
        assert_ne!(src, dst);
        let id = u16::try_from(self.flows.len()).expect("too many flows");
        self.flows.push(Flow {
            id,
            src,
            dst,
            payload_len,
            kind,
            next_seq: 0,
        });
        self.apps[src.index()].add_source(id, &kind);
        id
    }

    /// Flow descriptor by id.
    pub fn flow(&self, id: u16) -> &Flow {
        &self.flows[id as usize]
    }

    /// All flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The medium (for RSS queries in experiment harnesses).
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// The PHY configuration.
    pub fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Collected statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.sched.processed()
    }

    /// Deterministic per-event-kind dispatch counts (`(kind_name, count)`),
    /// for the event-loop profile. A fixed-size array (no allocation): it
    /// coerces to the slice the profiler's `set_dispatch` wants.
    pub fn event_counts(&self) -> [(&'static str, u64); Event::KIND_COUNT] {
        let by_kind = self.sched.processed_by_kind();
        std::array::from_fn(|i| (Event::KIND_NAMES[i], by_kind[i]))
    }

    /// BER interpolation-table lookups performed while grading receptions.
    pub fn ber_lookups(&self) -> u64 {
        self.ber_lookups
    }

    /// Enable structured tracing: protocol/engine decision points are
    /// recorded into a ring buffer of at most `capacity` records. Tracing
    /// observes the run without perturbing it — enabling it changes no
    /// behavioural statistics.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.stats.enable_trace(capacity);
    }

    /// Detach the trace sink (if tracing was enabled) for dumping.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.stats.take_trace()
    }

    /// Call every MAC's `on_start`. Idempotent guard: panics on double start.
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        self.stats.ensure_flows(self.flows.len());
        // Fault actions and watchdog audits are only scheduled when a plan
        // is installed, so clean runs see an unchanged event stream.
        if let Some(f) = self.faults.as_deref() {
            for (idx, &(at, _)) in f.actions.iter().enumerate() {
                self.sched.schedule(at, Event::Fault { idx: idx as u32 });
            }
            self.sched
                .schedule(self.watchdog.audit_period, Event::Audit);
        }
        for i in 0..self.node_count() {
            let node = NodeId::new(i);
            self.dispatch(node, |mac, ctx| mac.on_start(ctx));
            self.check_channel_edge(node);
        }
    }

    /// Run the event loop until simulation time `t` (inclusive of events at
    /// `t`). Starts the world if not yet started.
    pub fn run_until(&mut self, t: Time) {
        if !self.started {
            self.start();
        }
        while let Some(at) = self.sched.peek_time() {
            if at > t {
                break;
            }
            let (at, ev) = self.sched.pop().expect("peeked");
            if at < self.time {
                // Event-time monotonicity violation: the watchdog records
                // it and the clock holds instead of running backwards.
                self.stats.bump(CounterId::WatchdogTimeRegress);
            } else {
                self.time = at;
            }
            self.handle_event(ev);
        }
        if t >= self.time {
            self.time = t;
        } else {
            // Caller asked to run *backwards* (or an event regression held
            // the clock past `t`): record it and hold, never rewind.
            self.stats.bump(CounterId::WatchdogTimeRegress);
        }
        // Publish hot-path deltas since the last sync: deterministic
        // counters for reports plus process-wide perf totals for the
        // benchmark baseline.
        let events = self.sched.processed();
        let sched_stats = self.sched.stats();
        let ev_d = events - self.synced_events;
        let look_d = self.ber_lookups - self.synced_lookups;
        let casc_d = sched_stats.cascades - self.synced_cascades;
        self.synced_events = events;
        self.synced_lookups = self.ber_lookups;
        self.synced_cascades = sched_stats.cascades;
        if look_d > 0 {
            self.stats.add(CounterId::PhyBerTableLookup, look_d);
        }
        if casc_d > 0 {
            self.stats.add(CounterId::SimSchedCascades, casc_d);
        }
        crate::perf::note_run(ev_d, look_d, casc_d, sched_stats.max_occupancy);
        let recycled = self.pool.recycled();
        let recycled_d = recycled - self.synced_pool_recycled;
        self.synced_pool_recycled = recycled;
        crate::perf::note_pool(
            self.pool.high_water() as u64,
            recycled_d,
            self.pool.bytes() as u64,
        );
        // Level readings at the (deterministic) stop point.
        self.stats
            .set_gauge(GaugeId::SimInflightTx, self.pool.live() as u64);
        self.stats
            .set_gauge(GaugeId::PoolFramesLive, self.pool.live() as u64);
        self.stats.set_gauge(GaugeId::PoolRecycled, recycled);
        self.stats
            .set_gauge(GaugeId::PoolHighWater, self.pool.high_water() as u64);
        self.stats
            .set_gauge(GaugeId::SimSchedPending, self.sched.len() as u64);
        self.stats
            .set_gauge(GaugeId::SimSchedMaxOccupancy, sched_stats.max_occupancy);
        let dropped = self.stats.trace().map_or(0, |tr| tr.dropped());
        self.stats.set_gauge(GaugeId::TraceDropped, dropped);
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Timer { node, token } => {
                self.dispatch(node, |mac, ctx| mac.on_timer(ctx, token));
                self.check_channel_edge(node);
            }
            Event::TxEnd { node, tx_id } => {
                if !self.radios.end_tx(node.index()) {
                    self.stats.bump(CounterId::WatchdogRadioState);
                }
                self.pool.release(tx_id);
                self.dispatch(node, |mac, ctx| mac.on_tx_done(ctx));
                self.check_channel_edge(node);
            }
            Event::FrameStart { rx, tx_id } => {
                let src = self.pool.node_of(tx_id);
                let base_mw = match self.faults.as_deref_mut() {
                    Some(f) => {
                        let offset_db = f.link_offset_db(src, rx, self.time);
                        self.medium.rss_mw_with_db_offset(src, rx, offset_db)
                    }
                    None => self.medium.rss_mw(src, rx),
                };
                let boost = if self.phy.fading_boost_prob > 0.0
                    && self.rngs[rx.index()].gen_bool(self.phy.fading_boost_prob)
                {
                    self.phy.fading_boost_db
                } else {
                    0.0
                };
                let fading_db = normal(&mut self.rngs[rx.index()], boost, self.phy.fading_sigma_db);
                let power_mw = base_mw * db_to_ratio(fading_db);
                let outcome = self.radios.frame_start(
                    rx.index(),
                    tx_id,
                    power_mw,
                    self.time,
                    &self.phy,
                    &mut self.rngs[rx.index()],
                );
                match outcome {
                    LockOutcome::Locked => self.stats.bump(CounterId::SimLock),
                    LockOutcome::Captured { .. } => self.stats.bump(CounterId::SimCapture),
                    LockOutcome::Interference => {}
                }
                self.check_channel_edge(rx);
            }
            Event::FrameEnd { rx, tx_id } => {
                if let Some(completion) = self.radios.frame_end(rx.index(), tx_id, self.time) {
                    self.grade_and_deliver(rx, completion);
                }
                self.pool.release(tx_id);
                self.check_channel_edge(rx);
            }
            Event::Fault { idx } => self.handle_fault(idx),
            Event::Audit => self.handle_audit(),
        }
    }

    fn handle_fault(&mut self, idx: u32) {
        let f = self.faults.as_deref().expect("fault event without plan");
        let (_, action) = f.actions[idx as usize];
        match action {
            FaultAction::NodeDown(node) => {
                if self.radios.power_off(node.index()) {
                    self.stats.bump(CounterId::FaultRxDropped);
                }
                self.faults.as_deref_mut().expect("checked").node_up[node.index()] = false;
                self.stats.bump(CounterId::FaultNodeDown);
                self.trace_fault("node_down", node);
            }
            FaultAction::NodeUp(node) => {
                self.radios.power_on(node.index());
                let f = self.faults.as_deref_mut().expect("checked");
                f.node_up[node.index()] = true;
                f.last_dispatch[node.index()] = self.time;
                self.stats.bump(CounterId::FaultNodeUp);
                self.trace_fault("node_up", node);
                self.dispatch(node, |mac, ctx| mac.on_restart(ctx));
                self.check_channel_edge(node);
            }
            FaultAction::LockupStart(node) => {
                if self.radios.power_off(node.index()) {
                    self.stats.bump(CounterId::FaultRxDropped);
                }
                self.stats.bump(CounterId::FaultLockup);
                self.trace_fault("lockup", node);
                // The MAC keeps running and observes carrier stuck busy.
                self.check_channel_edge(node);
            }
            FaultAction::LockupEnd(node) => {
                self.radios.power_on(node.index());
                self.stats.bump(CounterId::FaultLockupEnd);
                self.trace_fault("lockup_end", node);
                // Busy -> idle recovery edge wakes carrier-waiting MACs.
                self.check_channel_edge(node);
            }
        }
    }

    fn trace_fault(&mut self, kind: &'static str, node: NodeId) {
        if self.stats.trace_enabled() {
            self.stats.emit(
                self.time,
                TraceEvent::FaultInjected {
                    kind,
                    node: u32::try_from(node.index()).unwrap_or(u32::MAX),
                },
            );
        }
    }

    fn handle_audit(&mut self) {
        for node in 0..self.node_count() {
            if !self.radios.invariants_ok(node) {
                self.stats.bump(CounterId::WatchdogRadioState);
            }
        }
        // MAC liveness: an up node with pending data must have had *some*
        // callback within the window (the longest legitimate quiet period —
        // CMAP's retransmission wait — tops out near 0.5 s).
        let mut stalled = 0u64;
        if let Some(f) = self.faults.as_deref() {
            for node in 0..self.node_count() {
                if f.node_up[node]
                    && self.time.saturating_sub(f.last_dispatch[node])
                        > self.watchdog.liveness_window
                    && self.apps[node].has_data(&self.flows)
                {
                    stalled += 1;
                }
            }
        }
        if stalled > 0 {
            self.stats.add(CounterId::WatchdogStalled, stalled);
        }
        self.sched
            .schedule(self.time + self.watchdog.audit_period, Event::Audit);
    }

    fn grade_and_deliver(&mut self, rx: NodeId, c: RxCompletion) {
        let rate = self.pool.rate_of(c.tx_id);
        let wire_len = self.pool.wire_len(c.tx_id);
        let (p_success, lookups) =
            grade_reception(&c, self.time, rate, wire_len, &self.phy, self.ber_table);
        self.ber_lookups += lookups;
        let rss_dbm = mw_to_dbm(c.signal_mw);
        let decoded = self.rngs[rx.index()].gen_bool(p_success.clamp(0.0, 1.0));
        // Fault injection: a decoded frame may be corrupted (CRC escape
        // caught late) or delivered twice (duplication). Draws come from a
        // dedicated stream and only when the plan asks, so fault-free runs
        // consume no extra randomness.
        let corrupted = decoded
            && match self.faults.as_deref_mut() {
                Some(f) if f.plan.corrupt_prob > 0.0 => f.corrupt_rng.gen_bool(f.plan.corrupt_prob),
                _ => false,
            };
        if corrupted {
            self.stats.bump(CounterId::FaultCorrupted);
        }
        if decoded && !corrupted {
            self.stats.bump(CounterId::SimRxOk);
            let info = RxInfo {
                rss_dbm,
                start: c.lock_time,
                end: self.time,
                rate,
            };
            // Move the bytes out of the slot for the duration of the
            // callback: the MAC may itself claim a pool slot (e.g. to
            // compose an ACK), which must not alias the frame it is
            // reading. The slot stays live, so its index cannot be reused.
            let buf = self.pool.take_buf(c.tx_id);
            let view = FrameView::parse(&buf).expect("pool frames are engine-composed");
            self.dispatch(rx, |mac, ctx| mac.on_rx_frame(ctx, &view, info));
            let duplicated = match self.faults.as_deref_mut() {
                Some(f) if f.plan.dup_frame_prob > 0.0 => {
                    f.corrupt_rng.gen_bool(f.plan.dup_frame_prob)
                }
                _ => false,
            };
            if duplicated {
                self.stats.bump(CounterId::FaultDupDelivered);
                self.dispatch(rx, |mac, ctx| mac.on_rx_frame(ctx, &view, info));
            }
            self.pool.put_buf(c.tx_id, buf);
        } else {
            self.stats.bump(CounterId::SimRxFail);
            let err = RxErrorInfo {
                start: c.lock_time,
                end: self.time,
                rss_dbm,
            };
            self.dispatch(rx, |mac, ctx| mac.on_rx_error(ctx, err));
        }
        // The interference profile buffer goes back to the radio for the
        // next lock — grading is the hottest allocation site otherwise.
        self.radios.recycle_profile(rx.index(), c.interference);
    }

    /// Run `f` against `node`'s MAC with a fresh context, then apply the
    /// operations it queued.
    fn dispatch<F: FnOnce(&mut dyn Mac, &mut NodeCtx<'_>)>(&mut self, node: NodeId, f: F) {
        if let Some(fs) = self.faults.as_deref_mut() {
            if !fs.node_up[node.index()] {
                // A crashed node's MAC gets no callbacks; pending timers
                // from before the crash are swallowed here.
                self.stats.bump(CounterId::FaultDispatchSuppressed);
                return;
            }
            fs.last_dispatch[node.index()] = self.time;
        }
        let mut mac = self.macs[node.index()].take().expect("mac reentrancy");
        let mut ops: Vec<Op> = self.ops_pool.pop().unwrap_or_default();
        {
            let mut ctx = NodeCtx {
                node,
                now: self.time,
                phase: self.radios.phase(node.index()),
                busy: self.radios.busy(node.index(), &self.phy),
                mac_addr: MacAddr::from_node_index(node.index() as u16),
                abort_rx_on_tx: self.phy.abort_rx_on_tx,
                tx_requested: false,
                radio_ok: !self.radios.is_disabled(node.index()),
                rng: &mut self.rngs[node.index()],
                pool: &mut self.pool,
                app: &mut self.apps[node.index()],
                flows: &mut self.flows,
                stats: &mut self.stats,
                ops: &mut ops,
            };
            f(&mut *mac, &mut ctx);
        }
        self.macs[node.index()] = Some(mac);
        self.apply_ops(node, &mut ops);
        ops.clear();
        self.ops_pool.push(ops);
    }

    fn apply_ops(&mut self, node: NodeId, ops: &mut [Op]) {
        // Transmissions first: a deliver below may recursively wake a relay
        // MAC at this same node, and the radio must already reflect the
        // transmission this callback requested (e.g. an ACK) so the relay's
        // transmit attempt fails cleanly instead of double-transmitting.
        for op in ops.iter() {
            if let Op::Timer { at, token } = op {
                // Clock-skew fault: this node's timer delays stretch by its
                // configured ppm (frame timing is unaffected — skew models
                // the MAC's oscillator, not the medium).
                let at = match self.faults.as_deref() {
                    Some(f) => self.time + f.skew_delay(node, at.saturating_sub(self.time)),
                    None => *at,
                };
                self.sched.schedule(
                    at,
                    Event::Timer {
                        node,
                        token: *token,
                    },
                );
            }
        }
        for op in ops.iter() {
            if let Op::StartTx { tx_id, rate } = op {
                self.start_tx(node, *tx_id, *rate);
            }
        }
        for op in ops.iter() {
            if let Op::Deliver { flow, flow_seq } = op {
                self.handle_deliver(node, *flow, *flow_seq);
            }
        }
    }

    fn start_tx(&mut self, node: NodeId, tx_id: TxId, rate: Rate) {
        if self.radios.is_disabled(node.index()) {
            // `NodeCtx::transmit_with` already gates on this; belt-and-braces
            // so a fault landing between callback and apply can't raise a
            // dead node's antenna.
            self.stats.bump(CounterId::FaultTxBlocked);
            self.pool.free_unsent(tx_id);
            return;
        }
        debug_assert!(
            self.radios.phase(node.index()) != RadioPhase::Transmitting,
            "start_tx while transmitting"
        );
        // The MAC already composed the wire bytes into the pool slot;
        // debug builds re-parse every transmitted frame against the
        // reference decoder.
        debug_assert!(
            Frame::parse(self.pool.buf(tx_id)).is_ok(),
            "composed frame fails the reference parser"
        );
        let wire_len = self.pool.wire_len(tx_id);
        let airtime = rate.frame_airtime_ns(wire_len);
        if !self.radios.begin_tx(node.index(), tx_id) {
            // Half-duplex violation: refuse the transmission and record it
            // rather than corrupting the radio state machine.
            self.stats.bump(CounterId::WatchdogHalfDuplex);
            self.pool.free_unsent(tx_id);
            return;
        }
        // No notification for our own busy edge: the MAC knows it started
        // transmitting. Keep the cached flag consistent so the TxEnd edge
        // (busy -> idle) is seen.
        let busy = self.radios.busy(node.index(), &self.phy);
        self.radios.set_last_busy(node.index(), busy);

        let end = self.time + airtime;
        self.sched.schedule(end, Event::TxEnd { node, tx_id });
        // One release per receiver FrameEnd plus one for our own TxEnd —
        // the record drains exactly when the air is clear everywhere.
        let mut ends = 1;
        let (sched, medium, now) = (&mut self.sched, &self.medium, self.time);
        for &rx in medium.reachable(node) {
            let d = medium.delay_ns(node, rx);
            sched.schedule(now + d, Event::FrameStart { rx, tx_id });
            sched.schedule(end + d, Event::FrameEnd { rx, tx_id });
            ends += 1;
        }
        if self.stats.trace_enabled() {
            let kind = FrameKind::from_u8(self.pool.buf(tx_id)[0])
                .expect("composed frame has a valid tag");
            self.stats.emit(
                self.time,
                TraceEvent::TxStart {
                    node: u32::try_from(node.index()).unwrap_or(u32::MAX),
                    kind: frame_kind_tag(kind),
                    bytes: u32::try_from(wire_len).unwrap_or(u32::MAX),
                    rate_mbps: u32::try_from(rate.bits_per_sec() / 1_000_000).unwrap_or(u32::MAX),
                },
            );
        }
        self.pool.arm(tx_id, node, rate, self.time, ends);
        self.stats.bump(CounterId::SimTx);
    }

    fn handle_deliver(&mut self, node: NodeId, flow: u16, seq: u32) {
        if flow as usize >= self.flows.len() {
            self.stats.bump(CounterId::SimUnknownFlow);
            return;
        }
        if self.flows[flow as usize].dst != node {
            self.stats.bump(CounterId::SimMisdelivered);
            return;
        }
        if !self.stats.record_delivery(flow, seq, self.time) {
            return; // duplicate: don't re-feed relays
        }
        let relay_ids: Vec<u16> = self
            .flows
            .iter()
            .filter(|g| {
                g.src == node && matches!(g.kind, FlowKind::Relay { upstream } if upstream == flow)
            })
            .map(|g| g.id)
            .collect();
        let mut wake = false;
        for rid in relay_ids {
            if self.apps[node.index()].push_relay(rid, seq) {
                wake = true;
            }
        }
        if wake {
            self.dispatch(node, |mac, ctx| mac.on_packet_queued(ctx));
            self.check_channel_edge(node);
        }
    }

    /// Fire `on_channel_state` edges until the node's CCA stabilises.
    fn check_channel_edge(&mut self, node: NodeId) {
        for _ in 0..4 {
            let busy = self.radios.busy(node.index(), &self.phy);
            if busy == self.radios.last_busy(node.index()) {
                break;
            }
            self.radios.set_last_busy(node.index(), busy);
            self.dispatch(node, |mac, ctx| mac.on_channel_state(ctx, busy));
        }
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Serialize the complete mid-run state to the versioned `cmap-ckpt/v2`
    /// format: simulation clock, timing-wheel contents, radio bank, RNG
    /// stream positions, MAC protocol state, in-flight transmissions,
    /// statistics, and fault-plan cursors. Restoring the bytes via
    /// [`World::restore`] into an identically-configured world continues
    /// the run **byte-identically** to never having stopped.
    ///
    /// Only callable between [`World::run_until`] calls on a started world;
    /// configuration (medium, PHY, flows, MAC types, fault plan, watchdog)
    /// is *not* captured — the restoring process rebuilds it and the
    /// checkpoint validates that it matches.
    pub fn checkpoint(&self) -> Result<Vec<u8>, crate::ckpt::CkptError> {
        use crate::ckpt::{CkptError, CkptWriter};
        if !self.started {
            return Err(CkptError::Mismatch(
                "checkpoint of a world that never started".to_string(),
            ));
        }
        let mut w = CkptWriter::new();
        // Configuration echo, validated on restore.
        w.u64(self.seed);
        w.len(self.node_count());
        w.len(self.flows.len());
        for f in &self.flows {
            w.u16(f.id);
            w.len(f.src.index());
            w.len(f.dst.index());
            w.len(f.payload_len);
            match f.kind {
                FlowKind::Saturated => w.u8(0),
                FlowKind::Relay { upstream } => {
                    w.u8(1);
                    w.u16(upstream);
                }
            }
            w.u32(f.next_seq);
        }
        w.u64(self.watchdog.audit_period);
        w.u64(self.watchdog.liveness_window);
        // v2: the medium's structural fingerprint, so a checkpoint refuses
        // to restore over a world whose propagation engine or link set
        // differs from the one it was taken under.
        w.u64(self.medium.fingerprint());
        match self.faults.as_deref() {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                w.str(&f.plan.to_spec());
            }
        }
        // Dynamic engine state. (The u64 after the clock held the next tx
        // id before the frame pool; it now carries the pool's slot-array
        // capacity so restore rebuilds an identically-shaped free list.)
        w.u64(self.time);
        w.u64(self.pool.capacity() as u64);
        w.u64(self.pool.high_water() as u64);
        w.u64(self.pool.recycled());
        w.u64(self.ber_lookups);
        w.u64(self.synced_events);
        w.u64(self.synced_lookups);
        w.u64(self.synced_cascades);
        self.sched.ckpt_save(&mut w);
        self.radios.ckpt_save(&mut w);
        for rng in &self.rngs {
            for word in rng.state() {
                w.u64(word);
            }
        }
        for app in &self.apps {
            app.ckpt_save(&mut w);
        }
        let live = self.pool.live_ids();
        w.len(live.len());
        for tx_id in live {
            w.u64(tx_id);
            w.len(self.pool.node_of(tx_id).index());
            w.u8(self.pool.rate_of(tx_id).to_u8());
            w.u64(self.pool.start_of(tx_id));
            w.bytes(self.pool.buf(tx_id));
            w.len(self.pool.wire_len(tx_id));
            w.u32(self.pool.ends_of(tx_id));
        }
        self.stats.ckpt_save(&mut w)?;
        if let Some(f) = self.faults.as_deref() {
            f.ckpt_save(&mut w);
        }
        // Per-MAC protocol state, length-framed so each MAC only sees its
        // own blob.
        let mut blob = Vec::new();
        for (node, mac) in self.macs.iter().enumerate() {
            blob.clear();
            mac.as_deref()
                .unwrap_or_else(|| panic!("mac {node} taken during checkpoint"))
                .save_state(&mut blob);
            w.bytes(&blob);
        }
        Ok(w.finish())
    }

    /// Restore a [`World::checkpoint`] into this world, which must be
    /// configured identically (same medium/PHY/seed, same flows, same MAC
    /// types, same fault plan and watchdog) and **not yet started**. On
    /// success the world is mid-run exactly as the checkpointed one was;
    /// continue with [`World::run_until`]. Do not call [`World::start`] —
    /// the restored wheel already carries every pending event.
    ///
    /// On error the world may be partially overwritten and must be
    /// discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), crate::ckpt::CkptError> {
        use crate::ckpt::{CkptError, CkptReader};
        if self.started {
            return Err(CkptError::Mismatch(
                "restore into an already-started world".to_string(),
            ));
        }
        let mut r = CkptReader::new(bytes)?;
        let seed = r.u64()?;
        if seed != self.seed {
            return Err(CkptError::Mismatch(format!(
                "checkpoint seed {seed} != world seed {}",
                self.seed
            )));
        }
        let nodes = r.len()?;
        if nodes != self.node_count() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint has {nodes} nodes, world has {}",
                self.node_count()
            )));
        }
        let flow_count = r.len()?;
        if flow_count != self.flows.len() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint has {flow_count} flows, world has {}",
                self.flows.len()
            )));
        }
        for f in &mut self.flows {
            let id = r.u16()?;
            let src = NodeId::new(r.len()?);
            let dst = NodeId::new(r.len()?);
            let payload_len = r.len()?;
            let kind = match r.u8()? {
                0 => FlowKind::Saturated,
                1 => FlowKind::Relay { upstream: r.u16()? },
                other => {
                    return Err(CkptError::Malformed(format!("flow kind tag {other}")));
                }
            };
            if (id, src, dst, payload_len, kind) != (f.id, f.src, f.dst, f.payload_len, f.kind) {
                return Err(CkptError::Mismatch(format!(
                    "flow {id} configuration differs from checkpoint"
                )));
            }
            f.next_seq = r.u32()?;
        }
        let audit_period = r.u64()?;
        let liveness_window = r.u64()?;
        if audit_period != self.watchdog.audit_period
            || liveness_window != self.watchdog.liveness_window
        {
            return Err(CkptError::Mismatch(
                "watchdog configuration differs from checkpoint".to_string(),
            ));
        }
        let fingerprint = r.u64()?;
        if fingerprint != self.medium.fingerprint() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint medium fingerprint {fingerprint:#018x} != world {:#018x}",
                self.medium.fingerprint()
            )));
        }
        let ckpt_has_faults = r.bool()?;
        if ckpt_has_faults != self.faults.is_some() {
            return Err(CkptError::Mismatch(
                "fault plan presence differs from checkpoint".to_string(),
            ));
        }
        if ckpt_has_faults {
            let spec = r.str()?;
            let installed = self.faults.as_deref().expect("checked").plan.to_spec();
            if spec != installed {
                return Err(CkptError::Mismatch(
                    "fault plan differs from checkpoint".to_string(),
                ));
            }
        }
        self.time = r.u64()?;
        let pool_capacity = r.u64()?;
        // 2^24 in-flight slots is far beyond any reachable state; larger
        // values mean a corrupt checkpoint, not a big run.
        if pool_capacity > (1 << 24) {
            return Err(CkptError::Malformed(format!(
                "frame-pool capacity {pool_capacity}"
            )));
        }
        self.pool.reset_for_restore(pool_capacity as usize);
        let pool_high_water = r.u64()?;
        let pool_recycled = r.u64()?;
        self.ber_lookups = r.u64()?;
        self.synced_events = r.u64()?;
        self.synced_lookups = r.u64()?;
        self.synced_cascades = r.u64()?;
        self.sched = Scheduler::ckpt_load(&mut r)?;
        self.radios = RadioBank::ckpt_load(&mut r, self.node_count())?;
        for rng in &mut self.rngs {
            let mut words = [0u64; 4];
            for word in &mut words {
                *word = r.u64()?;
            }
            *rng = SmallRng::from_state(words);
        }
        for app in &mut self.apps {
            app.ckpt_load(&mut r)?;
        }
        let tx_count = r.len()?;
        for _ in 0..tx_count {
            let tx_id = r.u64()?;
            let node = r.len()?;
            if node >= self.node_count() {
                return Err(CkptError::Malformed(format!("tx node {node}")));
            }
            let node = NodeId::new(node);
            let rate_tag = r.u8()?;
            let rate = Rate::from_u8(rate_tag)
                .ok_or_else(|| CkptError::Malformed(format!("rate tag {rate_tag}")))?;
            let start = r.u64()?;
            let frame_bytes = r.bytes()?.to_vec();
            Frame::parse(&frame_bytes)
                .map_err(|e| CkptError::Malformed(format!("tx {tx_id} frame: {e:?}")))?;
            let wire_len = r.len()?;
            let ends_remaining = r.u32()?;
            if wire_len != frame_bytes.len() {
                return Err(CkptError::Malformed(format!(
                    "tx {tx_id} wire_len {wire_len} != {} frame bytes",
                    frame_bytes.len()
                )));
            }
            if !self
                .pool
                .restore_slot(tx_id, node, rate, start, frame_bytes, ends_remaining)
            {
                return Err(CkptError::Malformed(format!("bad or duplicate tx {tx_id}")));
            }
        }
        self.pool.finish_restore();
        self.pool
            .restore_counters(pool_high_water as usize, pool_recycled);
        // The perf-totals sync point follows the restored counter so the
        // next `run_until` only publishes post-restore recycle deltas.
        self.synced_pool_recycled = self.pool.recycled();
        self.stats = Stats::ckpt_load(&mut r)?;
        if let Some(f) = self.faults.as_deref_mut() {
            f.ckpt_load(&mut r)?;
        }
        for node in 0..self.node_count() {
            let blob = r.bytes()?;
            self.macs[node]
                .as_deref_mut()
                .unwrap_or_else(|| panic!("mac {node} taken during restore"))
                .load_state(blob)
                .map_err(|e| CkptError::Mismatch(format!("node {node} MAC state: {e}")))?;
        }
        r.expect_end()?;
        // Mid-run: `start` must never fire again (the restored wheel
        // already carries the fault schedule, audits and MAC timers).
        self.started = true;
        self.stats.ensure_flows(self.flows.len());
        Ok(())
    }
}

/// Stable snake_case tag for a frame kind (the trace `kind` field).
const fn frame_kind_tag(k: FrameKind) -> &'static str {
    match k {
        FrameKind::CmapHeader => "cmap_header",
        FrameKind::CmapTrailer => "cmap_trailer",
        FrameKind::CmapData => "cmap_data",
        FrameKind::CmapAck => "cmap_ack",
        FrameKind::CmapInterfererList => "cmap_interferer_list",
        FrameKind::Dot11Data => "dot11_data",
        FrameKind::Dot11Ack => "dot11_ack",
    }
}

/// Probability that the payload of a locked frame decodes, given the
/// interference profile recorded during reception, plus the number of BER
/// table lookups performed (one per graded interference segment).
///
/// The frame's information bits are spread uniformly over the payload span
/// (lock + preamble/SIGNAL to frame end); each piecewise-constant
/// interference segment contributes its share of bits at its own SINR.
fn grade_reception(
    c: &RxCompletion,
    frame_end: Time,
    rate: Rate,
    psdu_len: usize,
    phy: &PhyConfig,
    table: &BerTable,
) -> (f64, u64) {
    let payload_start = c.lock_time + PLCP_PREAMBLE_NS + PLCP_SIG_NS;
    if frame_end <= payload_start {
        return (1.0, 0); // degenerate: nothing beyond the already-decoded SIGNAL
    }
    let span = (frame_end - payload_start) as f64;
    let total_bits =
        (cmap_phy::rate::SERVICE_BITS + 8 * psdu_len as u64 + cmap_phy::rate::TAIL_BITS) as f64;
    let noise = phy.noise_mw();

    let mut ln_p = 0.0_f64;
    let mut lookups = 0u64;
    let profile = &c.interference;
    for (i, &(seg_start, level)) in profile.iter().enumerate() {
        let seg_end = profile.get(i + 1).map_or(frame_end, |&(t, _)| t);
        let lo = seg_start.max(payload_start);
        let hi = seg_end.min(frame_end);
        if hi <= lo {
            continue;
        }
        let bits = total_bits * (hi - lo) as f64 / span;
        let sinr = c.signal_mw / (noise + level);
        let ber = table.ber(sinr, rate);
        lookups += 1;
        ln_p += bits * (-ber).ln_1p();
    }
    (ln_p.exp(), lookups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{micros, millis};
    use std::collections::BTreeMap;

    /// A MAC that transmits one Dot11 data frame per timer tick, forever —
    /// composing straight into the pool buffer (the hot path).
    struct Blaster {
        dst: MacAddr,
        period: Time,
        payload: usize,
        sent: u64,
    }

    impl Mac for Blaster {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            let (src, dst) = (ctx.mac_addr(), self.dst);
            let (seq, flow_seq) = (self.sent as u16, self.sent as u32);
            let payload = self.payload;
            let ok = ctx.transmit_with(Rate::R6, |buf| {
                cmap_wire::view::compose::dot11_data(
                    buf, src, dst, seq, false, 0, 0, flow_seq, payload, 0xC5,
                );
            });
            if ok {
                self.sent += 1;
            }
            ctx.set_timer(self.period, 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    /// A MAC that counts every frame and error it sees.
    #[derive(Default)]
    struct Sniffer {
        frames: u64,
        errors: u64,
        busy_edges: u64,
    }

    impl Mac for Sniffer {
        fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
        fn on_rx_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &FrameView<'_>, _info: RxInfo) {
            self.frames += 1;
            if let FrameView::Dot11Data(d) = frame {
                if d.dst() == ctx.mac_addr() {
                    ctx.deliver(d.flow(), d.flow_seq());
                }
            }
        }
        fn on_rx_error(&mut self, _ctx: &mut NodeCtx<'_>, _err: RxErrorInfo) {
            self.errors += 1;
        }
        fn on_channel_state(&mut self, _ctx: &mut NodeCtx<'_>, busy: bool) {
            if busy {
                self.busy_edges += 1;
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn strong_pair_world(seed: u64) -> World {
        let phy = PhyConfig::default();
        // -55 dBm RSS: clean
        let medium = crate::medium::MediumBuilder::new(&phy)
            .uniform(2, -70.0)
            .build();
        World::builder().medium(medium).phy(phy).seed(seed).build()
    }

    fn uniform_world(n: usize, seed: u64) -> World {
        let phy = PhyConfig::default();
        let medium = crate::medium::MediumBuilder::new(&phy)
            .uniform(n, -70.0)
            .build();
        World::builder().medium(medium).phy(phy).seed(seed).build()
    }

    #[test]
    fn clean_link_delivers_everything() {
        let mut w = strong_pair_world(1);
        let flow = w.add_flow(0, 1, 100);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(2),
                payload: 100,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        // ~500 frames sent; all should arrive on a -55 dBm link.
        let sent = w
            .mac_ref(0)
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap()
            .sent;
        assert!((450..=500).contains(&(sent as usize)), "{sent}");
        let got = w.stats().flow(flow).arrivals.len() as u64;
        // The final frame may still be in flight when the clock stops.
        assert!(got >= sent - 1 && got <= sent, "{got} of {sent}");
        assert_eq!(w.stats().counter(CounterId::SimRxFail), 0);
    }

    #[test]
    fn colliding_transmissions_corrupt_each_other() {
        // Three nodes: 0 and 1 blast at the same period and phase, 2 listens.
        let mut w = uniform_world(3, 3);
        w.add_flow(0, 2, 1000);
        w.add_flow(1, 2, 1000);
        for src in [0usize, 1] {
            w.set_mac(
                src,
                Box::new(Blaster {
                    dst: MacAddr::from_node_index(2),
                    period: millis(2),
                    payload: 1000,
                    sent: 0,
                }),
            );
        }
        w.set_mac(2, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        // Equal-power full collisions at node 2: most frames die, but the
        // capture effect (per-frame fading occasionally giving one frame
        // enough SINR) lets a minority through — exactly the phenomenon the
        // paper cites [18, 20].
        let sn = w.mac_ref(2).as_any().downcast_ref::<Sniffer>().unwrap();
        let sent: u64 = [0usize, 1]
            .iter()
            .map(|&n| {
                w.mac_ref(n)
                    .as_any()
                    .downcast_ref::<Blaster>()
                    .unwrap()
                    .sent
            })
            .sum();
        assert!(
            (sn.frames as f64) < 0.35 * sent as f64,
            "expected mostly collision loss, got {} of {sent} frames",
            sn.frames
        );
        assert!(w.stats().counter(CounterId::SimRxFail) > sent / 5);
    }

    #[test]
    fn staggered_transmissions_all_decode() {
        // Same three nodes, but sender 1 offset by half a period: no overlap
        // (frames are ~153 us long, spacing is 1 ms).
        let mut w = uniform_world(3, 4);
        w.add_flow(0, 2, 100);
        w.add_flow(1, 2, 100);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(2),
                period: millis(2),
                payload: 100,
                sent: 0,
            }),
        );
        // Offset via a different period that avoids sustained overlap.
        w.set_mac(
            1,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(2),
                period: millis(2) + micros(700),
                payload: 100,
                sent: 0,
            }),
        );
        w.set_mac(2, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        let sn = w.mac_ref(2).as_any().downcast_ref::<Sniffer>().unwrap();
        let sent0 = w
            .mac_ref(0)
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap()
            .sent;
        let sent1 = w
            .mac_ref(1)
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap()
            .sent;
        // Most frames decode; occasional collisions when phases align.
        assert!(
            sn.frames as f64 > 0.85 * (sent0 + sent1) as f64,
            "{} of {}",
            sn.frames,
            sent0 + sent1
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut w = strong_pair_world(seed);
            let flow = w.add_flow(0, 1, 64);
            w.set_mac(
                0,
                Box::new(Blaster {
                    dst: MacAddr::from_node_index(1),
                    period: micros(500),
                    payload: 64,
                    sent: 0,
                }),
            );
            w.set_mac(1, Box::new(Sniffer::default()));
            w.run_until(crate::time::secs(1));
            (w.stats().flow(flow).arrivals.clone(), w.events_processed())
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        // Different seed: same frame count (timers are deterministic) but
        // the run should not be bit-identical in general; we only check it
        // doesn't crash and produces comparable volume.
        assert!((c.1 as i64 - a.1 as i64).abs() < 100);
    }

    #[test]
    fn relay_flow_forwards_deliveries() {
        // 0 -> 1 (flow a), 1 relays to 2 (flow b). Use sniffer-like relay:
        // node 1 runs a Mac that forwards on_packet_queued.
        struct Relay {
            fwd: u64,
        }
        impl Mac for Relay {
            fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
            fn on_rx_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &FrameView<'_>, _info: RxInfo) {
                if let FrameView::Dot11Data(d) = frame {
                    if d.dst() == ctx.mac_addr() {
                        ctx.deliver(d.flow(), d.flow_seq());
                    }
                }
            }
            fn on_packet_queued(&mut self, ctx: &mut NodeCtx<'_>) {
                // One packet per wake; chaining the rest would need
                // on_tx_done plumbing this simple test MAC doesn't have.
                if let Some(p) = ctx.app_pop() {
                    let frame = Frame::Dot11Data(cmap_wire::dot11::Data {
                        src: ctx.mac_addr(),
                        dst: p.dst_mac,
                        seq: 0,
                        retry: false,
                        duration_ns: 0,
                        flow: p.flow,
                        flow_seq: p.flow_seq,
                        payload: vec![0; p.payload_len],
                    });
                    if ctx.transmit(frame, Rate::R6) {
                        self.fwd += 1;
                    }
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }

        let mut w = uniform_world(3, 5);
        let a = w.add_flow(0, 1, 64);
        let b = w.add_relay_flow(1, 2, 64, a);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(5),
                payload: 64,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Relay { fwd: 0 }));
        w.set_mac(2, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        let a_count = w.stats().flow(a).arrivals.len();
        let b_count = w.stats().flow(b).arrivals.len();
        assert!(a_count > 150, "upstream {a_count}");
        // The relay forwards most packets (some lost to half-duplex timing).
        assert!(
            b_count as f64 > 0.5 * a_count as f64,
            "relay {b_count} of {a_count}"
        );
    }

    #[test]
    fn busy_edges_fire_at_listeners() {
        let mut w = strong_pair_world(9);
        w.add_flow(0, 1, 256);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(10),
                payload: 256,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        let sn = w.mac_ref(1).as_any().downcast_ref::<Sniffer>().unwrap();
        // One busy edge per frame (~100 frames).
        assert!(sn.busy_edges >= 90, "{}", sn.busy_edges);
    }

    #[test]
    fn tx_records_drain_when_the_air_clears() {
        // Regression: TxEnd never released its share of the record, so one
        // TxRecord (and its Arc<Frame>) leaked per transmission.
        let mut w = strong_pair_world(13);
        w.add_flow(0, 1, 256);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(2),
                payload: 256,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        let sent = w
            .mac_ref(0)
            .as_any()
            .downcast_ref::<Blaster>()
            .unwrap()
            .sent;
        assert!(sent > 400, "{sent}");
        // At most the final frame can still be in flight.
        assert!(w.inflight_tx_count() <= 1, "{}", w.inflight_tx_count());
    }

    #[test]
    fn churn_outage_silences_and_restarts_a_node() {
        use crate::faults::{FaultPlan, Outage};
        let run = |plan: Option<FaultPlan>| {
            let mut w = strong_pair_world(21);
            let flow = w.add_flow(0, 1, 100);
            w.set_mac(
                0,
                Box::new(Blaster {
                    dst: MacAddr::from_node_index(1),
                    period: millis(2),
                    payload: 100,
                    sent: 0,
                }),
            );
            w.set_mac(1, Box::new(Sniffer::default()));
            if let Some(p) = plan {
                w.install_faults(p);
            }
            w.run_until(crate::time::secs(1));
            let during = w.stats().flow(flow).delivered_in(millis(300), millis(600));
            let after = w
                .stats()
                .flow(flow)
                .delivered_in(millis(600), crate::time::secs(1));
            (during, after, w.watchdog_violations())
        };
        // Clean run delivers throughout.
        let (clean_during, clean_after, v) = run(None);
        assert!(clean_during > 100 && clean_after > 100);
        assert_eq!(v, 0);
        // Receiver down 300–600 ms: nothing delivered in the hole, full
        // rate resumes after restart, and the watchdog stays quiet.
        let plan = FaultPlan {
            churn: vec![Outage {
                node: NodeId::new(1),
                down_at: millis(300),
                up_at: millis(600),
            }],
            ..FaultPlan::default()
        };
        let (during, after, v) = run(Some(plan));
        assert_eq!(during, 0, "deaf node still received");
        assert!(after > 100, "node did not come back: {after}");
        assert_eq!(v, 0, "watchdog violations");
    }

    #[test]
    fn lockup_blocks_transmit_but_mac_survives() {
        use crate::faults::{FaultPlan, Lockup};
        let mut w = strong_pair_world(22);
        let flow = w.add_flow(0, 1, 100);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(2),
                payload: 100,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Sniffer::default()));
        w.install_faults(FaultPlan {
            lockups: vec![Lockup {
                node: NodeId::new(0),
                at: millis(300),
                until: millis(600),
            }],
            ..FaultPlan::default()
        });
        w.run_until(crate::time::secs(1));
        // The Blaster's timer keeps firing during the lockup (transmit just
        // fails), and sending resumes after recovery.
        let during = w.stats().flow(flow).delivered_in(millis(310), millis(600));
        let after = w
            .stats()
            .flow(flow)
            .delivered_in(millis(600), crate::time::secs(1));
        assert_eq!(during, 0, "wedged radio still transmitted");
        assert!(after > 100, "radio did not recover: {after}");
        assert_eq!(w.watchdog_violations(), 0);
    }

    #[test]
    fn same_seed_fault_runs_are_identical() {
        use crate::faults::FaultPlan;
        let run = |seed| {
            let mut w = uniform_world(3, seed);
            let flow = w.add_flow(0, 2, 200);
            w.set_mac(
                0,
                Box::new(Blaster {
                    dst: MacAddr::from_node_index(2),
                    period: millis(1),
                    payload: 200,
                    sent: 0,
                }),
            );
            w.set_mac(2, Box::new(Sniffer::default()));
            w.install_faults(FaultPlan::mixed(3, crate::time::secs(1)));
            w.run_until(crate::time::secs(1));
            assert_eq!(w.watchdog_violations(), 0);
            (
                w.stats().snapshot(),
                w.events_processed(),
                w.stats().flow(flow).arrivals.len(),
            )
        };
        let a = run(31);
        let b = run(31);
        assert_eq!(a, b, "same-seed fault runs diverged");
        assert!(a.2 > 100, "mixed plan killed the link: {}", a.2);
        let c = run(32);
        assert_ne!(a.0, c.0, "seed had no effect under faults");
    }

    #[test]
    fn tracing_observes_without_perturbing() {
        let run = |traced: bool| {
            let mut w = strong_pair_world(17);
            w.add_flow(0, 1, 100);
            w.set_mac(
                0,
                Box::new(Blaster {
                    dst: MacAddr::from_node_index(1),
                    period: millis(2),
                    payload: 100,
                    sent: 0,
                }),
            );
            w.set_mac(1, Box::new(Sniffer::default()));
            if traced {
                w.enable_trace(1 << 16);
            }
            w.run_until(crate::time::secs(1));
            let trace = w.take_trace();
            (w.stats().snapshot(), w.events_processed(), trace)
        };
        let (snap_off, ev_off, tr_off) = run(false);
        let (snap_on, ev_on, tr_on) = run(true);
        assert!(tr_off.is_none());
        let tr = tr_on.unwrap();
        assert!(tr.emitted() > 400, "{}", tr.emitted());
        assert!(tr.records().all(|r| matches!(
            r.ev,
            TraceEvent::TxStart {
                kind: "dot11_data",
                ..
            }
        )));
        // Tracing is an observer: behavioural stats and the event stream
        // are untouched by turning it on.
        assert_eq!(snap_off, snap_on);
        assert_eq!(ev_off, ev_on);
    }

    #[test]
    fn event_counts_partition_processed_events() {
        let mut w = strong_pair_world(18);
        w.add_flow(0, 1, 100);
        w.set_mac(
            0,
            Box::new(Blaster {
                dst: MacAddr::from_node_index(1),
                period: millis(2),
                payload: 100,
                sent: 0,
            }),
        );
        w.set_mac(1, Box::new(Sniffer::default()));
        w.run_until(crate::time::secs(1));
        let counts = w.event_counts();
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, w.events_processed());
        let by: BTreeMap<&str, u64> = counts.into_iter().collect();
        assert!(by["timer"] > 400, "{by:?}");
        assert!(by["frame_start"] > 400, "{by:?}");
        assert_eq!(by["fault"], 0);
    }

    #[test]
    fn misdelivery_is_counted_not_crashing() {
        struct Bad;
        impl Mac for Bad {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.deliver(0, 1); // flow 0's dst is node 1, not node 0
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut w = strong_pair_world(11);
        w.add_flow(0, 1, 64);
        w.set_mac(0, Box::new(Bad));
        w.run_until(millis(1));
        assert_eq!(w.stats().counter(CounterId::SimMisdelivered), 1);
    }
}
