//! Deterministic fault injection: churn, bursty channels, clock skew,
//! radio lockups and frame corruption — all seed-driven.
//!
//! A [`FaultPlan`] is a *pure description* of what goes wrong during a run:
//! which nodes crash and when, how links degrade, which clocks drift. It is
//! serializable (a `key=value` text form, [`FaultPlan::to_spec`] /
//! [`FaultPlan::from_spec`]) so a failing chaos-soak case can be reproduced
//! from its printed spec alone. The runtime state ([`FaultState`]) derives
//! every random draw from the world's master seed via dedicated streams, so
//! installing a fault plan never perturbs the per-node RNG streams — and a
//! given (topology, MACs, seed, plan) is still bit-deterministic.
//!
//! Fault taxonomy (DESIGN.md §7):
//! * **Churn** — a node powers off at `down_at` and back on at `up_at`. Its
//!   radio goes deaf immediately; frames it already has on the air finish
//!   (the energy is physically committed). While down, its MAC receives no
//!   callbacks and pending timers are swallowed; on restart the MAC's
//!   [`crate::mac::Mac::on_restart`] runs with protocol state reset.
//! * **Lockup** — the radio front-end wedges mid-frame: reception stops,
//!   carrier reads busy, `transmit` fails, but the MAC keeps running (timers
//!   still fire). Models firmware hangs that heal.
//! * **Gilbert–Elliott** — per-link two-state Markov chain stepped on a
//!   fixed clock; the *bad* state adds `bad_extra_loss_db` of attenuation.
//!   Models bursty interference from non-network sources.
//! * **Shadowing** — stepped log-normal: every `step_ns` each link draws a
//!   fresh `N(0, sigma_db)` offset, constant within the step. Models people
//!   and doors moving through the environment.
//! * **Clock skew** — each node's timer delays stretch by `ppm` parts per
//!   million. Models real oscillator tolerance (±100 ppm is commodity).
//! * **Corruption / duplication** — a decoded frame is flipped to an error
//!   with `corrupt_prob`, or delivered twice with `dup_frame_prob`. Models
//!   CRC escapes and MAC-level retransmit races.

// BTreeMap as a matter of policy (cmap-lint R1): fault bookkeeping feeds the
// simulation, so iteration order must not depend on hash seeds.
use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::node::NodeId;
use crate::rng::{normal, stream_rng};
use crate::time::Time;

/// RNG stream indices far above the per-node streams (node `i` uses stream
/// `i + 1`), so fault randomness never collides with node randomness.
const STREAM_CORRUPT: u64 = 1 << 40;
const STREAM_GE_BASE: u64 = 1 << 41;
const STREAM_SHADOW_BASE: u64 = 1 << 42;

/// One node outage: down at `down_at`, restart at `up_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The node that crashes.
    pub node: NodeId,
    /// When it powers off.
    pub down_at: Time,
    /// When it powers back on (MAC restarts from scratch).
    pub up_at: Time,
}

/// One radio lockup: the front-end wedges at `at` and heals at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lockup {
    /// The affected node.
    pub node: NodeId,
    /// When the radio wedges.
    pub at: Time,
    /// When it heals.
    pub until: Time,
}

/// Gilbert–Elliott bursty degradation applied to every link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Chain step interval.
    pub step_ns: Time,
    /// P(good → bad) per step.
    pub p_enter_bad: f64,
    /// P(bad → good) per step.
    pub p_exit_bad: f64,
    /// Extra attenuation while a link is in the bad state, in dB.
    pub bad_extra_loss_db: f64,
}

/// Stepped log-normal shadowing applied to every link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shadowing {
    /// How long each drawn offset holds.
    pub step_ns: Time,
    /// Standard deviation of the per-step offset, in dB.
    pub sigma_db: f64,
}

/// A complete, serializable description of the faults injected into a run.
///
/// The default plan is empty ("clean"): installing it changes nothing about
/// a run except arming the invariant watchdog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Node crash/restart schedule.
    pub churn: Vec<Outage>,
    /// Radio lockup schedule.
    pub lockups: Vec<Lockup>,
    /// Bursty link degradation, if any.
    pub gilbert_elliott: Option<GilbertElliott>,
    /// Stepped shadowing, if any.
    pub shadowing: Option<Shadowing>,
    /// Per-node clock skew in parts per million.
    pub clock_skew_ppm: Vec<(NodeId, i64)>,
    /// Probability a decoded frame is corrupted to an rx error.
    pub corrupt_prob: f64,
    /// Probability a decoded frame is delivered twice to the MAC.
    pub dup_frame_prob: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, watchdog armed.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// Every node suffers one outage, staggered across the run.
    pub fn churn_heavy(nodes: usize, duration: Time) -> FaultPlan {
        let n = nodes as u64;
        let churn = (0..n)
            .map(|i| {
                let down_at = duration * (i + 1) / (n + 2);
                Outage {
                    node: NodeId::new(i as usize),
                    down_at,
                    up_at: down_at + duration / 12,
                }
            })
            .collect();
        FaultPlan {
            churn,
            ..FaultPlan::default()
        }
    }

    /// Bursty Gilbert–Elliott loss plus slow shadowing on every link.
    pub fn bursty_channel() -> FaultPlan {
        FaultPlan {
            gilbert_elliott: Some(GilbertElliott {
                step_ns: crate::time::millis(5),
                p_enter_bad: 0.08,
                p_exit_bad: 0.35,
                bad_extra_loss_db: 25.0,
            }),
            shadowing: Some(Shadowing {
                step_ns: crate::time::millis(200),
                sigma_db: 4.0,
            }),
            ..FaultPlan::default()
        }
    }

    /// Clock skew, lockups, mild burst loss, corruption and duplication.
    pub fn mixed(nodes: usize, duration: Time) -> FaultPlan {
        let n = nodes as u64;
        let lockups = (0..n)
            .map(|i| {
                let at = duration * (2 * i + 3) / (2 * n + 4);
                Lockup {
                    node: NodeId::new(i as usize),
                    at,
                    until: at + duration / 20,
                }
            })
            .collect();
        let clock_skew_ppm = (0..nodes)
            .map(|i| {
                let ppm = if i % 2 == 0 { 150 } else { -150 };
                (NodeId::new(i), ppm)
            })
            .collect();
        FaultPlan {
            lockups,
            clock_skew_ppm,
            gilbert_elliott: Some(GilbertElliott {
                step_ns: crate::time::millis(10),
                p_enter_bad: 0.03,
                p_exit_bad: 0.5,
                bad_extra_loss_db: 20.0,
            }),
            corrupt_prob: 0.02,
            dup_frame_prob: 0.02,
            ..FaultPlan::default()
        }
    }

    /// The canonical chaos-soak plan set: `(name, plan)` pairs.
    pub fn canonical(nodes: usize, duration: Time) -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("churn-heavy", FaultPlan::churn_heavy(nodes, duration)),
            ("bursty-channel", FaultPlan::bursty_channel()),
            ("mixed", FaultPlan::mixed(nodes, duration)),
        ]
    }

    /// True when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Serialize to the `key=value` text form. Round-trips exactly through
    /// [`FaultPlan::from_spec`] (f64 `Display` is shortest-exact in Rust).
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        if !self.churn.is_empty() {
            let items: Vec<String> = self
                .churn
                .iter()
                .map(|o| format!("{}:{}:{}", o.node, o.down_at, o.up_at))
                .collect();
            out.push_str(&format!("churn={}\n", items.join(",")));
        }
        if !self.lockups.is_empty() {
            let items: Vec<String> = self
                .lockups
                .iter()
                .map(|l| format!("{}:{}:{}", l.node, l.at, l.until))
                .collect();
            out.push_str(&format!("lockup={}\n", items.join(",")));
        }
        if let Some(ge) = &self.gilbert_elliott {
            out.push_str(&format!(
                "ge={}:{}:{}:{}\n",
                ge.step_ns, ge.p_enter_bad, ge.p_exit_bad, ge.bad_extra_loss_db
            ));
        }
        if let Some(sh) = &self.shadowing {
            out.push_str(&format!("shadow={}:{}\n", sh.step_ns, sh.sigma_db));
        }
        if !self.clock_skew_ppm.is_empty() {
            let items: Vec<String> = self
                .clock_skew_ppm
                .iter()
                .map(|(node, ppm)| format!("{node}:{ppm}"))
                .collect();
            out.push_str(&format!("skew={}\n", items.join(",")));
        }
        if self.corrupt_prob > 0.0 {
            out.push_str(&format!("corrupt_prob={}\n", self.corrupt_prob));
        }
        if self.dup_frame_prob > 0.0 {
            out.push_str(&format!("dup_frame_prob={}\n", self.dup_frame_prob));
        }
        out
    }

    /// Parse the text form produced by [`FaultPlan::to_spec`].
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for line in spec.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("bad line (no '='): {line}"))?;
            match key {
                "churn" => {
                    for item in value.split(',') {
                        let f = parse_fields(item, 3)?;
                        plan.churn.push(Outage {
                            node: NodeId::new(f[0] as usize),
                            down_at: f[1],
                            up_at: f[2],
                        });
                    }
                }
                "lockup" => {
                    for item in value.split(',') {
                        let f = parse_fields(item, 3)?;
                        plan.lockups.push(Lockup {
                            node: NodeId::new(f[0] as usize),
                            at: f[1],
                            until: f[2],
                        });
                    }
                }
                "ge" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 4 {
                        return Err(format!("ge wants 4 fields: {value}"));
                    }
                    plan.gilbert_elliott = Some(GilbertElliott {
                        step_ns: parse_u64(parts[0])?,
                        p_enter_bad: parse_f64(parts[1])?,
                        p_exit_bad: parse_f64(parts[2])?,
                        bad_extra_loss_db: parse_f64(parts[3])?,
                    });
                }
                "shadow" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 2 {
                        return Err(format!("shadow wants 2 fields: {value}"));
                    }
                    plan.shadowing = Some(Shadowing {
                        step_ns: parse_u64(parts[0])?,
                        sigma_db: parse_f64(parts[1])?,
                    });
                }
                "skew" => {
                    for item in value.split(',') {
                        let (node, ppm) = item
                            .split_once(':')
                            .ok_or_else(|| format!("bad skew item: {item}"))?;
                        plan.clock_skew_ppm.push((
                            NodeId::new(parse_u64(node)? as usize),
                            ppm.parse::<i64>().map_err(|e| format!("{item}: {e}"))?,
                        ));
                    }
                }
                "corrupt_prob" => plan.corrupt_prob = parse_f64(value)?,
                "dup_frame_prob" => plan.dup_frame_prob = parse_f64(value)?,
                other => return Err(format!("unknown key: {other}")),
            }
        }
        Ok(plan)
    }
}

fn parse_fields(item: &str, want: usize) -> Result<Vec<u64>, String> {
    let fields: Result<Vec<u64>, String> = item.split(':').map(parse_u64).collect();
    let fields = fields?;
    if fields.len() != want {
        return Err(format!("expected {want} fields in {item}"));
    }
    Ok(fields)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|e| format!("{s}: {e}"))
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|e| format!("{s}: {e}"))
}

/// One scheduled state change derived from a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    NodeDown(NodeId),
    NodeUp(NodeId),
    LockupStart(NodeId),
    LockupEnd(NodeId),
}

/// Lazily-advanced per-link Gilbert–Elliott chain. Each link owns its RNG,
/// so the chain's trajectory is independent of query order.
#[derive(Debug)]
struct GeChain {
    rng: SmallRng,
    step: u64,
    bad: bool,
}

/// Runtime fault state owned by the world while a plan is installed.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    /// Master-seed-derived salt for link-indexed randomness.
    salt: u64,
    n: usize,
    /// Scheduled actions, time-ordered; index is carried by `Event::Fault`.
    pub actions: Vec<(Time, FaultAction)>,
    /// False while a node is crashed (MAC callbacks suppressed).
    pub node_up: Vec<bool>,
    /// Per-node clock skew in ppm (0 = nominal).
    pub skew_ppm: Vec<i64>,
    /// Dedicated stream for corruption/duplication draws.
    pub corrupt_rng: SmallRng,
    /// Per-link GE chains, created on first query.
    ge_chains: BTreeMap<(NodeId, NodeId), GeChain>,
    /// Last time each node's MAC got any callback (liveness watchdog).
    pub last_dispatch: Vec<Time>,
}

impl FaultState {
    pub fn new(plan: FaultPlan, seed: u64, n: usize) -> FaultState {
        let mut actions: Vec<(Time, FaultAction)> = Vec::new();
        for o in &plan.churn {
            assert!(o.node.index() < n, "churn node out of range");
            assert!(o.down_at < o.up_at, "outage must end after it starts");
            actions.push((o.down_at, FaultAction::NodeDown(o.node)));
            actions.push((o.up_at, FaultAction::NodeUp(o.node)));
        }
        for l in &plan.lockups {
            assert!(l.node.index() < n, "lockup node out of range");
            assert!(l.at < l.until, "lockup must end after it starts");
            actions.push((l.at, FaultAction::LockupStart(l.node)));
            actions.push((l.until, FaultAction::LockupEnd(l.node)));
        }
        // Stable sort by time: equal-time actions apply in plan order.
        actions.sort_by_key(|&(t, _)| t);
        let mut skew_ppm = vec![0i64; n];
        for &(node, ppm) in &plan.clock_skew_ppm {
            assert!(node.index() < n, "skew node out of range");
            skew_ppm[node.index()] = ppm;
        }
        FaultState {
            salt: crate::rng::derive_seed(seed, STREAM_GE_BASE - 1),
            n,
            actions,
            node_up: vec![true; n],
            skew_ppm,
            corrupt_rng: stream_rng(seed, STREAM_CORRUPT),
            ge_chains: BTreeMap::new(),
            last_dispatch: vec![0; n],
            plan,
        }
    }

    /// Symmetric link key (faults hit both directions alike).
    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Total extra attenuation (dB, >= 0 means loss) for a frame from `tx`
    /// arriving at `rx` at time `now`.
    pub fn link_offset_db(&mut self, tx: NodeId, rx: NodeId, now: Time) -> f64 {
        let mut db = 0.0;
        let key = Self::link_key(tx, rx);
        let link_index = (key.0.index() * self.n + key.1.index()) as u64;
        if let Some(ge) = self.plan.gilbert_elliott {
            let step = now / ge.step_ns.max(1);
            let chain = self.ge_chains.entry(key).or_insert_with(|| GeChain {
                rng: stream_rng(self.salt, STREAM_GE_BASE + link_index),
                step: 0,
                bad: false,
            });
            while chain.step < step {
                let p = if chain.bad {
                    ge.p_exit_bad
                } else {
                    ge.p_enter_bad
                };
                if chain.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    chain.bad = !chain.bad;
                }
                chain.step += 1;
            }
            if chain.bad {
                db -= ge.bad_extra_loss_db;
            }
        }
        if let Some(sh) = self.plan.shadowing {
            let step = now / sh.step_ns.max(1);
            // Stateless: the offset for (link, step) is a pure function of
            // the salt, so it is identical however often it is queried.
            let mut rng = stream_rng(
                self.salt ^ STREAM_SHADOW_BASE,
                link_index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(step),
            );
            db += normal(&mut rng, 0.0, sh.sigma_db);
        }
        db
    }

    /// Stretch a timer delay by the node's clock skew.
    pub fn skew_delay(&self, node: NodeId, delay: Time) -> Time {
        let ppm = self.skew_ppm[node.index()];
        if ppm == 0 {
            return delay;
        }
        let extra = (i128::from(delay) * i128::from(ppm)) / 1_000_000;
        (i128::from(delay) + extra).max(0) as Time
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Serialize the dynamic cursors: everything [`FaultState::new`] cannot
    /// rebuild from the plan alone (liveness flags, the corruption stream's
    /// position, lazily-created GE chains, dispatch watermarks). The static
    /// derivation (salt, action schedule, skew table) is re-derived on
    /// restore from the same plan and seed.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.node_up.len());
        for &up in &self.node_up {
            w.bool(up);
        }
        for word in self.corrupt_rng.state() {
            w.u64(word);
        }
        w.len(self.ge_chains.len());
        for (&(a, b), chain) in &self.ge_chains {
            w.len(a.index());
            w.len(b.index());
            for word in chain.rng.state() {
                w.u64(word);
            }
            w.u64(chain.step);
            w.bool(chain.bad);
        }
        for &t in &self.last_dispatch {
            w.u64(t);
        }
    }

    /// Overlay checkpointed cursors onto a state freshly built (same plan,
    /// seed and node count) by [`FaultState::new`].
    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let n = r.len()?;
        if n != self.node_up.len() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint fault state covers {n} nodes, world has {}",
                self.node_up.len()
            )));
        }
        for up in &mut self.node_up {
            *up = r.bool()?;
        }
        let mut words = [0u64; 4];
        for word in &mut words {
            *word = r.u64()?;
        }
        self.corrupt_rng = SmallRng::from_state(words);
        self.ge_chains.clear();
        let chains = r.len()?;
        for _ in 0..chains {
            let a = NodeId::new(r.len()?);
            let b = NodeId::new(r.len()?);
            let mut words = [0u64; 4];
            for word in &mut words {
                *word = r.u64()?;
            }
            let chain = GeChain {
                rng: SmallRng::from_state(words),
                step: r.u64()?,
                bad: r.bool()?,
            };
            if self.ge_chains.insert((a, b), chain).is_some() {
                return Err(CkptError::Malformed(format!(
                    "duplicate GE chain for link ({a},{b})"
                )));
            }
        }
        for t in &mut self.last_dispatch {
            *t = r.u64()?;
        }
        Ok(())
    }
}

/// Invariant watchdog configuration: how often to audit and how long a MAC
/// with pending data may go without any callback before it counts as
/// stalled. 2 s comfortably exceeds the longest legitimate quiet period
/// (CMAP's retransmission wait tops out near 0.5 s).
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Interval between audits.
    pub audit_period: Time,
    /// Quiet period after which a node with data counts as stalled.
    pub liveness_window: Time,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            audit_period: crate::time::millis(500),
            liveness_window: crate::time::secs(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs};

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn spec_round_trips() {
        for (_, plan) in FaultPlan::canonical(6, secs(10)) {
            let spec = plan.to_spec();
            let back = FaultPlan::from_spec(&spec).expect("parse");
            assert_eq!(plan, back, "spec:\n{spec}");
        }
        // Clean plan: empty spec, parses back to clean.
        assert_eq!(FaultPlan::clean().to_spec(), "");
        assert!(FaultPlan::from_spec("").unwrap().is_clean());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::from_spec("nonsense").is_err());
        assert!(FaultPlan::from_spec("mystery=1").is_err());
        assert!(FaultPlan::from_spec("ge=1:2").is_err());
        assert!(FaultPlan::from_spec("churn=0:5").is_err());
    }

    #[test]
    fn actions_sorted_by_time() {
        let plan = FaultPlan::churn_heavy(4, secs(10));
        let fs = FaultState::new(plan, 7, 4);
        for w in fs.actions.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(fs.actions.len(), 8); // down + up per node
    }

    #[test]
    fn ge_chain_is_query_order_independent() {
        let plan = FaultPlan::bursty_channel();
        let t = secs(3);
        // Query link (0,1) directly at t…
        let mut a = FaultState::new(plan.clone(), 9, 4);
        let direct = a.link_offset_db(nid(0), nid(1), t);
        // …vs. stepping through many intermediate queries first.
        let mut b = FaultState::new(plan, 9, 4);
        for ms in (0..3000).step_by(7) {
            let _ = b.link_offset_db(nid(2), nid(3), millis(ms));
            let _ = b.link_offset_db(nid(0), nid(1), millis(ms));
        }
        let stepped = b.link_offset_db(nid(0), nid(1), t);
        assert!((direct - stepped).abs() < 1e-12, "{direct} vs {stepped}");
        // Symmetric: (1,0) matches (0,1).
        let sym = b.link_offset_db(nid(1), nid(0), t);
        assert!((stepped - sym).abs() < 1e-12);
    }

    #[test]
    fn ge_chain_visits_bad_state() {
        let mut fs = FaultState::new(FaultPlan::bursty_channel(), 11, 2);
        let mut bad_steps = 0;
        for ms in 0..5000 {
            // Shadowing contributes ±sigma; the GE bad state is -25 dB, so
            // anything below -10 dB means the chain is bad.
            if fs.link_offset_db(nid(0), nid(1), millis(ms)) < -10.0 {
                bad_steps += 1;
            }
        }
        assert!(bad_steps > 50, "chain never went bad: {bad_steps}");
        assert!(bad_steps < 4000, "chain stuck bad: {bad_steps}");
    }

    #[test]
    fn skew_stretches_delays() {
        let plan = FaultPlan {
            clock_skew_ppm: vec![(nid(0), 150), (nid(1), -150)],
            ..FaultPlan::default()
        };
        let fs = FaultState::new(plan, 1, 3);
        let d = secs(1);
        assert_eq!(fs.skew_delay(nid(0), d), d + 150_000); // +150 us per second
        assert_eq!(fs.skew_delay(nid(1), d), d - 150_000);
        assert_eq!(fs.skew_delay(nid(2), d), d); // no skew configured
    }

    /// Satellite of the crash-safety PR: `to_spec`/`from_spec` must be
    /// lossless for *any* representable plan, not just the canonical trio —
    /// checkpoint validation compares specs byte-for-byte.
    mod spec_props {
        use super::*;
        use proptest::prelude::*;

        fn arb_plan() -> impl Strategy<Value = FaultPlan> {
            let outage = (0usize..32, 0u64..1_000_000_000, 1u64..1_000_000_000).prop_map(
                |(node, down_at, hold)| Outage {
                    node: NodeId::new(node),
                    down_at,
                    up_at: down_at + hold,
                },
            );
            let lockup = (0usize..32, 0u64..1_000_000_000, 1u64..1_000_000_000).prop_map(
                |(node, at, hold)| Lockup {
                    node: NodeId::new(node),
                    at,
                    until: at + hold,
                },
            );
            let ge = (1u64..10_000_000, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..60.0).prop_map(
                |(step_ns, p_enter_bad, p_exit_bad, bad_extra_loss_db)| GilbertElliott {
                    step_ns,
                    p_enter_bad,
                    p_exit_bad,
                    bad_extra_loss_db,
                },
            );
            let shadow = (1u64..10_000_000_000, 0.0f64..16.0)
                .prop_map(|(step_ns, sigma_db)| Shadowing { step_ns, sigma_db });
            (
                prop::collection::vec(outage, 0..5),
                prop::collection::vec(lockup, 0..5),
                prop::option::of(ge),
                prop::option::of(shadow),
                prop::collection::vec(
                    (0usize..32, -500i64..500).prop_map(|(n, ppm)| (NodeId::new(n), ppm)),
                    0..5,
                ),
                0.0f64..1.0,
                0.0f64..1.0,
            )
                .prop_map(
                    |(
                        churn,
                        lockups,
                        gilbert_elliott,
                        shadowing,
                        clock_skew_ppm,
                        corrupt_prob,
                        dup_frame_prob,
                    )| FaultPlan {
                        churn,
                        lockups,
                        gilbert_elliott,
                        shadowing,
                        clock_skew_ppm,
                        corrupt_prob,
                        dup_frame_prob,
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn spec_round_trip_is_lossless(plan in arb_plan()) {
                let spec = plan.to_spec();
                let back = FaultPlan::from_spec(&spec)
                    .map_err(|e| TestCaseError::fail(format!("parse: {e}\nspec:\n{spec}")))?;
                prop_assert_eq!(&plan, &back, "spec:\n{}", spec);
                // A second trip is a fixed point (spec text is canonical).
                prop_assert_eq!(back.to_spec(), spec);
            }
        }
    }

    #[test]
    fn canonical_plans_are_distinct_and_nontrivial() {
        let plans = FaultPlan::canonical(4, secs(10));
        assert_eq!(plans.len(), 3);
        for (name, plan) in &plans {
            assert!(!plan.is_clean(), "{name} is empty");
        }
        assert_ne!(plans[0].1, plans[1].1);
        assert_ne!(plans[1].1, plans[2].1);
    }
}
