//! Typed node identity.
//!
//! [`NodeId`] replaces the old `pub type NodeId = usize` alias: it is a
//! `#[repr(transparent)]` wrapper over the node's index, so it costs
//! nothing at runtime, but array subscripts must now go through the
//! explicit [`NodeId::index`] accessor — a bare node id no longer
//! silently indexes unrelated collections (flow tables, byte buffers,
//! CSR offsets).
//!
//! The inner width is `u32`: a world of more than four billion nodes is
//! far beyond any deployment this engine targets, and the narrower id
//! halves the footprint of reachability lists and event records at
//! city scale. Checkpoints keep serializing node ids as `u64` lengths
//! (see `ckpt.rs`), so the on-disk format is unchanged by the width.

use std::fmt;

/// Index of a node in the world.
///
/// Construct with [`NodeId::new`] (or `From<usize>`); recover the raw
/// array index with [`NodeId::index`]. Ordering, equality and hashing
/// follow the index, so `NodeId` works as a `BTreeMap` key wherever a
/// raw index used to.
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Wrap a raw node index. Panics if the index exceeds `u32::MAX`
    /// (no supported topology gets anywhere near that).
    pub fn new(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }

    /// The raw array index this id wraps.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> NodeId {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Plain digits: fault-plan specs and stats snapshots embed node
        // ids in text that must stay byte-identical to the usize era.
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_formats_like_the_raw_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "42");
    }

    #[test]
    fn orders_by_index() {
        let mut ids = [NodeId::new(3), NodeId::new(0), NodeId::new(7)];
        ids.sort();
        assert_eq!(ids, [NodeId::new(0), NodeId::new(3), NodeId::new(7)]);
    }

    #[test]
    #[should_panic(expected = "fits u32")]
    fn oversized_index_is_rejected() {
        let _ = NodeId::new(usize::MAX);
    }

    #[test]
    fn is_transparent_over_u32() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::align_of::<NodeId>(), 4);
    }
}
