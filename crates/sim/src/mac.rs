//! The MAC-protocol interface: how link layers plug into the simulator.
//!
//! A [`Mac`] instance runs at each node. The world invokes its callbacks for
//! timer fires, frame receptions, transmission completions and carrier
//! transitions; the MAC responds through the [`NodeCtx`] handle — setting
//! timers, starting transmissions, pulling application packets and
//! delivering received ones. All `NodeCtx` mutations are applied after the
//! callback returns, in order, at the current simulation time.

use rand::rngs::SmallRng;

use crate::app::{AppPacket, NodeApp};
use crate::event::TxId;
use crate::pool::FramePool;
use crate::radio::RadioPhase;
use crate::stats::Stats;
use crate::time::Time;
use crate::world::{Flow, NodeId};
use cmap_phy::Rate;
use cmap_wire::{Frame, FrameView, MacAddr};

/// Metadata for a successfully decoded frame.
#[derive(Debug, Clone, Copy)]
pub struct RxInfo {
    /// Received signal strength (post-fading) in dBm.
    pub rss_dbm: f64,
    /// When the radio locked onto the frame.
    pub start: Time,
    /// When the frame ended (== now in the callback).
    pub end: Time,
    /// Bit-rate the frame was sent at.
    pub rate: Rate,
}

/// Metadata for a frame the radio locked onto but failed to decode — the MAC
/// knows *something* collided or faded out, and when, but not its contents.
#[derive(Debug, Clone, Copy)]
pub struct RxErrorInfo {
    /// When the radio locked onto the doomed frame.
    pub start: Time,
    /// When it ended.
    pub end: Time,
    /// Its received signal strength in dBm.
    pub rss_dbm: f64,
}

/// A link-layer protocol instance at one node.
///
/// Implementations: `cmap_core::CmapMac` (the paper's contribution) and
/// `cmap_mac80211::DcfMac` (the 802.11 baseline). All callbacks default to
/// no-ops except [`Mac::on_start`], which every protocol needs to bootstrap.
pub trait Mac {
    /// Called once when the world starts; set initial timers here.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);

    /// The node crashed and came back (fault injection): volatile protocol
    /// state is gone. Implementations must reset to a clean boot state *and
    /// keep ignoring stale timer tokens from before the crash* (timers
    /// scheduled pre-crash may still fire afterwards). The default restarts
    /// via [`Mac::on_start`], which suits stateless MACs.
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.on_start(ctx);
    }

    /// A timer set via [`NodeCtx::set_timer`] fired. Late or superseded
    /// timers are delivered too — MACs ignore stale tokens.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// A frame was received and decoded. Frames are delivered promiscuously
    /// (check `frame.dst()` yourself) as zero-copy [`FrameView`]s over the
    /// pooled wire bytes; materialize a [`Frame`] via
    /// [`FrameView::to_frame`] only when owned storage is really needed.
    fn on_rx_frame(&mut self, _ctx: &mut NodeCtx<'_>, _frame: &FrameView<'_>, _info: RxInfo) {}

    /// The radio locked onto a frame but the payload failed to decode.
    fn on_rx_error(&mut self, _ctx: &mut NodeCtx<'_>, _err: RxErrorInfo) {}

    /// Our own transmission just finished.
    fn on_tx_done(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// The clear-channel assessment changed (edge-triggered).
    fn on_channel_state(&mut self, _ctx: &mut NodeCtx<'_>, _busy: bool) {}

    /// A new application packet became available at this node (e.g. a relay
    /// queue went non-empty). Saturated sources never trigger this — they
    /// always have data.
    fn on_packet_queued(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Introspection hook for tests and experiment harnesses.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Append this MAC's dynamic protocol state to a `cmap-ckpt/v2`
    /// checkpoint blob. Paired with [`Mac::load_state`]; the world frames
    /// the blob, so implementations just write fields in a fixed order.
    /// The default writes nothing, which is correct for stateless MACs
    /// (e.g. [`NullMac`]).
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Restore the state written by [`Mac::save_state`] into a
    /// freshly-configured instance of the same MAC. The default accepts
    /// only an empty blob — a non-empty blob reaching a stateless MAC
    /// means the checkpoint was taken with a different protocol stack.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} bytes of MAC state for a MAC that saves none",
                bytes.len()
            ))
        }
    }
}

/// A MAC that never transmits; installed at nodes that only overhear.
#[derive(Debug, Default)]
pub struct NullMac;

impl Mac for NullMac {
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Deferred operations collected during a callback.
#[derive(Debug)]
pub(crate) enum Op {
    Timer { at: Time, token: u64 },
    StartTx { tx_id: TxId, rate: Rate },
    Deliver { flow: u16, flow_seq: u32 },
}

/// The MAC's handle onto its node and the world, valid for one callback.
pub struct NodeCtx<'a> {
    pub(crate) node: NodeId,
    pub(crate) now: Time,
    pub(crate) phase: RadioPhase,
    pub(crate) busy: bool,
    pub(crate) mac_addr: MacAddr,
    pub(crate) abort_rx_on_tx: bool,
    pub(crate) tx_requested: bool,
    /// False while the radio is disabled by fault injection (lockup):
    /// transmit attempts fail, mirroring a wedged front-end.
    pub(crate) radio_ok: bool,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) pool: &'a mut FramePool,
    pub(crate) app: &'a mut NodeApp,
    pub(crate) flows: &'a mut [Flow],
    pub(crate) stats: &'a mut Stats,
    pub(crate) ops: &'a mut Vec<Op>,
}

impl NodeCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This node's index.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's link-layer address.
    pub fn mac_addr(&self) -> MacAddr {
        self.mac_addr
    }

    /// Radio phase at callback entry.
    pub fn radio_phase(&self) -> RadioPhase {
        self.phase
    }

    /// Clear-channel assessment at callback entry (physical carrier sense:
    /// locked, transmitting, or energy above the ED threshold).
    pub fn carrier_busy(&self) -> bool {
        self.busy
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Runtime statistics sink.
    pub fn stats(&mut self) -> &mut Stats {
        self.stats
    }

    /// Emit a structured trace event at the current simulation time. One
    /// branch and no work when tracing is disabled; protocol decision
    /// points call this unconditionally.
    #[inline]
    pub fn trace(&mut self, ev: cmap_obs::TraceEvent) {
        self.stats.emit(self.now, ev);
    }

    /// Whether structured tracing is enabled (lets callers skip building
    /// costly event payloads; the typed events themselves are all `Copy`).
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.stats.trace_enabled()
    }

    /// Arrange for [`Mac::on_timer`] with `token` after `delay` ns.
    ///
    /// There is no cancellation: supersede timers by versioning the token
    /// and ignoring stale ones.
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.ops.push(Op::Timer {
            at: self.now + delay,
            token,
        });
    }

    /// Start a transmission at `rate`, composing the frame directly into a
    /// recycled pool buffer — the allocation-free hot path. `fill` receives
    /// the (stale-content) buffer and must leave it holding exactly one
    /// complete wire frame; the `cmap_wire::view::compose` helpers do this
    /// (clear, write fields in place, append CRC).
    ///
    /// Returns `false` (and calls nothing, claims nothing) if the radio is
    /// already transmitting, if a transmission was already requested in
    /// this callback, if the radio is disabled by fault injection, or if
    /// the radio is mid-reception and the PHY is configured not to abort
    /// receptions. On success the radio transmits immediately;
    /// [`Mac::on_tx_done`] fires when the frame leaves the air.
    pub fn transmit_with(&mut self, rate: Rate, fill: impl FnOnce(&mut Vec<u8>)) -> bool {
        if self.tx_requested || self.phase == RadioPhase::Transmitting || !self.radio_ok {
            return false;
        }
        if self.phase == RadioPhase::Receiving && !self.abort_rx_on_tx {
            return false;
        }
        self.tx_requested = true;
        let tx_id = self.pool.alloc();
        fill(self.pool.buf_mut(tx_id));
        self.ops.push(Op::StartTx { tx_id, rate });
        true
    }

    /// Start transmitting an owned `frame` at `rate` now — the slow-path
    /// convenience over [`NodeCtx::transmit_with`] (same gating, same
    /// semantics, plus one serialization of `frame`).
    pub fn transmit(&mut self, frame: Frame, rate: Rate) -> bool {
        self.transmit_with(rate, |buf| {
            buf.clear();
            buf.extend_from_slice(&frame.emit());
        })
    }

    /// Hand a received data packet to the node's higher layer. The world
    /// records delivery statistics (with duplicate suppression) and feeds
    /// relay flows.
    pub fn deliver(&mut self, flow: u16, flow_seq: u32) {
        self.ops.push(Op::Deliver { flow, flow_seq });
    }

    /// True if any flow sourced at this node has a packet ready.
    pub fn app_has_data(&self) -> bool {
        self.app.has_data(self.flows)
    }

    /// Pull the next application packet (round-robin across this node's
    /// flows), or `None` if all queues are idle.
    pub fn app_pop(&mut self) -> Option<AppPacket> {
        self.app.pop(self.flows)
    }

    /// Pull the next application packet destined specifically to `dst`
    /// (used by CMAP to fill a virtual packet for one destination).
    pub fn app_pop_to(&mut self, dst: NodeId) -> Option<AppPacket> {
        self.app.pop_to(self.flows, dst)
    }

    /// Payload length (bytes) configured for `flow`.
    pub fn flow_payload_len(&self, flow: u16) -> usize {
        self.flows[flow as usize].payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NodeCtx behaviour is exercised end-to-end by the world tests; here we
    // only pin the pure parts.

    #[test]
    fn null_mac_is_inert() {
        let mut m = NullMac;
        // as_any gives back the same object.
        assert!(m.as_any().downcast_ref::<NullMac>().is_some());
        let _ = &mut m;
    }
}
