//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotonically increasing tie-breaker so that simultaneous events execute
//! in the order they were scheduled, making runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;
use crate::world::NodeId;

/// Identifier of one transmission (one PHY frame on the air), unique within
/// a run.
pub type TxId = u64;

/// The events the engine processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A node's own transmission finished.
    TxEnd { node: NodeId, tx_id: TxId },
    /// The first energy of transmission `tx_id` reaches node `rx`.
    FrameStart { rx: NodeId, tx_id: TxId },
    /// The last energy of transmission `tx_id` leaves node `rx`.
    FrameEnd { rx: NodeId, tx_id: TxId },
    /// A MAC-requested timer at `node` fires with an opaque token.
    Timer { node: NodeId, token: u64 },
    /// Scheduled fault-plan action (index into the installed plan's action
    /// list). Only present when a fault plan is installed.
    Fault { idx: u32 },
    /// Periodic invariant-watchdog audit. Only scheduled when a fault plan
    /// is installed, so clean runs see an unchanged event stream.
    Audit,
}

impl Event {
    /// Number of event kinds (dense index space for dispatch counters).
    pub const KIND_COUNT: usize = 6;

    /// Kind names in `kind_idx` order, for dispatch-profile reporting.
    pub const KIND_NAMES: [&'static str; Event::KIND_COUNT] = [
        "tx_end",
        "frame_start",
        "frame_end",
        "timer",
        "fault",
        "audit",
    ];

    /// Dense index of this event's kind.
    pub const fn kind_idx(&self) -> usize {
        match self {
            Event::TxEnd { .. } => 0,
            Event::FrameStart { .. } => 1,
            Event::FrameEnd { .. } => 2,
            Event::Timer { .. } => 3,
            Event::Fault { .. } => 4,
            Event::Audit => 5,
        }
    }

    /// This event's kind name.
    pub const fn kind_name(&self) -> &'static str {
        Event::KIND_NAMES[self.kind_idx()]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

// BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct Scheduler {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    processed: u64,
    processed_by_kind: [u64; Event::KIND_COUNT],
}

impl Scheduler {
    /// An empty queue.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Enqueue `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let s = self.heap.pop()?;
        self.processed += 1;
        self.processed_by_kind[s.event.kind_idx()] += 1;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (for perf reporting).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events processed per kind, indexed by [`Event::kind_idx`] (names in
    /// [`Event::KIND_NAMES`]). Deterministic: derived purely from the event
    /// stream, so it also feeds the dispatch section of the event-loop
    /// profile. Borrowing the array keeps the per-slice profiling path
    /// allocation-free.
    pub fn processed_by_kind(&self) -> &[u64; Event::KIND_COUNT] {
        &self.processed_by_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: NodeId, token: u64) -> Event {
        Event::Timer { node, token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(30, timer(0, 3));
        s.schedule(10, timer(0, 1));
        s.schedule(20, timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        for token in 0..100 {
            s.schedule(5, timer(0, token));
        }
        for expect in 0..100 {
            match s.pop().unwrap().1 {
                Event::Timer { token, .. } => assert_eq!(token, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_and_processed_track() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        s.schedule(1, timer(0, 0));
        s.schedule(2, timer(0, 1));
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.processed(), 1);
        assert_eq!(s.peek_time(), Some(2));
    }

    #[test]
    fn per_kind_counts_track_the_mix() {
        let mut s = Scheduler::new();
        s.schedule(1, timer(0, 0));
        s.schedule(2, Event::Audit);
        s.schedule(3, timer(1, 1));
        while s.pop().is_some() {}
        let by_kind: std::collections::BTreeMap<&str, u64> = Event::KIND_NAMES
            .iter()
            .zip(s.processed_by_kind().iter())
            .map(|(&n, &c)| (n, c))
            .collect();
        assert_eq!(by_kind["timer"], 2);
        assert_eq!(by_kind["audit"], 1);
        assert_eq!(by_kind["tx_end"], 0);
        let total: u64 = s.processed_by_kind().iter().sum();
        assert_eq!(total, s.processed());
    }
}
