//! The event queue at the heart of the discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is a
//! monotonically increasing tie-breaker so that simultaneous events execute
//! in the order they were scheduled, making runs fully deterministic.
//!
//! The queue is a **hierarchical timing wheel**: [`LEVELS`] rings of
//! [`SLOTS`] buckets each, where a level-`l` bucket spans `SLOTS^l` ticks of
//! [`TICK_NS`] nanoseconds. An event lands in the lowest level whose
//! resolution still separates it from the wheel's current position; when a
//! ring drains, the next occupied higher-level bucket *cascades* — its
//! events re-file into finer rings. Per-level occupancy bitmaps make
//! advancing over empty time O(1) per ring, so `schedule`/`pop` are O(1)
//! amortized where the old `BinaryHeap` paid O(log n) — at 50M-event
//! figures the difference is measurable. The far-future fallback is the top
//! ring, whose buckets span ~52 days of simulated time.
//!
//! Exactness is never traded for speed: a drained bucket is sorted by
//! `(time, seq)` before its events pop, and an event scheduled at or before
//! the wheel's current position is merge-inserted into the sorted drain
//! buffer, so the pop order is *identical* to the heap's — property-tested
//! against a reference heap in `tests/engine_props.rs`.

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::time::Time;
use crate::world::NodeId;

/// Identifier of one transmission (one PHY frame on the air), unique within
/// a run.
pub type TxId = u64;

/// The events the engine processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A node's own transmission finished.
    TxEnd { node: NodeId, tx_id: TxId },
    /// The first energy of transmission `tx_id` reaches node `rx`.
    FrameStart { rx: NodeId, tx_id: TxId },
    /// The last energy of transmission `tx_id` leaves node `rx`.
    FrameEnd { rx: NodeId, tx_id: TxId },
    /// A MAC-requested timer at `node` fires with an opaque token.
    Timer { node: NodeId, token: u64 },
    /// Scheduled fault-plan action (index into the installed plan's action
    /// list). Only present when a fault plan is installed.
    Fault { idx: u32 },
    /// Periodic invariant-watchdog audit. Only scheduled when a fault plan
    /// is installed, so clean runs see an unchanged event stream.
    Audit,
}

impl Event {
    /// Number of event kinds (dense index space for dispatch counters).
    pub const KIND_COUNT: usize = 6;

    /// Kind names in `kind_idx` order, for dispatch-profile reporting.
    pub const KIND_NAMES: [&'static str; Event::KIND_COUNT] = [
        "tx_end",
        "frame_start",
        "frame_end",
        "timer",
        "fault",
        "audit",
    ];

    /// Dense index of this event's kind.
    pub const fn kind_idx(&self) -> usize {
        match self {
            Event::TxEnd { .. } => 0,
            Event::FrameStart { .. } => 1,
            Event::FrameEnd { .. } => 2,
            Event::Timer { .. } => 3,
            Event::Fault { .. } => 4,
            Event::Audit => 5,
        }
    }

    /// This event's kind name.
    pub const fn kind_name(&self) -> &'static str {
        Event::KIND_NAMES[self.kind_idx()]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: Event,
}

/// Nanoseconds per wheel tick (level-0 bucket width): ~1 µs.
const TICK_BITS: u32 = 10;
/// Level-0 bucket width in nanoseconds.
pub const TICK_NS: u64 = 1 << TICK_BITS;
/// log2 of the bucket count per ring.
const SLOT_BITS: u32 = 8;
/// Buckets per ring.
const SLOTS: usize = 1 << SLOT_BITS;
/// Rings. `LEVELS * SLOT_BITS = 56` index bits over 54-bit tick values
/// (`u64` time >> [`TICK_BITS`]), so every representable time has a bucket
/// — no overflow heap needed.
const LEVELS: usize = 7;
/// Words per occupancy bitmap (256 bits).
const BITMAP_WORDS: usize = SLOTS / 64;

/// Deterministic occupancy statistics of one scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events re-filed from a coarser ring into a finer one. A pure
    /// function of the schedule/pop sequence, hence deterministic.
    pub cascades: u64,
    /// Largest number of simultaneously pending events observed.
    pub max_occupancy: u64,
}

/// A deterministic time-ordered event queue (hierarchical timing wheel).
#[derive(Debug)]
pub struct Scheduler {
    /// `LEVELS * SLOTS` buckets, level-major.
    buckets: Box<[Vec<Scheduled>]>,
    /// One occupancy bitmap per ring.
    occupied: [[u64; BITMAP_WORDS]; LEVELS],
    /// Tick of the bucket currently drained into `cur`. Events at ticks
    /// `<= now_tick` bypass the wheel and merge straight into `cur`.
    now_tick: u64,
    /// Sorted drain buffer: the current bucket's events in `(at, seq)`
    /// order, consumed from `cur_pos`. Invariant: whenever `len > 0`,
    /// `cur[cur_pos]` is the global minimum, so `peek_time` is O(1).
    cur: Vec<Scheduled>,
    cur_pos: usize,
    len: usize,
    next_seq: u64,
    processed: u64,
    processed_by_kind: [u64; Event::KIND_COUNT],
    stats: SchedStats,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new()
    }
}

/// Retired bucket arrays, recycled across schedulers on the same thread so
/// each new world inherits warmed-up slot capacities instead of re-growing
/// all `LEVELS * SLOTS` bucket `Vec`s from empty. Capacity is invisible to
/// behavior — recycled and fresh schedulers produce identical event orders
/// — this only removes the per-world allocation warm-up (one experiment
/// cell builds one world, so suites pay it hundreds of times otherwise).
fn take_recycled_buckets() -> Option<Box<[Vec<Scheduled>]>> {
    BUCKET_POOL.with(|p| p.borrow_mut().pop())
}

fn retire_buckets(mut buckets: Box<[Vec<Scheduled>]>) {
    const MAX_RETIRED: usize = 4;
    if buckets.len() != LEVELS * SLOTS {
        return;
    }
    for b in buckets.iter_mut() {
        b.clear();
    }
    BUCKET_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_RETIRED {
            pool.push(buckets);
        }
    });
}

thread_local! {
    // cmap-analyze: allow(shared-state) — per-thread capacity recycling; never observable in artifacts
    static BUCKET_POOL: std::cell::RefCell<Vec<Box<[Vec<Scheduled>]>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        retire_buckets(std::mem::take(&mut self.buckets));
    }
}

impl Scheduler {
    /// An empty queue.
    pub fn new() -> Scheduler {
        Scheduler {
            buckets: take_recycled_buckets()
                .unwrap_or_else(|| (0..LEVELS * SLOTS).map(|_| Vec::new()).collect()),
            occupied: [[0; BITMAP_WORDS]; LEVELS],
            now_tick: 0,
            cur: Vec::new(),
            cur_pos: 0,
            len: 0,
            next_seq: 0,
            processed: 0,
            processed_by_kind: [0; Event::KIND_COUNT],
            stats: SchedStats::default(),
        }
    }

    /// Enqueue `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Scheduled { at, seq, event });
        self.len += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.len as u64);
        // Keep the drain buffer settled: if the new event went into the
        // wheel while nothing was staged, pull the earliest bucket now so
        // `peek_time` stays O(1).
        if self.cur_pos >= self.cur.len() {
            self.cur.clear();
            self.cur_pos = 0;
            let advanced = self.advance();
            debug_assert!(advanced);
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.cur.get(self.cur_pos).map(|s| s.at)
    }

    /// Remove and return the next `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let s = *self.cur.get(self.cur_pos)?;
        self.cur_pos += 1;
        self.len -= 1;
        if self.cur_pos >= self.cur.len() {
            self.cur.clear();
            self.cur_pos = 0;
            if self.len > 0 {
                let advanced = self.advance();
                debug_assert!(advanced);
            }
        }
        self.processed += 1;
        self.processed_by_kind[s.event.kind_idx()] += 1;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events processed so far (for perf reporting).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events processed per kind, indexed by [`Event::kind_idx`] (names in
    /// [`Event::KIND_NAMES`]). Deterministic: derived purely from the event
    /// stream, so it also feeds the dispatch section of the event-loop
    /// profile. Borrowing the array keeps the per-slice profiling path
    /// allocation-free.
    pub fn processed_by_kind(&self) -> &[u64; Event::KIND_COUNT] {
        &self.processed_by_kind
    }

    /// Wheel occupancy statistics (cascades, peak pending). Deterministic:
    /// both are pure functions of the schedule/pop sequence.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// File one event into the wheel, or merge it into the sorted drain
    /// buffer when it is due at or before the wheel's current position.
    fn insert(&mut self, s: Scheduled) {
        let tick = s.at >> TICK_BITS;
        if tick <= self.now_tick {
            // Current bucket (already staged) or the past: merge into the
            // pending tail of `cur`, preserving (at, seq) order exactly as
            // a heap would.
            let tail = &self.cur[self.cur_pos..];
            let pos = tail.partition_point(|p| (p.at, p.seq) < (s.at, s.seq));
            self.cur.insert(self.cur_pos + pos, s);
            return;
        }
        // Lowest ring whose resolution separates `tick` from `now_tick`:
        // the highest differing SLOT_BITS-wide index group.
        let diff = tick ^ self.now_tick;
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[level * SLOTS + slot].push(s);
        self.occupied[level][slot / 64] |= 1 << (slot % 64);
    }

    /// Stage the next occupied bucket into `cur`, cascading coarser rings
    /// down as needed. Returns `false` only when the wheel is empty.
    fn advance(&mut self) -> bool {
        loop {
            if self.cur_pos < self.cur.len() {
                return true;
            }
            // The lowest non-empty ring holds the earliest events: ring
            // invariants guarantee every level-l event precedes every
            // level-(l+1) event.
            let Some((level, slot)) = self.first_occupied() else {
                return false;
            };
            self.occupied[level][slot / 64] &= !(1 << (slot % 64));
            let idx = level * SLOTS + slot;
            if level == 0 {
                // Stage the bucket: swap recycles the old drain buffer's
                // capacity into the emptied bucket.
                self.now_tick = (self.now_tick >> SLOT_BITS << SLOT_BITS) | slot as u64;
                std::mem::swap(&mut self.cur, &mut self.buckets[idx]);
                self.cur.sort_unstable_by_key(|s: &Scheduled| (s.at, s.seq));
                self.cur_pos = 0;
                return true;
            }
            // Cascade: move the wheel position to the start of this
            // bucket's span and re-file its events one ring down (or into
            // `cur` when they land exactly on the new position).
            let shift = SLOT_BITS * level as u32;
            self.now_tick = (self.now_tick >> (shift + SLOT_BITS) << (shift + SLOT_BITS))
                | ((slot as u64) << shift);
            let mut moved = std::mem::take(&mut self.buckets[idx]);
            self.stats.cascades += moved.len() as u64;
            for s in moved.drain(..) {
                self.insert(s);
            }
            // Hand the empty buffer back so the bucket keeps its capacity.
            self.buckets[idx] = moved;
        }
    }

    /// `(level, slot)` of the earliest occupied bucket, if any.
    fn first_occupied(&self) -> Option<(usize, usize)> {
        for (level, bitmap) in self.occupied.iter().enumerate() {
            for (w, &word) in bitmap.iter().enumerate() {
                if word != 0 {
                    return Some((level, w * 64 + word.trailing_zeros() as usize));
                }
            }
        }
        None
    }
}

// ---- cmap-ckpt/v2 -------------------------------------------------------

impl Event {
    /// Encode this event for a checkpoint (tag byte = [`Event::kind_idx`]).
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u8(self.kind_idx() as u8);
        match *self {
            Event::TxEnd { node, tx_id } => {
                w.len(node.index());
                w.u64(tx_id);
            }
            Event::FrameStart { rx, tx_id } | Event::FrameEnd { rx, tx_id } => {
                w.len(rx.index());
                w.u64(tx_id);
            }
            Event::Timer { node, token } => {
                w.len(node.index());
                w.u64(token);
            }
            Event::Fault { idx } => w.u32(idx),
            Event::Audit => {}
        }
    }

    /// Decode one checkpointed event.
    pub(crate) fn ckpt_load(r: &mut CkptReader<'_>) -> Result<Event, CkptError> {
        Ok(match r.u8()? {
            0 => Event::TxEnd {
                node: NodeId::new(r.len()?),
                tx_id: r.u64()?,
            },
            1 => Event::FrameStart {
                rx: NodeId::new(r.len()?),
                tx_id: r.u64()?,
            },
            2 => Event::FrameEnd {
                rx: NodeId::new(r.len()?),
                tx_id: r.u64()?,
            },
            3 => Event::Timer {
                node: NodeId::new(r.len()?),
                token: r.u64()?,
            },
            4 => Event::Fault { idx: r.u32()? },
            5 => Event::Audit,
            other => return Err(CkptError::Malformed(format!("event tag {other}"))),
        })
    }
}

impl Scheduled {
    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.at);
        w.u64(self.seq);
        self.event.ckpt_save(w);
    }

    fn ckpt_load(r: &mut CkptReader<'_>) -> Result<Scheduled, CkptError> {
        Ok(Scheduled {
            at: r.u64()?,
            seq: r.u64()?,
            event: Event::ckpt_load(r)?,
        })
    }
}

impl Scheduler {
    /// Serialize the full wheel state: position, the pending tail of the
    /// drain buffer, every non-empty bucket, and the deterministic
    /// counters. The consumed prefix of the drain buffer (`..cur_pos`) is
    /// deliberately dropped — those events already dispatched.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.now_tick);
        let tail = &self.cur[self.cur_pos..];
        w.len(tail.len());
        for s in tail {
            s.ckpt_save(w);
        }
        let filled: Vec<usize> = (0..self.buckets.len())
            .filter(|&i| !self.buckets[i].is_empty())
            .collect();
        w.len(filled.len());
        for idx in filled {
            w.len(idx);
            w.len(self.buckets[idx].len());
            for s in &self.buckets[idx] {
                s.ckpt_save(w);
            }
        }
        w.len(self.len);
        w.u64(self.next_seq);
        w.u64(self.processed);
        for &k in &self.processed_by_kind {
            w.u64(k);
        }
        w.u64(self.stats.cascades);
        w.u64(self.stats.max_occupancy);
    }

    /// Rebuild a scheduler from [`Scheduler::ckpt_save`] output. Occupancy
    /// bitmaps are reconstructed from the restored buckets; the drain
    /// buffer restarts at position 0 with the saved pending tail.
    pub(crate) fn ckpt_load(r: &mut CkptReader<'_>) -> Result<Scheduler, CkptError> {
        let mut s = Scheduler::new();
        s.now_tick = r.u64()?;
        let tail_n = r.len()?;
        s.cur.reserve(tail_n);
        for _ in 0..tail_n {
            s.cur.push(Scheduled::ckpt_load(r)?);
        }
        s.cur_pos = 0;
        let mut pending = s.cur.len();
        let filled_n = r.len()?;
        for _ in 0..filled_n {
            let idx = r.len()?;
            if idx >= LEVELS * SLOTS {
                return Err(CkptError::Malformed(format!("bucket index {idx}")));
            }
            let n = r.len()?;
            if n == 0 {
                return Err(CkptError::Malformed("empty checkpointed bucket".into()));
            }
            s.buckets[idx].reserve(n);
            for _ in 0..n {
                s.buckets[idx].push(Scheduled::ckpt_load(r)?);
            }
            pending += n;
            let (level, slot) = (idx / SLOTS, idx % SLOTS);
            s.occupied[level][slot / 64] |= 1 << (slot % 64);
        }
        s.len = r.len()?;
        if s.len != pending {
            return Err(CkptError::Malformed(format!(
                "pending count {} != serialized events {pending}",
                s.len
            )));
        }
        s.next_seq = r.u64()?;
        s.processed = r.u64()?;
        for k in &mut s.processed_by_kind {
            *k = r.u64()?;
        }
        s.stats.cascades = r.u64()?;
        s.stats.max_occupancy = r.u64()?;
        // Re-establish the peek invariant (cur non-empty whenever events
        // are pending); a no-op for checkpoints taken between dispatches.
        if s.cur.is_empty() && s.len > 0 && !s.advance() {
            return Err(CkptError::Malformed("pending events unreachable".into()));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> Event {
        Event::Timer {
            node: NodeId::new(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(30, timer(0, 3));
        s.schedule(10, timer(0, 1));
        s.schedule(20, timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut s = Scheduler::new();
        for token in 0..100 {
            s.schedule(5, timer(0, token));
        }
        for expect in 0..100 {
            match s.pop().unwrap().1 {
                Event::Timer { token, .. } => assert_eq!(token, expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn len_and_processed_track() {
        let mut s = Scheduler::new();
        assert!(s.is_empty());
        s.schedule(1, timer(0, 0));
        s.schedule(2, timer(0, 1));
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
        assert_eq!(s.processed(), 1);
        assert_eq!(s.peek_time(), Some(2));
    }

    #[test]
    fn per_kind_counts_track_the_mix() {
        let mut s = Scheduler::new();
        s.schedule(1, timer(0, 0));
        s.schedule(2, Event::Audit);
        s.schedule(3, timer(1, 1));
        while s.pop().is_some() {}
        let by_kind: std::collections::BTreeMap<&str, u64> = Event::KIND_NAMES
            .iter()
            .zip(s.processed_by_kind().iter())
            .map(|(&n, &c)| (n, c))
            .collect();
        assert_eq!(by_kind["timer"], 2);
        assert_eq!(by_kind["audit"], 1);
        assert_eq!(by_kind["tx_end"], 0);
        let total: u64 = s.processed_by_kind().iter().sum();
        assert_eq!(total, s.processed());
    }

    #[test]
    fn far_future_events_cascade_down_exactly() {
        // Events spread across every ring: microseconds to days apart.
        let mut s = Scheduler::new();
        let times: Vec<u64> = (0..40)
            .map(|i| 1u64 << (i + 10))
            .chain([0, 1, 2, u64::MAX >> 1])
            .collect();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(t, timer(0, i as u64));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(popped, sorted);
        assert!(s.stats().cascades > 0, "multi-ring spread must cascade");
        assert_eq!(s.stats().max_occupancy, times.len() as u64);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        // Pop an event, then schedule *earlier* than the staged next event
        // (legal: the world only guards monotonicity at dispatch). The
        // wheel must still pop the earlier one first, like a heap.
        let mut s = Scheduler::new();
        s.schedule(1_000, timer(0, 0));
        s.schedule(5_000_000, timer(0, 1));
        assert_eq!(s.pop().unwrap().0, 1_000);
        s.schedule(2_000, timer(0, 2));
        s.schedule(1_500, timer(0, 3));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1_500, 2_000, 5_000_000]);
    }

    #[test]
    fn same_tick_events_sort_by_exact_time() {
        // Distinct times inside one 1 µs bucket must still order exactly.
        let mut s = Scheduler::new();
        s.schedule(900, timer(0, 0));
        s.schedule(200, timer(0, 1));
        s.schedule(550, timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![200, 550, 900]);
    }

    #[test]
    fn beyond_top_ring_span_keeps_order_and_cascades_exact() {
        // Satellite of the crash-safety PR: the wheel must stay exact past
        // the top ring's per-slot span (SLOTS^(LEVELS-1) ticks ≈ 52 days)
        // out to the last representable nanosecond.
        //
        // First, a tick whose index is nonzero in *every* ring group: the
        // event files into the top ring and must be re-filed once per
        // lower ring on its way down — exactly LEVELS-1 cascades.
        let mut s = Scheduler::new();
        let chain_tick: u64 = (0..LEVELS as u32).map(|g| 1u64 << (SLOT_BITS * g)).sum();
        let chain_time = chain_tick << TICK_BITS;
        s.schedule(chain_time, timer(0, 0));
        s.schedule(0, timer(0, 1));
        assert_eq!(s.pop().unwrap().0, 0);
        assert_eq!(s.pop().unwrap().0, chain_time);
        assert_eq!(
            s.stats().cascades,
            (LEVELS - 1) as u64,
            "full-chain event must cascade once per lower ring"
        );

        // Then a spread past the top ring's slot span, including u64::MAX:
        // ordering, len bookkeeping and per-kind counts must all hold.
        let mut s = Scheduler::new();
        let horizon = 1u64 << (TICK_BITS + SLOT_BITS * (LEVELS as u32 - 1));
        let times = [
            horizon,
            u64::MAX,
            horizon * 3 + 1024,
            u64::MAX - (1 << 40),
            horizon + 5,
            7 * horizon + (chain_tick << TICK_BITS),
            42,
        ];
        for (i, &t) in times.iter().enumerate() {
            s.schedule(t, timer(0, i as u64));
        }
        assert_eq!(s.len(), times.len());
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(t, _)| t).collect();
        assert_eq!(popped, sorted);
        assert!(s.is_empty());
        assert_eq!(s.processed(), times.len() as u64);
        assert_eq!(s.processed_by_kind()[3], times.len() as u64);
        assert!(
            s.stats().cascades >= (LEVELS - 1) as u64,
            "far-horizon events must traverse the ring hierarchy"
        );
        assert_eq!(s.stats().max_occupancy, times.len() as u64);
    }

    #[test]
    fn checkpoint_round_trip_mid_drain_is_exact() {
        // Fill every ring, pop a prefix (so the drain buffer is mid-slice
        // and `processed` is nonzero), checkpoint, restore, and require
        // the restored wheel to pop the identical remainder with
        // identical counters.
        let mut s = Scheduler::new();
        let times: Vec<u64> = (0..40)
            .map(|i| 1u64 << (i + 10))
            .chain([0, 1, 2, 5, 5, 5, u64::MAX >> 1])
            .collect();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(t, timer(i % 3, i as u64));
        }
        for _ in 0..7 {
            s.pop();
        }

        let mut w = CkptWriter::new();
        s.ckpt_save(&mut w);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes).unwrap();
        let mut restored = Scheduler::ckpt_load(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.processed(), s.processed());
        assert_eq!(restored.processed_by_kind(), s.processed_by_kind());
        assert_eq!(restored.stats(), s.stats());
        let mut injected = false;
        loop {
            let (a, b) = (s.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            // Late scheduling after restore must also agree (one-shot: the
            // injected event itself pops, so a `len`-triggered re-injection
            // would ping-pong forever).
            if !injected && s.len() == 20 {
                injected = true;
                let t = a.unwrap().0 + 3;
                s.schedule(t, Event::Audit);
                restored.schedule(t, Event::Audit);
            }
        }
        assert_eq!(s.stats(), restored.stats());
    }

    #[test]
    fn drained_scheduler_is_reusable() {
        let mut s = Scheduler::new();
        for round in 0..5u64 {
            let base = round * 1_000_000_000;
            for k in 0..50 {
                s.schedule(base + k * 7, timer(0, k));
            }
            let mut last = 0;
            while let Some((t, _)) = s.pop() {
                assert!(t >= last);
                last = t;
            }
            assert!(s.is_empty());
            assert_eq!(s.peek_time(), None);
        }
        assert_eq!(s.processed(), 250);
    }
}
