//! Process-wide perf totals for the benchmark baseline.
//!
//! Every [`crate::World::run_until`] publishes its event and BER-cache
//! deltas here so a benchmark suite can report events/sec and cache hit
//! rates across *all* runs it spawned — including runs executed on worker
//! threads, where per-world counters would be invisible to the driver.
//!
//! The totals are monotone sums of per-run deltas, so their final values
//! are independent of worker interleaving (addition commutes); they carry
//! no ordering or timing information and never feed back into simulation
//! behaviour. Report readers must treat them as *aggregate* observability,
//! not per-run state.

use std::sync::atomic::{AtomicU64, Ordering};

// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static EVENTS: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static BER_HITS: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static BER_MISSES: AtomicU64 = AtomicU64::new(0);

/// Aggregate simulation-engine totals since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfTotals {
    /// Events processed across all worlds.
    pub events: u64,
    /// BER memo-cache hits across all worlds.
    pub ber_hits: u64,
    /// BER memo-cache misses across all worlds.
    pub ber_misses: u64,
}

impl PerfTotals {
    /// Cache hit rate in [0, 1], or 0 when there were no lookups.
    pub fn ber_hit_rate(&self) -> f64 {
        let total = self.ber_hits + self.ber_misses;
        if total == 0 {
            0.0
        } else {
            self.ber_hits as f64 / total as f64
        }
    }
}

/// Record one run's deltas (called from the `run_until` tail).
pub fn note_run(events: u64, ber_hits: u64, ber_misses: u64) {
    if events > 0 {
        EVENTS.fetch_add(events, Ordering::Relaxed);
    }
    if ber_hits > 0 {
        BER_HITS.fetch_add(ber_hits, Ordering::Relaxed);
    }
    if ber_misses > 0 {
        BER_MISSES.fetch_add(ber_misses, Ordering::Relaxed);
    }
}

/// Current totals.
pub fn totals() -> PerfTotals {
    PerfTotals {
        events: EVENTS.load(Ordering::Relaxed),
        ber_hits: BER_HITS.load(Ordering::Relaxed),
        ber_misses: BER_MISSES.load(Ordering::Relaxed),
    }
}

/// Zero the totals (benchmark drivers call this between figures).
pub fn reset() {
    EVENTS.store(0, Ordering::Relaxed);
    BER_HITS.store(0, Ordering::Relaxed);
    BER_MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_and_hit_rate_is_sane() {
        // Lower-bound asserts: other tests in this binary also feed the
        // global totals concurrently.
        let before = totals();
        note_run(100, 30, 10);
        note_run(50, 0, 0);
        let after = totals();
        assert!(after.events >= before.events + 150);
        assert!(after.ber_hits >= before.ber_hits + 30);
        assert!(after.ber_misses >= before.ber_misses + 10);
        let t = PerfTotals {
            events: 1,
            ber_hits: 3,
            ber_misses: 1,
        };
        assert!((t.ber_hit_rate() - 0.75).abs() < 1e-12);
        let empty = PerfTotals {
            events: 0,
            ber_hits: 0,
            ber_misses: 0,
        };
        assert!(empty.ber_hit_rate().abs() < 1e-12);
    }
}
