//! Process-wide perf totals for the benchmark baseline.
//!
//! Every [`crate::World::run_until`] publishes its event, BER-table-lookup
//! and scheduler-cascade deltas here so a benchmark suite can report
//! events/sec and engine statistics across *all* runs it spawned —
//! including runs executed on worker threads, where per-world counters
//! would be invisible to the driver.
//!
//! The totals are monotone sums of per-run deltas (plus one monotone max),
//! so their final values are independent of worker interleaving (addition
//! and max commute); they carry no ordering or timing information and never
//! feed back into simulation behaviour. Report readers must treat them as
//! *aggregate* observability, not per-run state.

use std::sync::atomic::{AtomicU64, Ordering};

// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static EVENTS: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static BER_LOOKUPS: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static SCHED_CASCADES: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic high-water mark for the observability report; never read by simulation state
static SCHED_MAX_OCCUPANCY: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic high-water mark for the observability report; never read by simulation state
static POOL_HIGH_WATER: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic meter for the observability report; never read by simulation state
static POOL_RECYCLED: AtomicU64 = AtomicU64::new(0);
// cmap-analyze: allow(shared-state) — relaxed monotonic high-water mark for the observability report; never read by simulation state
static POOL_BYTES: AtomicU64 = AtomicU64::new(0);

/// Aggregate simulation-engine totals since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfTotals {
    /// Events processed across all worlds.
    pub events: u64,
    /// BER interpolation-table lookups across all worlds.
    pub ber_lookups: u64,
    /// Timing-wheel cascade re-files (events moved between wheel levels)
    /// across all worlds.
    pub sched_cascades: u64,
    /// Largest scheduler occupancy (pending events) any world reached.
    pub sched_max_occupancy: u64,
    /// Most frame-pool slots any world held claimed at once.
    pub pool_high_water: u64,
    /// Frame-pool slot recycle events (frees) across all worlds.
    pub pool_recycled: u64,
    /// Largest frame-pool buffer footprint (bytes of parked buffer
    /// capacity) any world reached.
    pub pool_bytes: u64,
}

/// Record one run's deltas (called from the `run_until` tail).
pub fn note_run(events: u64, ber_lookups: u64, sched_cascades: u64, sched_max_occupancy: u64) {
    if events > 0 {
        EVENTS.fetch_add(events, Ordering::Relaxed);
    }
    if ber_lookups > 0 {
        BER_LOOKUPS.fetch_add(ber_lookups, Ordering::Relaxed);
    }
    if sched_cascades > 0 {
        SCHED_CASCADES.fetch_add(sched_cascades, Ordering::Relaxed);
    }
    if sched_max_occupancy > 0 {
        SCHED_MAX_OCCUPANCY.fetch_max(sched_max_occupancy, Ordering::Relaxed);
    }
}

/// Record one run's frame-pool readings (called from the `run_until` tail):
/// high-water mark and buffer bytes are monotone maxima, recycles a delta.
pub fn note_pool(high_water: u64, recycled: u64, bytes: u64) {
    if high_water > 0 {
        POOL_HIGH_WATER.fetch_max(high_water, Ordering::Relaxed);
    }
    if recycled > 0 {
        POOL_RECYCLED.fetch_add(recycled, Ordering::Relaxed);
    }
    if bytes > 0 {
        POOL_BYTES.fetch_max(bytes, Ordering::Relaxed);
    }
}

/// Current totals.
pub fn totals() -> PerfTotals {
    PerfTotals {
        events: EVENTS.load(Ordering::Relaxed),
        ber_lookups: BER_LOOKUPS.load(Ordering::Relaxed),
        sched_cascades: SCHED_CASCADES.load(Ordering::Relaxed),
        sched_max_occupancy: SCHED_MAX_OCCUPANCY.load(Ordering::Relaxed),
        pool_high_water: POOL_HIGH_WATER.load(Ordering::Relaxed),
        pool_recycled: POOL_RECYCLED.load(Ordering::Relaxed),
        pool_bytes: POOL_BYTES.load(Ordering::Relaxed),
    }
}

/// Zero the totals (benchmark drivers call this between figures).
pub fn reset() {
    EVENTS.store(0, Ordering::Relaxed);
    BER_LOOKUPS.store(0, Ordering::Relaxed);
    SCHED_CASCADES.store(0, Ordering::Relaxed);
    SCHED_MAX_OCCUPANCY.store(0, Ordering::Relaxed);
    POOL_HIGH_WATER.store(0, Ordering::Relaxed);
    POOL_RECYCLED.store(0, Ordering::Relaxed);
    POOL_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_and_max_is_a_high_water_mark() {
        // Lower-bound asserts: other tests in this binary also feed the
        // global totals concurrently.
        let before = totals();
        note_run(100, 30, 10, 7);
        note_run(50, 0, 0, 3);
        let after = totals();
        assert!(after.events >= before.events + 150);
        assert!(after.ber_lookups >= before.ber_lookups + 30);
        assert!(after.sched_cascades >= before.sched_cascades + 10);
        // The occupancy mark never regresses, and reflects at least the
        // largest value we just fed it.
        assert!(after.sched_max_occupancy >= before.sched_max_occupancy.max(7));
    }

    #[test]
    fn pool_totals_mix_maxima_and_sums() {
        let before = totals();
        note_pool(5, 100, 4096);
        note_pool(3, 50, 1024);
        let after = totals();
        assert!(after.pool_high_water >= before.pool_high_water.max(5));
        assert!(after.pool_recycled >= before.pool_recycled + 150);
        assert!(after.pool_bytes >= before.pool_bytes.max(4096));
    }
}
