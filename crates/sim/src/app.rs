//! Application layer: traffic sources and relay queues.
//!
//! The paper's workloads are simple: every sender transmits 1400-byte
//! packets "as fast as they can" (§5.1) — a saturated source — and the mesh
//! experiment (§5.7) forwards received packets over a second hop — a relay.
//! Flows are declared on the world; MACs pull packets through
//! [`NodeCtx::app_pop`](crate::mac::NodeCtx::app_pop).

use std::collections::VecDeque;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::world::{Flow, FlowKind, NodeId};
use cmap_wire::MacAddr;

/// One application packet handed to a MAC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppPacket {
    /// Flow the packet belongs to.
    pub flow: u16,
    /// End-to-end sequence number within the flow.
    pub flow_seq: u32,
    /// Destination node.
    pub dst: NodeId,
    /// Destination link-layer address.
    pub dst_mac: MacAddr,
    /// Payload length in bytes (the MAC materialises the bytes).
    pub payload_len: usize,
}

/// Per-node application state: which flows originate here and the queues of
/// relay flows waiting to be forwarded.
#[derive(Debug, Default)]
pub struct NodeApp {
    /// Indices into the world's flow table for flows sourced at this node.
    pub(crate) source_flows: Vec<u16>,
    /// Pending sequence numbers per relay flow (parallel to `source_flows`
    /// entries of relay kind).
    pub(crate) relay_queues: Vec<(u16, VecDeque<u32>)>,
    /// Round-robin cursor over `source_flows`.
    rr: usize,
}

impl NodeApp {
    pub(crate) fn add_source(&mut self, flow: u16, kind: &FlowKind) {
        self.source_flows.push(flow);
        if matches!(kind, FlowKind::Relay { .. }) {
            self.relay_queues.push((flow, VecDeque::new()));
        }
    }

    /// Enqueue a sequence number onto a relay flow's queue. Returns `true`
    /// if the queue was previously empty (the MAC may need a wake-up).
    pub(crate) fn push_relay(&mut self, flow: u16, seq: u32) -> bool {
        let q = self
            .relay_queues
            .iter_mut()
            .find(|(f, _)| *f == flow)
            .map(|(_, q)| q)
            .expect("push_relay on non-relay flow");
        let was_empty = q.is_empty();
        q.push_back(seq);
        was_empty
    }

    fn flow_has_data(&self, flows: &[Flow], flow: u16) -> bool {
        match flows[flow as usize].kind {
            FlowKind::Saturated => true,
            FlowKind::Relay { .. } => self
                .relay_queues
                .iter()
                .find(|(f, _)| *f == flow)
                .is_some_and(|(_, q)| !q.is_empty()),
        }
    }

    /// True if any flow sourced here has a packet ready.
    pub(crate) fn has_data(&self, flows: &[Flow]) -> bool {
        self.source_flows
            .iter()
            .any(|&f| self.flow_has_data(flows, f))
    }

    fn pop_flow(&mut self, flows: &mut [Flow], flow: u16) -> Option<AppPacket> {
        let f = &mut flows[flow as usize];
        let flow_seq = match f.kind {
            FlowKind::Saturated => {
                let seq = f.next_seq;
                f.next_seq += 1;
                seq
            }
            FlowKind::Relay { .. } => self
                .relay_queues
                .iter_mut()
                .find(|(id, _)| *id == flow)?
                .1
                .pop_front()?,
        };
        Some(AppPacket {
            flow,
            flow_seq,
            dst: f.dst,
            dst_mac: MacAddr::from_node_index(f.dst.index() as u16),
            payload_len: f.payload_len,
        })
    }

    /// Round-robin pop across all flows with data.
    pub(crate) fn pop(&mut self, flows: &mut [Flow]) -> Option<AppPacket> {
        let n = self.source_flows.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let flow = self.source_flows[idx];
            if self.flow_has_data(flows, flow) {
                self.rr = (idx + 1) % n;
                return self.pop_flow(flows, flow);
            }
        }
        None
    }

    /// Pop the next packet destined to `dst`, if any flow has one.
    pub(crate) fn pop_to(&mut self, flows: &mut [Flow], dst: NodeId) -> Option<AppPacket> {
        let n = self.source_flows.len();
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let flow = self.source_flows[idx];
            if flows[flow as usize].dst == dst && self.flow_has_data(flows, flow) {
                // Note: no cursor advance — keeps same-destination bursts
                // draining one flow before rotating.
                return self.pop_flow(flows, flow);
            }
        }
        None
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Serialize the dynamic state: relay queue contents and the
    /// round-robin cursor. The flow membership itself is configuration,
    /// re-declared on the world before restore, and only validated here.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.source_flows.len());
        for &f in &self.source_flows {
            w.u16(f);
        }
        w.len(self.relay_queues.len());
        for (flow, q) in &self.relay_queues {
            w.u16(*flow);
            w.len(q.len());
            for &seq in q {
                w.u32(seq);
            }
        }
        w.len(self.rr);
    }

    /// Overlay checkpointed queues/cursor onto an identically-configured
    /// node app.
    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader<'_>) -> Result<(), CkptError> {
        let sources = r.len()?;
        if sources != self.source_flows.len() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint node sources {sources} != configured {}",
                self.source_flows.len()
            )));
        }
        for &expect in &self.source_flows {
            let got = r.u16()?;
            if got != expect {
                return Err(CkptError::Mismatch(format!(
                    "checkpoint source flow {got} != configured {expect}"
                )));
            }
        }
        let relays = r.len()?;
        if relays != self.relay_queues.len() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint relay queues {relays} != configured {}",
                self.relay_queues.len()
            )));
        }
        for (flow, q) in &mut self.relay_queues {
            let got = r.u16()?;
            if got != *flow {
                return Err(CkptError::Mismatch(format!(
                    "checkpoint relay flow {got} != configured {flow}"
                )));
            }
            q.clear();
            let pending = r.len()?;
            for _ in 0..pending {
                q.push_back(r.u32()?);
            }
        }
        self.rr = r.len()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn flows() -> Vec<Flow> {
        vec![
            Flow {
                id: 0,
                src: nid(0),
                dst: nid(1),
                payload_len: 1400,
                kind: FlowKind::Saturated,
                next_seq: 0,
            },
            Flow {
                id: 1,
                src: nid(0),
                dst: nid(2),
                payload_len: 700,
                kind: FlowKind::Relay { upstream: 0 },
                next_seq: 0,
            },
        ]
    }

    fn app_with_both() -> NodeApp {
        let fl = flows();
        let mut app = NodeApp::default();
        app.add_source(0, &fl[0].kind);
        app.add_source(1, &fl[1].kind);
        app
    }

    #[test]
    fn saturated_source_always_has_data_and_counts_up() {
        let mut fl = flows();
        let mut app = NodeApp::default();
        app.add_source(0, &FlowKind::Saturated);
        assert!(app.has_data(&fl));
        let a = app.pop(&mut fl).unwrap();
        let b = app.pop(&mut fl).unwrap();
        assert_eq!(a.flow_seq, 0);
        assert_eq!(b.flow_seq, 1);
        assert_eq!(a.dst, nid(1));
        assert_eq!(a.payload_len, 1400);
    }

    #[test]
    fn relay_flow_is_empty_until_pushed() {
        let mut fl = flows();
        let mut app = NodeApp::default();
        app.add_source(1, &fl[1].kind.clone());
        assert!(!app.has_data(&fl));
        assert!(app.pop(&mut fl).is_none());
        assert!(app.push_relay(1, 42));
        assert!(!app.push_relay(1, 43));
        let p = app.pop(&mut fl).unwrap();
        assert_eq!(p.flow_seq, 42);
        assert_eq!(p.dst, nid(2));
        assert_eq!(p.payload_len, 700);
    }

    #[test]
    fn round_robin_alternates_flows() {
        let mut fl = flows();
        let mut app = app_with_both();
        app.push_relay(1, 7);
        app.push_relay(1, 8);
        let seq_flows: Vec<u16> = (0..4)
            .filter_map(|_| app.pop(&mut fl))
            .map(|p| p.flow)
            .collect();
        // Alternates while both have data, then only the saturated one.
        assert_eq!(seq_flows, vec![0, 1, 0, 1]);
    }

    #[test]
    fn pop_to_filters_by_destination() {
        let mut fl = flows();
        let mut app = app_with_both();
        app.push_relay(1, 9);
        let p = app.pop_to(&mut fl, nid(2)).unwrap();
        assert_eq!(p.flow, 1);
        assert!(app.pop_to(&mut fl, nid(2)).is_none());
        let p = app.pop_to(&mut fl, nid(1)).unwrap();
        assert_eq!(p.flow, 0);
        assert!(app.pop_to(&mut fl, nid(99)).is_none());
    }
}
