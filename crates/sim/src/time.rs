//! Simulation time.
//!
//! Time is a `u64` count of **nanoseconds** since the start of the run —
//! fine enough to resolve propagation delays (a metre is ~3.3 ns) and wide
//! enough for ~584 years of simulation. Durations use the same unit.

/// Absolute simulation time or a duration, in nanoseconds.
pub type Time = u64;

/// `n` microseconds as a [`Time`] duration.
#[inline]
pub const fn micros(n: u64) -> Time {
    n * 1_000
}

/// `n` milliseconds as a [`Time`] duration.
#[inline]
pub const fn millis(n: u64) -> Time {
    n * 1_000_000
}

/// `n` seconds as a [`Time`] duration.
#[inline]
pub const fn secs(n: u64) -> Time {
    n * 1_000_000_000
}

/// Render a time as fractional seconds for reports.
pub fn as_secs_f64(t: Time) -> f64 {
    t as f64 / 1e9
}

/// A duration in whole microseconds, rounded up — the quantisation used by
/// the `tx_time_us` field of CMAP headers/trailers. Saturates at
/// `u32::MAX` µs (~71 minutes, far beyond any legal airtime).
#[inline]
pub const fn ns_to_us_ceil(ns: Time) -> u32 {
    let us = ns.div_ceil(1_000);
    if us > u32::MAX as u64 {
        u32::MAX
    } else {
        us as u32
    }
}

/// Narrow a nanosecond duration into a `u32` wire field (saturating at
/// ~4.29 s — far beyond any frame's NAV reservation).
#[inline]
pub const fn ns_to_u32_saturating(ns: Time) -> u32 {
    if ns > u32::MAX as u64 {
        u32::MAX
    } else {
        ns as u32
    }
}

/// Number of whole `slot`-length periods contained in `span` (saturating):
/// how many backoff slots elapsed, for slotted-MAC countdowns.
#[inline]
pub const fn whole_slots(span: Time, slot: Time) -> u32 {
    let n = span / slot;
    if n > u32::MAX as u64 {
        u32::MAX
    } else {
        n as u32
    }
}

/// `frac` of a duration, truncated to whole nanoseconds. `frac` must be in
/// `[0, 1]` — this scales *within* a duration (e.g. a warm-up cut-off), it
/// does not extend one.
#[inline]
pub fn scale(t: Time, frac: f64) -> Time {
    debug_assert!(
        (0.0..=1.0).contains(&frac),
        "scale fraction {frac} out of [0,1]"
    );
    (t as f64 * frac) as Time
}

/// Airtime of `bits` at `bits_per_sec`, rounded up to whole nanoseconds.
pub fn bits_duration(bits: u64, bits_per_sec: u64) -> Time {
    // bits / bps seconds = bits * 1e9 / bps ns; u128 avoids overflow.
    ((u128::from(bits) * 1_000_000_000).div_ceil(u128::from(bits_per_sec))) as u64
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(micros(5), 5_000);
        assert_eq!(millis(5), 5_000_000);
        assert_eq!(secs(5), 5_000_000_000);
        assert_eq!(as_secs_f64(secs(2)), 2.0);
    }

    #[test]
    fn bits_duration_exact_and_rounded() {
        // 6 Mbit/s: one bit is 166.66 ns -> rounds up to 167.
        assert_eq!(bits_duration(1, 6_000_000), 167);
        // A window of 8*32*1400*8 bits at 6 Mbit/s is about 478 ms; this is
        // the paper's tau_max formula (§3.3).
        let bits = 8 * 32 * 1400 * 8;
        let d = bits_duration(bits, 6_000_000);
        assert!((d as i64 - 477_866_667).abs() < 2, "{d}");
    }
}
