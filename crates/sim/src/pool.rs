//! Deterministic free-list pool of in-flight frame buffers.
//!
//! Every transmission owns one pool slot from the moment its MAC composes
//! the frame until the last receiver's `FrameEnd` (or the sender's `TxEnd`)
//! releases it. The slot *is* the transmission record: raw wire bytes plus
//! the metadata the engine needs to grade receptions. Slots are addressed
//! by [`TxId`] — a `(generation, index)` pair packed into the `u64` the
//! event queue already carries — so every hot-path access
//! (`FrameStart`/`FrameEnd`/`TxEnd`) is one bounds-checked array index
//! instead of the ordered-map lookup the engine used before.
//!
//! Invariants:
//! * Slot buffers are recycled, never shrunk: a released slot keeps its
//!   `Vec` capacity, so a steady-state world composes frames without
//!   allocating (the frame-buffer twin of the radio layer's
//!   interference-profile recycling).
//! * The free list is LIFO and all allocation order is driven by the
//!   deterministic event loop, so same-seed runs produce identical
//!   `TxId` sequences and identical checkpoints.
//! * Generations make stale handles loudly detectable in debug builds; the
//!   release accounting (`ends_remaining`) guarantees no double-free — a
//!   slot only returns to the free list when its last share is released.
//!
//! Checkpoint interaction (`cmap-ckpt/v2`): only *live* slots are
//! serialised (as `(tx_id, metadata, bytes)` tuples, exactly the old
//! `TxRecord` encoding). On restore each live slot is placed back at the
//! index/generation its `TxId` encodes, and every other index below the
//! saved pool capacity becomes free with generation 0. Free-slot
//! generations are an allocation detail with no behavioural effect: no
//! pending event references a freed slot, and `TxId` values are opaque to
//! statistics and traces.

use crate::event::TxId;
use crate::node::NodeId;
use crate::time::Time;
use cmap_phy::Rate;

/// One in-flight (or free) frame slot.
struct Slot {
    /// Bumped on every allocation of this index; packed into the `TxId`.
    gen: u32,
    /// Full wire bytes (tag through CRC). Capacity persists across reuse.
    buf: Vec<u8>,
    /// Transmitting node.
    node: NodeId,
    /// Bit-rate of the transmission.
    rate: Rate,
    /// When the transmission started.
    start: Time,
    /// Outstanding releases: one per receiver `FrameEnd` plus one for the
    /// sender's `TxEnd`. Zero while free or not yet armed.
    ends_remaining: u32,
}

impl Slot {
    fn fresh() -> Slot {
        Slot {
            gen: 0,
            buf: Vec::new(),
            node: NodeId::new(0),
            rate: Rate::R6,
            start: 0,
            ends_remaining: 0,
        }
    }
}

const INDEX_MASK: u64 = 0xFFFF_FFFF;

#[inline]
fn pack(gen: u32, index: usize) -> TxId {
    (u64::from(gen) << 32) | index as u64
}

#[inline]
fn index_of(id: TxId) -> usize {
    (id & INDEX_MASK) as usize
}

/// The per-world frame pool. See the module docs for the lifecycle.
pub(crate) struct FramePool {
    slots: Vec<Slot>,
    /// LIFO free list of slot indices.
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    recycled: u64,
}

impl FramePool {
    pub fn new() -> FramePool {
        FramePool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            recycled: 0,
        }
    }

    /// Claim a slot (reusing buffer capacity when one is free) and return
    /// its handle. The buffer contents are stale — callers compose into it
    /// via [`FramePool::buf_mut`] before arming.
    pub fn alloc(&mut self) -> TxId {
        let index = match self.free.pop() {
            Some(i) => i as usize,
            None => {
                self.slots.push(Slot::fresh());
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[index];
        slot.gen = slot.gen.wrapping_add(1);
        slot.ends_remaining = 0;
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        pack(slot.gen, index)
    }

    #[inline]
    fn slot(&self, id: TxId) -> &Slot {
        let slot = &self.slots[index_of(id)];
        debug_assert_eq!(u64::from(slot.gen), id >> 32, "stale TxId {id:#x}");
        slot
    }

    #[inline]
    fn slot_mut(&mut self, id: TxId) -> &mut Slot {
        let slot = &mut self.slots[index_of(id)];
        debug_assert_eq!(u64::from(slot.gen), id >> 32, "stale TxId {id:#x}");
        slot
    }

    /// The slot's wire bytes.
    #[inline]
    pub fn buf(&self, id: TxId) -> &[u8] {
        &self.slot(id).buf
    }

    /// The slot's buffer for composition (clear-and-fill; capacity is
    /// retained from previous occupants).
    #[inline]
    pub fn buf_mut(&mut self, id: TxId) -> &mut Vec<u8> {
        &mut self.slot_mut(id).buf
    }

    /// Move the slot's buffer out for borrow-free inspection (the RX
    /// dispatch path: MAC callbacks may allocate new slots while reading
    /// this frame). The slot stays live; pair with [`FramePool::put_buf`].
    #[inline]
    pub fn take_buf(&mut self, id: TxId) -> Vec<u8> {
        std::mem::take(&mut self.slot_mut(id).buf)
    }

    /// Return a buffer taken with [`FramePool::take_buf`].
    #[inline]
    pub fn put_buf(&mut self, id: TxId, buf: Vec<u8>) {
        self.slot_mut(id).buf = buf;
    }

    /// Arm an allocated slot as an in-flight transmission with `ends`
    /// outstanding releases.
    pub fn arm(&mut self, id: TxId, node: NodeId, rate: Rate, start: Time, ends: u32) {
        debug_assert!(ends > 0);
        let slot = self.slot_mut(id);
        debug_assert_eq!(slot.ends_remaining, 0, "re-arming a live transmission");
        slot.node = node;
        slot.rate = rate;
        slot.start = start;
        slot.ends_remaining = ends;
    }

    /// Transmitting node of a live slot.
    #[inline]
    pub fn node_of(&self, id: TxId) -> NodeId {
        self.slot(id).node
    }

    /// Bit-rate of a live slot.
    #[inline]
    pub fn rate_of(&self, id: TxId) -> Rate {
        self.slot(id).rate
    }

    /// Transmission start time of a live slot.
    #[inline]
    pub fn start_of(&self, id: TxId) -> Time {
        self.slot(id).start
    }

    /// Serialised frame length of a live slot.
    #[inline]
    pub fn wire_len(&self, id: TxId) -> usize {
        self.slot(id).buf.len()
    }

    /// Outstanding releases of a live slot.
    #[inline]
    pub fn ends_of(&self, id: TxId) -> u32 {
        self.slot(id).ends_remaining
    }

    fn free_slot(&mut self, index: usize) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        self.recycled += 1;
        self.free.push(index as u32);
    }

    /// Release one share of an armed slot (`TxEnd` or a receiver's
    /// `FrameEnd`); the slot is recycled when the last share goes.
    pub fn release(&mut self, id: TxId) {
        let index = index_of(id);
        let slot = &mut self.slots[index];
        debug_assert_eq!(u64::from(slot.gen), id >> 32, "stale TxId {id:#x}");
        debug_assert!(slot.ends_remaining > 0, "release of a free slot");
        slot.ends_remaining -= 1;
        if slot.ends_remaining == 0 {
            self.free_slot(index);
        }
    }

    /// Recycle a slot that was allocated but never armed (transmission
    /// refused: disabled radio, half-duplex violation).
    pub fn free_unsent(&mut self, id: TxId) {
        let index = index_of(id);
        debug_assert_eq!(self.slots[index].ends_remaining, 0);
        self.free_slot(index);
    }

    /// Currently-claimed slots (in-flight transmissions).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most slots ever claimed at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slot recycle events (frees) so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Bytes of buffer capacity parked across all slots.
    pub fn bytes(&self) -> usize {
        self.slots.iter().map(|s| s.buf.capacity()).sum()
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Slot-array length (the checkpoint's pool-capacity field).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Handles of all live slots in ascending `TxId` order (the
    /// checkpoint's deterministic transmission order).
    pub fn live_ids(&self) -> Vec<TxId> {
        let mut ids: Vec<TxId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ends_remaining > 0)
            .map(|(i, s)| pack(s.gen, i))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Begin a restore: `capacity` empty generation-0 slots, nothing live.
    pub fn reset_for_restore(&mut self, capacity: usize) {
        self.slots.clear();
        self.slots.extend((0..capacity).map(|_| Slot::fresh()));
        self.free.clear();
        self.live = 0;
        self.high_water = 0;
        self.recycled = 0;
    }

    /// Place one checkpointed live transmission back at the index and
    /// generation its `tx_id` encodes. Returns `false` on an out-of-range
    /// index or a duplicate (already-live) slot.
    pub fn restore_slot(
        &mut self,
        tx_id: TxId,
        node: NodeId,
        rate: Rate,
        start: Time,
        buf: Vec<u8>,
        ends_remaining: u32,
    ) -> bool {
        let index = index_of(tx_id);
        if index >= self.slots.len() || ends_remaining == 0 {
            return false;
        }
        let slot = &mut self.slots[index];
        if slot.ends_remaining != 0 {
            return false;
        }
        *slot = Slot {
            gen: (tx_id >> 32) as u32,
            buf,
            node,
            rate,
            start,
            ends_remaining,
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        true
    }

    /// Finish a restore: every non-live index becomes free, lowest index
    /// first off the stack.
    pub fn finish_restore(&mut self) {
        self.free = (0..self.slots.len() as u32)
            .rev()
            .filter(|&i| self.slots[i as usize].ends_remaining == 0)
            .collect();
    }

    /// Restore the lifetime counters (`pool.high_water` / `pool.recycled`
    /// gauges must continue across a resume, not restart at the restore
    /// point). The high-water mark is floored at the restored live count.
    pub fn restore_counters(&mut self, high_water: usize, recycled: u64) {
        self.high_water = high_water.max(self.live);
        self.recycled = recycled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_lifo_and_keeps_capacity() {
        let mut p = FramePool::new();
        let a = p.alloc();
        p.buf_mut(a).extend_from_slice(&[1, 2, 3, 4, 5]);
        p.arm(a, NodeId::new(0), Rate::R6, 0, 2);
        assert_eq!(p.live(), 1);
        assert_eq!(p.buf(a), &[1, 2, 3, 4, 5]);
        p.release(a);
        assert_eq!(p.live(), 1, "one share released, slot still live");
        p.release(a);
        assert_eq!(p.live(), 0);
        assert_eq!(p.recycled(), 1);
        // LIFO reuse of the same index with a bumped generation.
        let b = p.alloc();
        assert_eq!(b & INDEX_MASK, a & INDEX_MASK);
        assert_ne!(b, a);
        assert!(p.buf_mut(b).capacity() >= 5, "capacity retained");
        assert_eq!(p.capacity(), 1);
        assert_eq!(p.high_water(), 1);
    }

    #[test]
    fn distinct_live_slots_and_high_water() {
        let mut p = FramePool::new();
        let ids: Vec<TxId> = (0..4).map(|_| p.alloc()).collect();
        for &id in &ids {
            p.arm(id, NodeId::new(1), Rate::R12, 7, 1);
        }
        assert_eq!(p.live(), 4);
        assert_eq!(p.high_water(), 4);
        assert_eq!(p.live_ids(), {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        });
        for &id in &ids {
            p.release(id);
        }
        assert_eq!(p.live(), 0);
        assert_eq!(p.high_water(), 4);
        // Steady state: churn at depth 1 never grows the slot array.
        for _ in 0..100 {
            let id = p.alloc();
            p.arm(id, NodeId::new(0), Rate::R6, 0, 1);
            p.release(id);
        }
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.high_water(), 4);
    }

    #[test]
    fn free_unsent_recycles_without_arming() {
        let mut p = FramePool::new();
        let id = p.alloc();
        p.buf_mut(id).extend_from_slice(&[9; 64]);
        p.free_unsent(id);
        assert_eq!(p.live(), 0);
        assert_eq!(p.recycled(), 1);
        let again = p.alloc();
        assert!(p.buf_mut(again).capacity() >= 64);
    }

    #[test]
    fn restore_places_slots_by_id_and_frees_the_rest() {
        let mut p = FramePool::new();
        p.reset_for_restore(4);
        let id = pack(5, 2);
        assert!(p.restore_slot(id, NodeId::new(3), Rate::R24, 99, vec![1, 2, 3], 2));
        assert!(!p.restore_slot(id, NodeId::new(3), Rate::R24, 99, vec![], 2), "duplicate");
        assert!(
            !p.restore_slot(pack(1, 9), NodeId::new(0), Rate::R6, 0, vec![], 1),
            "out of range"
        );
        p.finish_restore();
        assert_eq!(p.live(), 1);
        assert_eq!(p.node_of(id), NodeId::new(3));
        assert_eq!(p.wire_len(id), 3);
        assert_eq!(p.live_ids(), vec![id]);
        // Lowest free index allocates first.
        let next = p.alloc();
        assert_eq!(index_of(next), 0);
    }
}
