//! Per-node radio state: a half-duplex PHY state machine, stored
//! struct-of-arrays across all nodes.
//!
//! The radio layer tracks every frame currently impinging on each node (for
//! energy accounting), holds at most one *lock* per node (the frame actually
//! being decoded), and implements preamble capture. It deliberately knows
//! nothing about frame contents — the world layer attaches meanings; radios
//! only see powers and times.
//!
//! Locking rules (modelled on commodity 802.11 hardware, cf. §2.1/§6 of the
//! paper):
//! * An **idle** radio attempts to lock every arriving frame; the attempt
//!   succeeds with the preamble/SIGNAL decode probability at the SINR at
//!   arrival time.
//! * A **locked** radio treats later arrivals as interference, except that a
//!   much stronger frame steals the lock: within the current lock's
//!   preamble+SIGNAL window this is *preamble capture*
//!   (`capture_margin_db`), after it *message-in-message capture*
//!   (`mim_margin_db`) — the OFDM receiver restarting on a much louder
//!   preamble, which Atheros-era hardware does and the paper's exposed
//!   terminals rely on for ACK delivery.
//! * A **transmitting** radio is deaf: arrivals are tracked for energy only.
//!
//! # Layout
//!
//! [`RadioBank`] keeps one array per field instead of one struct per node.
//! The carrier-sense hot path — [`RadioBank::busy`] runs on every MAC
//! dispatch and every `check_channel_edge` iteration — reads exactly two
//! dense arrays (a packed state byte and the running energy total), so
//! sweeps over many nodes touch a handful of cache lines instead of one
//! scattered `Radio` struct per node. The cold per-node state (lock
//! records, impinging-frame lists, recycled profile buffers) lives in its
//! own arrays that only reception events touch. The per-node energy total
//! is maintained incrementally (add on frame start, subtract on frame end,
//! snap to exactly `0.0` whenever the impinging set empties so float
//! residue cannot accumulate) — `busy` no longer sums the impinging list.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::config::PhyConfig;
use crate::event::TxId;
use crate::time::Time;
use cmap_phy::{dbm_to_mw, preamble_success_prob, PLCP_PREAMBLE_NS, PLCP_SIG_NS};

/// Coarse radio state exposed to MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioPhase {
    /// Neither transmitting nor locked onto a frame.
    Idle,
    /// Locked onto an incoming frame.
    Receiving,
    /// Transmitting.
    Transmitting,
}

/// One frame currently impinging on a node.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    tx_id: TxId,
    power_mw: f64,
}

/// The frame currently being decoded at a node.
#[derive(Debug, Clone)]
pub(crate) struct RxLock {
    pub tx_id: TxId,
    pub lock_time: Time,
    pub signal_mw: f64,
    /// Piecewise-constant interference (mW, excluding the locked signal)
    /// as `(change_time, level_after)`, starting with the level at lock.
    pub interference: Vec<(Time, f64)>,
}

/// What happened when a frame arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// Radio locked onto the new frame.
    Locked,
    /// New frame stole the lock from a weaker frame still in its preamble.
    Captured { displaced: TxId },
    /// Frame is interference only (no lock, or lock attempt failed).
    Interference,
}

/// Completed reception of a locked frame, to be graded by the world.
#[derive(Debug, Clone)]
pub(crate) struct RxCompletion {
    pub tx_id: TxId,
    pub lock_time: Time,
    pub signal_mw: f64,
    /// Interference profile during the lock (see [`RxLock::interference`]).
    pub interference: Vec<(Time, f64)>,
}

/// Packed per-node state bits (the `state` hot array).
mod flag {
    /// Powered off or wedged by fault injection.
    pub const DISABLED: u8 = 1 << 0;
    /// A transmission is in progress.
    pub const TX: u8 = 1 << 1;
    /// A reception lock is held.
    pub const LOCKED: u8 = 1 << 2;
    /// Cached busy flag for edge-triggered carrier notifications.
    pub const LAST_BUSY: u8 = 1 << 3;
    /// Any bit that makes the channel read busy regardless of energy.
    pub const ANY_BUSY: u8 = DISABLED | TX | LOCKED;
}

/// All radios of a world, one array per field (struct-of-arrays).
#[derive(Debug)]
pub(crate) struct RadioBank {
    // Hot arrays: the only state `busy`/`phase` touch.
    /// Packed [`flag`] bits per node.
    state: Vec<u8>,
    /// Running sum of impinging frame powers in mW per node, maintained
    /// incrementally and snapped to `0.0` when the impinging set empties.
    energy_total: Vec<f64>,

    // Cold arrays: touched only by reception/transmission events.
    /// Frames currently impinging on each node.
    incoming: Vec<Vec<Incoming>>,
    /// The reception lock, if [`flag::LOCKED`] is set.
    lock: Vec<Option<RxLock>>,
    /// Receptions aborted because the MAC started transmitting over them.
    aborted_rx: Vec<u64>,
    /// Recycled interference-profile buffers: the next lock reuses the
    /// capacity of the last completed (or dropped) one instead of
    /// allocating per reception.
    spare_profile: Vec<Vec<(Time, f64)>>,
}

impl RadioBank {
    /// A bank of `n` idle radios.
    pub fn new(n: usize) -> RadioBank {
        RadioBank {
            state: vec![0; n],
            energy_total: vec![0.0; n],
            incoming: (0..n).map(|_| Vec::new()).collect(),
            lock: (0..n).map(|_| None).collect(),
            aborted_rx: vec![0; n],
            spare_profile: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of radios in the bank.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// A profile buffer seeded with the level at lock time, reusing the
    /// node's spare buffer capacity when one is parked.
    fn fresh_profile(&mut self, node: usize, at: Time, level: f64) -> Vec<(Time, f64)> {
        let mut buf = std::mem::take(&mut self.spare_profile[node]);
        buf.clear();
        buf.push((at, level));
        buf
    }

    /// Park a used interference buffer for the node's next lock (keeps the
    /// larger capacity when two race back).
    pub(crate) fn recycle_profile(&mut self, node: usize, mut buf: Vec<(Time, f64)>) {
        buf.clear();
        if buf.capacity() > self.spare_profile[node].capacity() {
            self.spare_profile[node] = buf;
        }
    }

    fn set_lock(&mut self, node: usize, lock: RxLock) {
        self.lock[node] = Some(lock);
        self.state[node] |= flag::LOCKED;
    }

    fn take_lock(&mut self, node: usize) -> Option<RxLock> {
        self.state[node] &= !flag::LOCKED;
        self.lock[node].take()
    }

    /// Current coarse phase.
    pub fn phase(&self, node: usize) -> RadioPhase {
        let s = self.state[node];
        if s & flag::TX != 0 {
            RadioPhase::Transmitting
        } else if s & flag::LOCKED != 0 {
            RadioPhase::Receiving
        } else {
            RadioPhase::Idle
        }
    }

    /// Sum of impinging frame powers in mW, optionally excluding one frame.
    /// The no-exclusion reading is the maintained running total; exclusion
    /// re-sums the (short) impinging list so interference levels written to
    /// profiles stay exactly `0.0` when nothing else is on the air.
    pub fn energy_mw(&self, node: usize, exclude: Option<TxId>) -> f64 {
        match exclude {
            None => self.energy_total[node],
            Some(id) => self.incoming[node]
                .iter()
                .filter(|f| f.tx_id != id)
                .map(|f| f.power_mw)
                .sum(),
        }
    }

    /// 802.11-style clear-channel assessment: busy while transmitting,
    /// locked onto any frame, or when raw in-band energy exceeds the
    /// preamble-detection threshold (which sits well below decode
    /// sensitivity — carrier sense hears further than data carries).
    /// A disabled radio also reads busy: a wedged front-end cannot report
    /// a clear channel, and the busy -> idle edge at recovery is what
    /// wakes carrier-waiting MACs back up.
    pub fn busy(&self, node: usize, phy: &PhyConfig) -> bool {
        self.state[node] & flag::ANY_BUSY != 0
            || self.energy_total[node] >= dbm_to_mw(phy.cs_detect_dbm.min(phy.ed_threshold_dbm))
    }

    /// The cached busy flag for edge-triggered carrier notifications.
    pub fn last_busy(&self, node: usize) -> bool {
        self.state[node] & flag::LAST_BUSY != 0
    }

    /// Update the cached busy flag.
    pub fn set_last_busy(&mut self, node: usize, busy: bool) {
        if busy {
            self.state[node] |= flag::LAST_BUSY;
        } else {
            self.state[node] &= !flag::LAST_BUSY;
        }
    }

    /// Receptions aborted at `node` because its MAC transmitted over them.
    #[cfg(test)]
    pub fn aborted_rx(&self, node: usize) -> u64 {
        self.aborted_rx[node]
    }

    /// True while powered off or wedged by fault injection.
    pub fn is_disabled(&self, node: usize) -> bool {
        self.state[node] & flag::DISABLED != 0
    }

    /// Fault injection: the radio goes deaf mid-whatever. Any reception in
    /// progress is lost and tracked energies are forgotten (frames still on
    /// the air when the radio recovers are not heard). A transmission
    /// already started keeps its [`flag::TX`] marker — the energy is
    /// physically committed and `end_tx` still fires. Returns `true` if a
    /// locked reception was dropped.
    pub fn power_off(&mut self, node: usize) -> bool {
        self.state[node] |= flag::DISABLED;
        self.incoming[node].clear();
        self.energy_total[node] = 0.0;
        match self.take_lock(node) {
            Some(lock) => {
                self.recycle_profile(node, lock.interference);
                true
            }
            None => false,
        }
    }

    /// Fault injection: the radio comes back. Caller re-checks carrier
    /// edges so MACs observe the busy -> idle recovery transition.
    pub fn power_on(&mut self, node: usize) {
        self.state[node] &= !flag::DISABLED;
    }

    /// Watchdog: structural invariants that must hold between events.
    /// Half-duplex (never locked while transmitting), no reception
    /// surviving a power-off, and the hot arrays agreeing with the cold
    /// state they summarise.
    pub fn invariants_ok(&self, node: usize) -> bool {
        let s = self.state[node];
        let lock_flag_ok = (s & flag::LOCKED != 0) == self.lock[node].is_some();
        // An empty impinging set must read exactly zero energy (the snap in
        // `frame_end`); bit compare, as this is an exact-representation
        // invariant, not a numeric tolerance.
        let energy_ok = !self.incoming[node].is_empty() || self.energy_total[node].to_bits() == 0;
        lock_flag_ok && energy_ok && (s & flag::LOCKED == 0 || s & (flag::TX | flag::DISABLED) == 0)
    }

    /// True if the radio is locked on the given transmission.
    pub fn locked_on(&self, node: usize, tx_id: TxId) -> bool {
        self.lock[node].as_ref().is_some_and(|l| l.tx_id == tx_id)
    }

    /// A new frame's energy arrives at `node`. Returns whether it got the
    /// lock.
    pub fn frame_start(
        &mut self,
        node: usize,
        tx_id: TxId,
        power_mw: f64,
        now: Time,
        phy: &PhyConfig,
        rng: &mut SmallRng,
    ) -> LockOutcome {
        if self.is_disabled(node) {
            // Deaf: the energy is not even tracked (the matching frame_end
            // finds nothing to remove).
            return LockOutcome::Interference;
        }
        let noise = phy.noise_mw();
        // Interference the new frame would see: everything already here.
        let interference_for_new = self.energy_total[node];
        self.incoming[node].push(Incoming { tx_id, power_mw });
        self.energy_total[node] += power_mw;

        if self.state[node] & flag::TX != 0 {
            return LockOutcome::Interference;
        }

        let preamble_window = PLCP_PREAMBLE_NS + PLCP_SIG_NS;
        let Some((lock_time, lock_signal, lock_tx_id)) = self.lock[node]
            .as_ref()
            .map(|l| (l.lock_time, l.signal_mw, l.tx_id))
        else {
            // Idle: attempt to lock the new frame.
            if power_mw >= dbm_to_mw(phy.sensitivity_dbm) {
                let sinr = power_mw / (noise + interference_for_new);
                if rng.gen_bool(preamble_success_prob(sinr).clamp(0.0, 1.0)) {
                    let interference = self.fresh_profile(node, now, interference_for_new);
                    self.set_lock(
                        node,
                        RxLock {
                            tx_id,
                            lock_time: now,
                            signal_mw: power_mw,
                            interference,
                        },
                    );
                    return LockOutcome::Locked;
                }
            }
            return LockOutcome::Interference;
        };

        let in_preamble = now < lock_time + preamble_window;
        let capture_allowed = if in_preamble {
            phy.preamble_capture
                && power_mw > lock_signal * cmap_phy::units::db_to_ratio(phy.capture_margin_db)
        } else {
            phy.mim_capture
                && power_mw > lock_signal * cmap_phy::units::db_to_ratio(phy.mim_margin_db)
        };
        if capture_allowed {
            // The displaced frame keeps radiating: it is interference for
            // the new lock.
            let interference_for_new = self.energy_mw(node, Some(tx_id));
            let sinr = power_mw / (noise + interference_for_new);
            if rng.gen_bool(preamble_success_prob(sinr).clamp(0.0, 1.0)) {
                // The displaced lock's buffer feeds the new one.
                if let Some(old) = self.take_lock(node) {
                    self.recycle_profile(node, old.interference);
                }
                let interference = self.fresh_profile(node, now, interference_for_new);
                self.set_lock(
                    node,
                    RxLock {
                        tx_id,
                        lock_time: now,
                        signal_mw: power_mw,
                        interference,
                    },
                );
                return LockOutcome::Captured {
                    displaced: lock_tx_id,
                };
            }
        }
        // Plain interference for the existing lock.
        let level = self.energy_mw(node, Some(lock_tx_id));
        if let Some(lock) = &mut self.lock[node] {
            lock.interference.push((now, level));
        }
        LockOutcome::Interference
    }

    /// A frame's energy leaves `node`. If it was the locked frame, the
    /// completed reception is returned for grading.
    pub fn frame_end(&mut self, node: usize, tx_id: TxId, now: Time) -> Option<RxCompletion> {
        if let Some(pos) = self.incoming[node].iter().position(|f| f.tx_id == tx_id) {
            let gone = self.incoming[node].swap_remove(pos);
            if self.incoming[node].is_empty() {
                // Snap the running total so float residue from the
                // add/remove churn cannot masquerade as channel energy.
                self.energy_total[node] = 0.0;
            } else {
                self.energy_total[node] -= gone.power_mw;
            }
        }
        if self.locked_on(node, tx_id) {
            let lock = self.take_lock(node).expect("checked");
            return Some(RxCompletion {
                tx_id: lock.tx_id,
                lock_time: lock.lock_time,
                signal_mw: lock.signal_mw,
                interference: lock.interference,
            });
        }
        // Interference level dropped for an ongoing lock.
        if let Some(lock_tx) = self.lock[node].as_ref().map(|l| l.tx_id) {
            let level = self.energy_mw(node, Some(lock_tx));
            if let Some(lock) = &mut self.lock[node] {
                lock.interference.push((now, level));
            }
        }
        None
    }

    /// The MAC starts transmitting. Any reception in progress is aborted
    /// (MadWifi-with-CS-disabled behaviour); the caller has already checked
    /// the abort policy. Returns `false` — refusing the transmission — on a
    /// half-duplex violation (already transmitting), which the world records
    /// as a watchdog violation instead of panicking.
    #[must_use]
    pub fn begin_tx(&mut self, node: usize, _tx_id: TxId) -> bool {
        if self.state[node] & flag::TX != 0 {
            debug_assert!(false, "begin_tx while transmitting");
            return false;
        }
        if let Some(lock) = self.take_lock(node) {
            self.recycle_profile(node, lock.interference);
            self.aborted_rx[node] += 1;
        }
        self.state[node] |= flag::TX;
        true
    }

    /// The transmission finished. Returns `false` if the radio was not
    /// transmitting (a state-machine violation the world records).
    pub fn end_tx(&mut self, node: usize) -> bool {
        let was = self.state[node] & flag::TX != 0;
        debug_assert!(was, "end_tx while not transmitting");
        self.state[node] &= !flag::TX;
        was
    }

    // ---- cmap-ckpt/v2 ---------------------------------------------------

    /// Serialize every behavioural field. `spare_profile` is skipped on
    /// purpose: parked buffer capacity is an allocation optimisation with
    /// no effect on any simulated outcome.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.len());
        for n in 0..self.len() {
            w.u8(self.state[n]);
            w.f64(self.energy_total[n]);
            w.len(self.incoming[n].len());
            for f in &self.incoming[n] {
                w.u64(f.tx_id);
                w.f64(f.power_mw);
            }
            match &self.lock[n] {
                None => w.bool(false),
                Some(lock) => {
                    w.bool(true);
                    w.u64(lock.tx_id);
                    w.u64(lock.lock_time);
                    w.f64(lock.signal_mw);
                    w.len(lock.interference.len());
                    for &(t, level) in &lock.interference {
                        w.u64(t);
                        w.f64(level);
                    }
                }
            }
            w.u64(self.aborted_rx[n]);
        }
    }

    /// Rebuild a bank from [`RadioBank::ckpt_save`] output; `expect_nodes`
    /// must match the world being restored into.
    pub(crate) fn ckpt_load(
        r: &mut CkptReader<'_>,
        expect_nodes: usize,
    ) -> Result<RadioBank, CkptError> {
        let n = r.len()?;
        if n != expect_nodes {
            return Err(CkptError::Mismatch(format!(
                "checkpoint has {n} radios, world has {expect_nodes}"
            )));
        }
        let mut bank = RadioBank::new(n);
        for node in 0..n {
            bank.state[node] = r.u8()?;
            bank.energy_total[node] = r.f64()?;
            let frames = r.len()?;
            bank.incoming[node].reserve(frames);
            for _ in 0..frames {
                bank.incoming[node].push(Incoming {
                    tx_id: r.u64()?,
                    power_mw: r.f64()?,
                });
            }
            if r.bool()? {
                let tx_id = r.u64()?;
                let lock_time = r.u64()?;
                let signal_mw = r.f64()?;
                let profile_len = r.len()?;
                let mut interference = Vec::with_capacity(profile_len);
                for _ in 0..profile_len {
                    interference.push((r.u64()?, r.f64()?));
                }
                bank.lock[node] = Some(RxLock {
                    tx_id,
                    lock_time,
                    signal_mw,
                    interference,
                });
            }
            if (bank.state[node] & flag::LOCKED != 0) != bank.lock[node].is_some() {
                return Err(CkptError::Malformed(format!(
                    "radio {node} lock flag disagrees with lock record"
                )));
            }
            bank.aborted_rx[node] = r.u64()?;
        }
        Ok(bank)
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    fn phy() -> PhyConfig {
        PhyConfig::default()
    }

    fn mw(dbm: f64) -> f64 {
        dbm_to_mw(dbm)
    }

    /// A one-radio bank: the unit under test in most cases below.
    fn bank() -> RadioBank {
        RadioBank::new(1)
    }

    #[test]
    fn strong_lone_frame_locks() {
        let mut r = bank();
        let mut rng = stream_rng(1, 1);
        let out = r.frame_start(0, 1, mw(-60.0), 0, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Locked);
        assert_eq!(r.phase(0), RadioPhase::Receiving);
        let done = r.frame_end(0, 1, 1000).expect("completion");
        assert_eq!(done.tx_id, 1);
        assert_eq!(r.phase(0), RadioPhase::Idle);
    }

    #[test]
    fn frame_below_sensitivity_never_locks() {
        let mut r = bank();
        let mut rng = stream_rng(1, 2);
        let out = r.frame_start(0, 1, mw(-100.0), 0, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.frame_end(0, 1, 1000).is_none());
    }

    #[test]
    fn second_frame_is_interference_and_profiled() {
        let mut r = bank();
        let mut rng = stream_rng(1, 3);
        assert_eq!(
            r.frame_start(0, 1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Weak late frame: interference, logged in the profile.
        assert_eq!(
            r.frame_start(0, 2, mw(-80.0), 50_000, &phy(), &mut rng),
            LockOutcome::Interference
        );
        let _ = r.frame_end(0, 2, 60_000);
        let done = r.frame_end(0, 1, 100_000).unwrap();
        // Profile: lock-time level 0, rise at 50 us, fall at 60 us.
        assert_eq!(done.interference.len(), 3);
        assert_eq!(done.interference[0], (0, 0.0));
        assert!((done.interference[1].1 - mw(-80.0)).abs() < 1e-12);
        assert_eq!(done.interference[2].1, 0.0);
    }

    #[test]
    fn preamble_capture_steals_lock() {
        let mut r = bank();
        let mut rng = stream_rng(1, 4);
        assert_eq!(
            r.frame_start(0, 1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // 15 dB stronger frame inside the 20 us preamble window.
        let out = r.frame_start(0, 2, mw(-65.0), 10_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Captured { displaced: 1 });
        assert!(r.locked_on(0, 2));
        // Frame 1 ending is now mere interference relief.
        assert!(r.frame_end(0, 1, 20_000).is_none());
        assert!(r.frame_end(0, 2, 50_000).is_some());
    }

    #[test]
    fn mim_capture_steals_lock_after_preamble() {
        let mut r = bank();
        let mut rng = stream_rng(1, 5);
        assert_eq!(
            r.frame_start(0, 1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // 25 dB stronger frame arriving mid-payload restarts reception.
        let out = r.frame_start(0, 2, mw(-55.0), 30_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Captured { displaced: 1 });
        assert!(r.locked_on(0, 2));
    }

    #[test]
    fn no_mim_capture_when_disabled() {
        let mut cfg = phy();
        cfg.mim_capture = false;
        let mut r = bank();
        let mut rng = stream_rng(1, 5);
        assert_eq!(
            r.frame_start(0, 1, mw(-80.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        let out = r.frame_start(0, 2, mw(-55.0), 30_000, &cfg, &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.locked_on(0, 1));
    }

    #[test]
    fn weak_latecomer_never_mim_captures() {
        let mut r = bank();
        let mut rng = stream_rng(1, 15);
        assert_eq!(
            r.frame_start(0, 1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Only 5 dB stronger: below the 10 dB MIM margin.
        let out = r.frame_start(0, 2, mw(-55.0), 30_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.locked_on(0, 1));
    }

    #[test]
    fn capture_disabled_by_config() {
        let mut cfg = phy();
        cfg.preamble_capture = false;
        let mut r = bank();
        let mut rng = stream_rng(1, 6);
        assert_eq!(
            r.frame_start(0, 1, mw(-80.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        assert_eq!(
            r.frame_start(0, 2, mw(-50.0), 5_000, &cfg, &mut rng),
            LockOutcome::Interference
        );
    }

    #[test]
    fn transmitting_radio_is_deaf() {
        let mut r = bank();
        let mut rng = stream_rng(1, 7);
        assert!(r.begin_tx(0, 99));
        assert_eq!(r.phase(0), RadioPhase::Transmitting);
        assert_eq!(
            r.frame_start(0, 1, mw(-50.0), 0, &phy(), &mut rng),
            LockOutcome::Interference
        );
        r.end_tx(0);
        assert_eq!(r.phase(0), RadioPhase::Idle);
        // The mid-air frame is not locked retroactively.
        assert!(r.frame_end(0, 1, 1_000).is_none());
    }

    #[test]
    fn begin_tx_aborts_reception() {
        let mut r = bank();
        let mut rng = stream_rng(1, 8);
        assert_eq!(
            r.frame_start(0, 1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        assert!(r.begin_tx(0, 50));
        assert_eq!(r.aborted_rx(0), 1);
        assert!(r.frame_end(0, 1, 10_000).is_none());
    }

    #[test]
    fn interference_profile_spans_capture() {
        // After a MIM capture, the new lock's profile starts with the
        // displaced frame's power as interference.
        let mut r = bank();
        let mut rng = stream_rng(1, 20);
        assert_eq!(
            r.frame_start(0, 1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        assert_eq!(
            r.frame_start(0, 2, mw(-55.0), 40_000, &phy(), &mut rng),
            LockOutcome::Captured { displaced: 1 }
        );
        // Frame 1 ends mid-way through frame 2's reception.
        assert!(r.frame_end(0, 1, 60_000).is_none());
        let done = r.frame_end(0, 2, 100_000).expect("frame 2 completes");
        assert_eq!(done.lock_time, 40_000);
        // Profile: starts at -80 dBm interference, drops to 0 at 60 us.
        assert_eq!(done.interference.len(), 2);
        assert!((done.interference[0].1 - mw(-80.0)).abs() < 1e-12);
        assert_eq!(done.interference[1], (60_000, 0.0));
    }

    #[test]
    fn energy_sums_and_excludes() {
        let mut r = bank();
        let mut rng = stream_rng(1, 21);
        r.frame_start(0, 1, mw(-70.0), 0, &phy(), &mut rng);
        r.frame_start(0, 2, mw(-70.0), 10, &phy(), &mut rng);
        let total = r.energy_mw(0, None);
        assert!((total - 2.0 * mw(-70.0)).abs() < 1e-15);
        assert!((r.energy_mw(0, Some(1)) - mw(-70.0)).abs() < 1e-15);
        r.frame_end(0, 1, 100);
        r.frame_end(0, 2, 100);
        assert_eq!(r.energy_mw(0, None), 0.0);
    }

    #[test]
    fn incremental_energy_total_snaps_back_to_zero() {
        // Regression guard for the running-total layout: removing frames in
        // a different order than they arrived must still leave exactly zero
        // once the air clears (the empty-set snap), and the total must track
        // the live sum in between.
        let mut r = bank();
        let mut rng = stream_rng(1, 23);
        for (id, dbm) in [(1u64, -63.0), (2, -71.0), (3, -88.0)] {
            r.frame_start(0, id, mw(dbm), id, &phy(), &mut rng);
        }
        r.frame_end(0, 2, 100);
        let expect: f64 = r.energy_mw(0, Some(u64::MAX));
        assert!((r.energy_mw(0, None) - expect).abs() <= 1e-12 * expect);
        r.frame_end(0, 3, 101);
        r.frame_end(0, 1, 102);
        assert_eq!(r.energy_mw(0, None), 0.0);
        assert!(!r.busy(0, &phy()));
    }

    #[test]
    fn aborted_rx_counter_increments() {
        let mut r = bank();
        let mut rng = stream_rng(1, 22);
        for tx in 0..3u64 {
            r.frame_start(0, tx, mw(-60.0), tx, &phy(), &mut rng);
            assert!(r.begin_tx(0, 100 + tx));
            assert!(r.end_tx(0));
            r.frame_end(0, tx, 50);
        }
        assert_eq!(r.aborted_rx(0), 3);
    }

    #[test]
    fn power_off_drops_lock_and_deafens() {
        let mut r = bank();
        let cfg = phy();
        let mut rng = stream_rng(1, 30);
        assert_eq!(
            r.frame_start(0, 1, mw(-60.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        assert!(r.power_off(0)); // a lock was dropped
        assert!(r.is_disabled(0));
        assert!(r.busy(0, &cfg)); // wedged radio reads busy
        assert!(r.invariants_ok(0));
        // Deaf: new frames are not even tracked.
        assert_eq!(
            r.frame_start(0, 2, mw(-50.0), 10_000, &cfg, &mut rng),
            LockOutcome::Interference
        );
        assert_eq!(r.energy_mw(0, None), 0.0);
        // The dropped frame's end finds nothing.
        assert!(r.frame_end(0, 1, 20_000).is_none());
        assert!(r.frame_end(0, 2, 30_000).is_none());
        r.power_on(0);
        assert_eq!(r.phase(0), RadioPhase::Idle);
        assert!(!r.busy(0, &cfg));
    }

    #[test]
    fn nodes_in_a_bank_are_independent() {
        // SoA regression guard: state changes at one index never leak into
        // a neighbour's arrays.
        let mut r = RadioBank::new(3);
        let cfg = phy();
        let mut rng = stream_rng(1, 41);
        assert_eq!(
            r.frame_start(1, 7, mw(-60.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        assert!(r.begin_tx(2, 9));
        r.power_off(0);
        assert_eq!(r.phase(0), RadioPhase::Idle);
        assert_eq!(r.phase(1), RadioPhase::Receiving);
        assert_eq!(r.phase(2), RadioPhase::Transmitting);
        assert!(r.is_disabled(0) && !r.is_disabled(1) && !r.is_disabled(2));
        assert_eq!(r.energy_mw(0, None), 0.0);
        assert!(r.energy_mw(1, None) > 0.0);
        for n in 0..3 {
            assert!(r.invariants_ok(n), "node {n}");
        }
        assert!(r.end_tx(2));
        assert!(r.frame_end(1, 7, 1000).is_some());
        r.power_on(0);
        assert!(!r.busy(0, &cfg) && !r.busy(1, &cfg) && !r.busy(2, &cfg));
    }

    /// Property (ISSUE 3 satellite): however a power-off/lockup interleaves
    /// with receptions and a transmission, the radio returns to `Idle` with
    /// zero tracked energy and intact invariants once every frame has ended
    /// — no orphaned reservations survive the outage.
    mod power_off_property {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Step {
            Start(u64, f64),
            End(u64),
            BeginTx,
            EndTx,
            PowerOff,
            PowerOn,
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn always_returns_to_idle(
                frames in prop::collection::vec(
                    (-90.0f64..-50.0, 0u64..100_000, 1_000u64..200_000),
                    1..12,
                ),
                cut in 0u64..250_000,
                do_tx in any::<bool>(),
                tx_at in 0u64..150_000,
                seed in any::<u64>(),
            ) {
                let cfg = phy();
                let mut rng = stream_rng(seed, 1);
                let mut steps: Vec<(u64, u8, Step)> = Vec::new();
                for (id, &(dbm, start, len)) in frames.iter().enumerate() {
                    let id = id as u64;
                    steps.push((start, 2, Step::Start(id, mw(dbm))));
                    steps.push((start + len, 0, Step::End(id)));
                }
                if do_tx {
                    steps.push((tx_at, 3, Step::BeginTx));
                    steps.push((tx_at + 50_000, 1, Step::EndTx));
                }
                steps.push((cut, 4, Step::PowerOff));
                steps.push((cut + 60_000, 5, Step::PowerOn));
                // Deterministic order: time, then a fixed kind rank.
                steps.sort_by_key(|&(t, rank, _)| (t, rank));

                let mut r = RadioBank::new(1);
                let mut tx_live = false;
                for &(t, _, step) in &steps {
                    match step {
                        Step::Start(id, p) => {
                            let _ = r.frame_start(0, id, p, t, &cfg, &mut rng);
                        }
                        Step::End(id) => {
                            let _ = r.frame_end(0, id, t);
                        }
                        // Mirror the world: no tx attempt on a dead radio.
                        Step::BeginTx => {
                            if !r.is_disabled(0) && r.begin_tx(0, 1000) {
                                tx_live = true;
                            }
                        }
                        Step::EndTx => {
                            if tx_live {
                                prop_assert!(r.end_tx(0));
                                tx_live = false;
                            }
                        }
                        Step::PowerOff => {
                            let _ = r.power_off(0);
                            prop_assert_eq!(r.energy_mw(0, None), 0.0);
                        }
                        Step::PowerOn => r.power_on(0),
                    }
                    prop_assert!(r.invariants_ok(0), "invariants at t={}", t);
                }
                prop_assert!(!tx_live);
                prop_assert_eq!(r.phase(0), RadioPhase::Idle);
                prop_assert_eq!(r.energy_mw(0, None), 0.0);
                prop_assert!(!r.busy(0, &cfg));
            }
        }
    }

    #[test]
    fn recycled_profile_buffer_feeds_next_lock_cleanly() {
        let mut r = bank();
        let mut rng = stream_rng(1, 40);
        assert_eq!(
            r.frame_start(0, 1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Grow the profile with some interference churn.
        for k in 0..8u64 {
            r.frame_start(0, 10 + k, mw(-85.0), 100 + k, &phy(), &mut rng);
            r.frame_end(0, 10 + k, 200 + k);
        }
        let done = r.frame_end(0, 1, 1000).unwrap();
        let grown = done.interference.capacity();
        assert!(grown >= 17);
        r.recycle_profile(0, done.interference);
        // The next lock starts from a clean single-entry profile but reuses
        // the parked capacity.
        assert_eq!(
            r.frame_start(0, 2, mw(-60.0), 2000, &phy(), &mut rng),
            LockOutcome::Locked
        );
        let done2 = r.frame_end(0, 2, 3000).unwrap();
        assert_eq!(done2.interference.as_slice(), &[(2000, 0.0)]);
        assert_eq!(done2.interference.capacity(), grown);
    }

    #[test]
    fn busy_tracks_phase_and_energy() {
        let mut r = bank();
        let cfg = phy();
        let mut rng = stream_rng(1, 9);
        assert!(!r.busy(0, &cfg));
        // A strong but unlockable situation: transmitting + loud frame.
        assert!(r.begin_tx(0, 1));
        assert!(r.busy(0, &cfg));
        r.frame_start(0, 2, mw(-50.0), 0, &cfg, &mut rng);
        r.end_tx(0);
        // -50 dBm exceeds the -62 dBm ED threshold even without a lock.
        assert!(r.busy(0, &cfg));
        r.frame_end(0, 2, 100);
        assert!(!r.busy(0, &cfg));
    }
}
