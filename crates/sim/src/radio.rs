//! Per-node radio: a half-duplex PHY state machine.
//!
//! The radio tracks every frame currently impinging on the node (for energy
//! accounting), holds at most one *lock* (the frame actually being decoded),
//! and implements preamble capture. It deliberately knows nothing about
//! frame contents — the world layer attaches meanings; the radio only sees
//! powers and times.
//!
//! Locking rules (modelled on commodity 802.11 hardware, cf. §2.1/§6 of the
//! paper):
//! * An **idle** radio attempts to lock every arriving frame; the attempt
//!   succeeds with the preamble/SIGNAL decode probability at the SINR at
//!   arrival time.
//! * A **locked** radio treats later arrivals as interference, except that a
//!   much stronger frame steals the lock: within the current lock's
//!   preamble+SIGNAL window this is *preamble capture*
//!   (`capture_margin_db`), after it *message-in-message capture*
//!   (`mim_margin_db`) — the OFDM receiver restarting on a much louder
//!   preamble, which Atheros-era hardware does and the paper's exposed
//!   terminals rely on for ACK delivery.
//! * A **transmitting** radio is deaf: arrivals are tracked for energy only.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::config::PhyConfig;
use crate::event::TxId;
use crate::time::Time;
use cmap_phy::{dbm_to_mw, preamble_success_prob, PLCP_PREAMBLE_NS, PLCP_SIG_NS};

/// Coarse radio state exposed to MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioPhase {
    /// Neither transmitting nor locked onto a frame.
    Idle,
    /// Locked onto an incoming frame.
    Receiving,
    /// Transmitting.
    Transmitting,
}

/// One frame currently impinging on the node.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    tx_id: TxId,
    power_mw: f64,
}

/// The frame currently being decoded.
#[derive(Debug, Clone)]
pub(crate) struct RxLock {
    pub tx_id: TxId,
    pub lock_time: Time,
    pub signal_mw: f64,
    /// Piecewise-constant interference (mW, excluding the locked signal)
    /// as `(change_time, level_after)`, starting with the level at lock.
    pub interference: Vec<(Time, f64)>,
}

/// What happened when a frame arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// Radio locked onto the new frame.
    Locked,
    /// New frame stole the lock from a weaker frame still in its preamble.
    Captured { displaced: TxId },
    /// Frame is interference only (no lock, or lock attempt failed).
    Interference,
}

/// Completed reception of the locked frame, to be graded by the world.
#[derive(Debug, Clone)]
pub(crate) struct RxCompletion {
    pub tx_id: TxId,
    pub lock_time: Time,
    pub signal_mw: f64,
    /// Interference profile during the lock (see [`RxLock::interference`]).
    pub interference: Vec<(Time, f64)>,
}

/// Per-node radio state.
#[derive(Debug, Default)]
pub(crate) struct Radio {
    incoming: Vec<Incoming>,
    lock: Option<RxLock>,
    transmitting: Option<TxId>,
    /// Powered off or wedged (fault injection): deaf, cannot transmit, and
    /// reports carrier busy so MACs naturally hold off until recovery.
    disabled: bool,
    /// Cached busy flag for edge-triggered carrier notifications.
    pub last_busy: bool,
    /// Receptions aborted because the MAC started transmitting over them.
    pub aborted_rx: u64,
    /// Recycled interference-profile buffer: the next lock reuses the
    /// capacity of the last completed (or dropped) one instead of
    /// allocating per reception.
    spare_profile: Vec<(Time, f64)>,
}

impl Radio {
    /// A profile buffer seeded with the level at lock time, reusing the
    /// spare buffer's capacity when one is parked.
    fn fresh_profile(&mut self, at: Time, level: f64) -> Vec<(Time, f64)> {
        let mut buf = std::mem::take(&mut self.spare_profile);
        buf.clear();
        buf.push((at, level));
        buf
    }

    /// Park a used interference buffer for the next lock (keeps the larger
    /// capacity when two race back).
    pub(crate) fn recycle_profile(&mut self, mut buf: Vec<(Time, f64)>) {
        buf.clear();
        if buf.capacity() > self.spare_profile.capacity() {
            self.spare_profile = buf;
        }
    }

    /// Current coarse phase.
    pub fn phase(&self) -> RadioPhase {
        if self.transmitting.is_some() {
            RadioPhase::Transmitting
        } else if self.lock.is_some() {
            RadioPhase::Receiving
        } else {
            RadioPhase::Idle
        }
    }

    /// Sum of impinging frame powers in mW, optionally excluding one frame.
    pub fn energy_mw(&self, exclude: Option<TxId>) -> f64 {
        self.incoming
            .iter()
            .filter(|f| Some(f.tx_id) != exclude)
            .map(|f| f.power_mw)
            .sum()
    }

    /// 802.11-style clear-channel assessment: busy while transmitting,
    /// locked onto any frame, or when raw in-band energy exceeds the
    /// preamble-detection threshold (which sits well below decode
    /// sensitivity — carrier sense hears further than data carries).
    pub fn busy(&self, phy: &PhyConfig) -> bool {
        // A disabled radio reads busy: a wedged front-end cannot report a
        // clear channel, and the busy -> idle edge at recovery is what wakes
        // carrier-waiting MACs back up.
        self.disabled
            || self.phase() != RadioPhase::Idle
            || self.energy_mw(None) >= dbm_to_mw(phy.cs_detect_dbm.min(phy.ed_threshold_dbm))
    }

    /// True while powered off or wedged by fault injection.
    pub fn is_disabled(&self) -> bool {
        self.disabled
    }

    /// Fault injection: the radio goes deaf mid-whatever. Any reception in
    /// progress is lost and tracked energies are forgotten (frames still on
    /// the air when the radio recovers are not heard). A transmission
    /// already started keeps its `transmitting` marker — the energy is
    /// physically committed and `end_tx` still fires. Returns `true` if a
    /// locked reception was dropped.
    pub fn power_off(&mut self) -> bool {
        self.disabled = true;
        self.incoming.clear();
        match self.lock.take() {
            Some(lock) => {
                self.recycle_profile(lock.interference);
                true
            }
            None => false,
        }
    }

    /// Fault injection: the radio comes back. Caller re-checks carrier
    /// edges so MACs observe the busy -> idle recovery transition.
    pub fn power_on(&mut self) {
        self.disabled = false;
    }

    /// Watchdog: structural invariants that must hold between events.
    /// Half-duplex (never locked while transmitting) and no reception
    /// surviving a power-off.
    pub fn invariants_ok(&self) -> bool {
        // A lock may not coexist with transmitting (half-duplex) or with a
        // disabled front-end (a dead radio cannot be decoding).
        self.lock.is_none() || (self.transmitting.is_none() && !self.disabled)
    }

    /// True if the radio is locked on the given transmission.
    pub fn locked_on(&self, tx_id: TxId) -> bool {
        self.lock.as_ref().is_some_and(|l| l.tx_id == tx_id)
    }

    /// A new frame's energy arrives. Returns whether it got the lock.
    pub fn frame_start(
        &mut self,
        tx_id: TxId,
        power_mw: f64,
        now: Time,
        phy: &PhyConfig,
        rng: &mut SmallRng,
    ) -> LockOutcome {
        if self.disabled {
            // Deaf: the energy is not even tracked (the matching frame_end
            // finds nothing to remove).
            return LockOutcome::Interference;
        }
        let noise = phy.noise_mw();
        // Interference the new frame would see: everything already here.
        let interference_for_new = self.energy_mw(None);
        self.incoming.push(Incoming { tx_id, power_mw });

        if self.transmitting.is_some() {
            return LockOutcome::Interference;
        }

        let preamble_window = PLCP_PREAMBLE_NS + PLCP_SIG_NS;
        let Some((lock_time, lock_signal, lock_tx_id)) = self
            .lock
            .as_ref()
            .map(|l| (l.lock_time, l.signal_mw, l.tx_id))
        else {
            // Idle: attempt to lock the new frame.
            if power_mw >= dbm_to_mw(phy.sensitivity_dbm) {
                let sinr = power_mw / (noise + interference_for_new);
                if rng.gen_bool(preamble_success_prob(sinr).clamp(0.0, 1.0)) {
                    let interference = self.fresh_profile(now, interference_for_new);
                    self.lock = Some(RxLock {
                        tx_id,
                        lock_time: now,
                        signal_mw: power_mw,
                        interference,
                    });
                    return LockOutcome::Locked;
                }
            }
            return LockOutcome::Interference;
        };

        let in_preamble = now < lock_time + preamble_window;
        let capture_allowed = if in_preamble {
            phy.preamble_capture
                && power_mw > lock_signal * cmap_phy::units::db_to_ratio(phy.capture_margin_db)
        } else {
            phy.mim_capture
                && power_mw > lock_signal * cmap_phy::units::db_to_ratio(phy.mim_margin_db)
        };
        if capture_allowed {
            // The displaced frame keeps radiating: it is interference for
            // the new lock.
            let interference_for_new = self.energy_mw(Some(tx_id));
            let sinr = power_mw / (noise + interference_for_new);
            if rng.gen_bool(preamble_success_prob(sinr).clamp(0.0, 1.0)) {
                // The displaced lock's buffer feeds the new one.
                if let Some(old) = self.lock.take() {
                    self.recycle_profile(old.interference);
                }
                let interference = self.fresh_profile(now, interference_for_new);
                self.lock = Some(RxLock {
                    tx_id,
                    lock_time: now,
                    signal_mw: power_mw,
                    interference,
                });
                return LockOutcome::Captured {
                    displaced: lock_tx_id,
                };
            }
        }
        // Plain interference for the existing lock.
        let level = self.energy_mw(Some(lock_tx_id));
        if let Some(lock) = &mut self.lock {
            lock.interference.push((now, level));
        }
        LockOutcome::Interference
    }

    /// A frame's energy leaves the node. If it was the locked frame, the
    /// completed reception is returned for grading.
    pub fn frame_end(&mut self, tx_id: TxId, now: Time) -> Option<RxCompletion> {
        if let Some(pos) = self.incoming.iter().position(|f| f.tx_id == tx_id) {
            self.incoming.swap_remove(pos);
        }
        if self.locked_on(tx_id) {
            let lock = self.lock.take().expect("checked");
            return Some(RxCompletion {
                tx_id: lock.tx_id,
                lock_time: lock.lock_time,
                signal_mw: lock.signal_mw,
                interference: lock.interference,
            });
        }
        // Interference level dropped for an ongoing lock.
        if let Some(lock) = &mut self.lock {
            let level = self
                .incoming
                .iter()
                .filter(|f| f.tx_id != lock.tx_id)
                .map(|f| f.power_mw)
                .sum();
            lock.interference.push((now, level));
        }
        None
    }

    /// The MAC starts transmitting. Any reception in progress is aborted
    /// (MadWifi-with-CS-disabled behaviour); the caller has already checked
    /// the abort policy. Returns `false` — refusing the transmission — on a
    /// half-duplex violation (already transmitting), which the world records
    /// as a watchdog violation instead of panicking.
    #[must_use]
    pub fn begin_tx(&mut self, tx_id: TxId) -> bool {
        if self.transmitting.is_some() {
            debug_assert!(false, "begin_tx while transmitting");
            return false;
        }
        if let Some(lock) = self.lock.take() {
            self.recycle_profile(lock.interference);
            self.aborted_rx += 1;
        }
        self.transmitting = Some(tx_id);
        true
    }

    /// The transmission finished. Returns `false` if the radio was not
    /// transmitting (a state-machine violation the world records).
    pub fn end_tx(&mut self) -> bool {
        let was = self.transmitting.is_some();
        debug_assert!(was, "end_tx while not transmitting");
        self.transmitting = None;
        was
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    fn phy() -> PhyConfig {
        PhyConfig::default()
    }

    fn mw(dbm: f64) -> f64 {
        dbm_to_mw(dbm)
    }

    #[test]
    fn strong_lone_frame_locks() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 1);
        let out = r.frame_start(1, mw(-60.0), 0, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Locked);
        assert_eq!(r.phase(), RadioPhase::Receiving);
        let done = r.frame_end(1, 1000).expect("completion");
        assert_eq!(done.tx_id, 1);
        assert_eq!(r.phase(), RadioPhase::Idle);
    }

    #[test]
    fn frame_below_sensitivity_never_locks() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 2);
        let out = r.frame_start(1, mw(-100.0), 0, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.frame_end(1, 1000).is_none());
    }

    #[test]
    fn second_frame_is_interference_and_profiled() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 3);
        assert_eq!(
            r.frame_start(1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Weak late frame: interference, logged in the profile.
        assert_eq!(
            r.frame_start(2, mw(-80.0), 50_000, &phy(), &mut rng),
            LockOutcome::Interference
        );
        let _ = r.frame_end(2, 60_000);
        let done = r.frame_end(1, 100_000).unwrap();
        // Profile: lock-time level 0, rise at 50 us, fall at 60 us.
        assert_eq!(done.interference.len(), 3);
        assert_eq!(done.interference[0], (0, 0.0));
        assert!((done.interference[1].1 - mw(-80.0)).abs() < 1e-12);
        assert_eq!(done.interference[2].1, 0.0);
    }

    #[test]
    fn preamble_capture_steals_lock() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 4);
        assert_eq!(
            r.frame_start(1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // 15 dB stronger frame inside the 20 us preamble window.
        let out = r.frame_start(2, mw(-65.0), 10_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Captured { displaced: 1 });
        assert!(r.locked_on(2));
        // Frame 1 ending is now mere interference relief.
        assert!(r.frame_end(1, 20_000).is_none());
        assert!(r.frame_end(2, 50_000).is_some());
    }

    #[test]
    fn mim_capture_steals_lock_after_preamble() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 5);
        assert_eq!(
            r.frame_start(1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // 25 dB stronger frame arriving mid-payload restarts reception.
        let out = r.frame_start(2, mw(-55.0), 30_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Captured { displaced: 1 });
        assert!(r.locked_on(2));
    }

    #[test]
    fn no_mim_capture_when_disabled() {
        let mut cfg = phy();
        cfg.mim_capture = false;
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 5);
        assert_eq!(
            r.frame_start(1, mw(-80.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        let out = r.frame_start(2, mw(-55.0), 30_000, &cfg, &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.locked_on(1));
    }

    #[test]
    fn weak_latecomer_never_mim_captures() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 15);
        assert_eq!(
            r.frame_start(1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Only 5 dB stronger: below the 10 dB MIM margin.
        let out = r.frame_start(2, mw(-55.0), 30_000, &phy(), &mut rng);
        assert_eq!(out, LockOutcome::Interference);
        assert!(r.locked_on(1));
    }

    #[test]
    fn capture_disabled_by_config() {
        let mut cfg = phy();
        cfg.preamble_capture = false;
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 6);
        assert_eq!(
            r.frame_start(1, mw(-80.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        assert_eq!(
            r.frame_start(2, mw(-50.0), 5_000, &cfg, &mut rng),
            LockOutcome::Interference
        );
    }

    #[test]
    fn transmitting_radio_is_deaf() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 7);
        assert!(r.begin_tx(99));
        assert_eq!(r.phase(), RadioPhase::Transmitting);
        assert_eq!(
            r.frame_start(1, mw(-50.0), 0, &phy(), &mut rng),
            LockOutcome::Interference
        );
        r.end_tx();
        assert_eq!(r.phase(), RadioPhase::Idle);
        // The mid-air frame is not locked retroactively.
        assert!(r.frame_end(1, 1_000).is_none());
    }

    #[test]
    fn begin_tx_aborts_reception() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 8);
        assert_eq!(
            r.frame_start(1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        assert!(r.begin_tx(50));
        assert_eq!(r.aborted_rx, 1);
        assert!(r.frame_end(1, 10_000).is_none());
    }

    #[test]
    fn interference_profile_spans_capture() {
        // After a MIM capture, the new lock's profile starts with the
        // displaced frame's power as interference.
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 20);
        assert_eq!(
            r.frame_start(1, mw(-80.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        assert_eq!(
            r.frame_start(2, mw(-55.0), 40_000, &phy(), &mut rng),
            LockOutcome::Captured { displaced: 1 }
        );
        // Frame 1 ends mid-way through frame 2's reception.
        assert!(r.frame_end(1, 60_000).is_none());
        let done = r.frame_end(2, 100_000).expect("frame 2 completes");
        assert_eq!(done.lock_time, 40_000);
        // Profile: starts at -80 dBm interference, drops to 0 at 60 us.
        assert_eq!(done.interference.len(), 2);
        assert!((done.interference[0].1 - mw(-80.0)).abs() < 1e-12);
        assert_eq!(done.interference[1], (60_000, 0.0));
    }

    #[test]
    fn energy_sums_and_excludes() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 21);
        r.frame_start(1, mw(-70.0), 0, &phy(), &mut rng);
        r.frame_start(2, mw(-70.0), 10, &phy(), &mut rng);
        let total = r.energy_mw(None);
        assert!((total - 2.0 * mw(-70.0)).abs() < 1e-15);
        assert!((r.energy_mw(Some(1)) - mw(-70.0)).abs() < 1e-15);
        r.frame_end(1, 100);
        r.frame_end(2, 100);
        assert_eq!(r.energy_mw(None), 0.0);
    }

    #[test]
    fn aborted_rx_counter_increments() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 22);
        for tx in 0..3u64 {
            r.frame_start(tx, mw(-60.0), tx, &phy(), &mut rng);
            assert!(r.begin_tx(100 + tx));
            assert!(r.end_tx());
            r.frame_end(tx, 50);
        }
        assert_eq!(r.aborted_rx, 3);
    }

    #[test]
    fn power_off_drops_lock_and_deafens() {
        let mut r = Radio::default();
        let cfg = phy();
        let mut rng = stream_rng(1, 30);
        assert_eq!(
            r.frame_start(1, mw(-60.0), 0, &cfg, &mut rng),
            LockOutcome::Locked
        );
        assert!(r.power_off()); // a lock was dropped
        assert!(r.is_disabled());
        assert!(r.busy(&cfg)); // wedged radio reads busy
        assert!(r.invariants_ok());
        // Deaf: new frames are not even tracked.
        assert_eq!(
            r.frame_start(2, mw(-50.0), 10_000, &cfg, &mut rng),
            LockOutcome::Interference
        );
        assert_eq!(r.energy_mw(None), 0.0);
        // The dropped frame's end finds nothing.
        assert!(r.frame_end(1, 20_000).is_none());
        assert!(r.frame_end(2, 30_000).is_none());
        r.power_on();
        assert_eq!(r.phase(), RadioPhase::Idle);
        assert!(!r.busy(&cfg));
    }

    /// Property (ISSUE 3 satellite): however a power-off/lockup interleaves
    /// with receptions and a transmission, the radio returns to `Idle` with
    /// zero tracked energy and intact invariants once every frame has ended
    /// — no orphaned reservations survive the outage.
    mod power_off_property {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Step {
            Start(u64, f64),
            End(u64),
            BeginTx,
            EndTx,
            PowerOff,
            PowerOn,
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn always_returns_to_idle(
                frames in prop::collection::vec(
                    (-90.0f64..-50.0, 0u64..100_000, 1_000u64..200_000),
                    1..12,
                ),
                cut in 0u64..250_000,
                do_tx in any::<bool>(),
                tx_at in 0u64..150_000,
                seed in any::<u64>(),
            ) {
                let cfg = phy();
                let mut rng = stream_rng(seed, 1);
                let mut steps: Vec<(u64, u8, Step)> = Vec::new();
                for (id, &(dbm, start, len)) in frames.iter().enumerate() {
                    let id = id as u64;
                    steps.push((start, 2, Step::Start(id, mw(dbm))));
                    steps.push((start + len, 0, Step::End(id)));
                }
                if do_tx {
                    steps.push((tx_at, 3, Step::BeginTx));
                    steps.push((tx_at + 50_000, 1, Step::EndTx));
                }
                steps.push((cut, 4, Step::PowerOff));
                steps.push((cut + 60_000, 5, Step::PowerOn));
                // Deterministic order: time, then a fixed kind rank.
                steps.sort_by_key(|&(t, rank, _)| (t, rank));

                let mut r = Radio::default();
                let mut tx_live = false;
                for &(t, _, step) in &steps {
                    match step {
                        Step::Start(id, p) => {
                            let _ = r.frame_start(id, p, t, &cfg, &mut rng);
                        }
                        Step::End(id) => {
                            let _ = r.frame_end(id, t);
                        }
                        // Mirror the world: no tx attempt on a dead radio.
                        Step::BeginTx => {
                            if !r.is_disabled() && r.begin_tx(1000) {
                                tx_live = true;
                            }
                        }
                        Step::EndTx => {
                            if tx_live {
                                prop_assert!(r.end_tx());
                                tx_live = false;
                            }
                        }
                        Step::PowerOff => {
                            let _ = r.power_off();
                            prop_assert_eq!(r.energy_mw(None), 0.0);
                        }
                        Step::PowerOn => r.power_on(),
                    }
                    prop_assert!(r.invariants_ok(), "invariants at t={}", t);
                }
                prop_assert!(!tx_live);
                prop_assert_eq!(r.phase(), RadioPhase::Idle);
                prop_assert_eq!(r.energy_mw(None), 0.0);
                prop_assert!(!r.busy(&cfg));
            }
        }
    }

    #[test]
    fn recycled_profile_buffer_feeds_next_lock_cleanly() {
        let mut r = Radio::default();
        let mut rng = stream_rng(1, 40);
        assert_eq!(
            r.frame_start(1, mw(-60.0), 0, &phy(), &mut rng),
            LockOutcome::Locked
        );
        // Grow the profile with some interference churn.
        for k in 0..8u64 {
            r.frame_start(10 + k, mw(-85.0), 100 + k, &phy(), &mut rng);
            r.frame_end(10 + k, 200 + k);
        }
        let done = r.frame_end(1, 1000).unwrap();
        let grown = done.interference.capacity();
        assert!(grown >= 17);
        r.recycle_profile(done.interference);
        // The next lock starts from a clean single-entry profile but reuses
        // the parked capacity.
        assert_eq!(
            r.frame_start(2, mw(-60.0), 2000, &phy(), &mut rng),
            LockOutcome::Locked
        );
        let done2 = r.frame_end(2, 3000).unwrap();
        assert_eq!(done2.interference.as_slice(), &[(2000, 0.0)]);
        assert_eq!(done2.interference.capacity(), grown);
    }

    #[test]
    fn busy_tracks_phase_and_energy() {
        let mut r = Radio::default();
        let cfg = phy();
        let mut rng = stream_rng(1, 9);
        assert!(!r.busy(&cfg));
        // A strong but unlockable situation: transmitting + loud frame.
        assert!(r.begin_tx(1));
        assert!(r.busy(&cfg));
        r.frame_start(2, mw(-50.0), 0, &cfg, &mut rng);
        r.end_tx();
        // -50 dBm exceeds the -62 dBm ED threshold even without a lock.
        assert!(r.busy(&cfg));
        r.frame_end(2, 100);
        assert!(!r.busy(&cfg));
    }
}
