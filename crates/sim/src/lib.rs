//! # cmap-sim — discrete-event wireless network simulator
//!
//! The substrate that stands in for the paper's 50-node 802.11a testbed: a
//! deterministic discrete-event engine with
//!
//! * a nanosecond event queue with stable tie-breaking ([`event`]),
//! * a shared [`Medium`] of frozen link gains and propagation delays
//!   behind the [`Propagation`] trait — dense matrix for testbed-scale
//!   topologies, sparse spatially-indexed storage for city scale
//!   ([`MediumBuilder`]),
//! * a half-duplex [`radio`] per node with preamble locking, preamble
//!   capture, SINR-segmented reception grading and 802.11-style CCA,
//! * a [`Mac`] trait that link layers (`cmap-core`, `cmap-mac80211`)
//!   implement, with all effects funnelled through [`NodeCtx`],
//! * saturated and relay application [`app`] flows,
//! * run statistics ([`stats`]): windowed per-flow throughput, virtual-packet
//!   header/trailer reception bookkeeping, typed counters/gauges from the
//!   `cmap-obs` registry, and an optional structured trace sink, and
//! * deterministic fault injection ([`faults`]): node churn, radio lockups,
//!   Gilbert–Elliott burst loss, stepped shadowing, clock skew and frame
//!   corruption, plus a runtime invariant watchdog, and
//! * process-wide engine totals ([`perf`]) feeding the benchmark perf
//!   baseline (events/sec, BER-cache hit rate) across parallel runs, and
//! * mid-run checkpoint/restore ([`ckpt`], [`World::checkpoint`],
//!   [`World::restore`]) in the versioned `cmap-ckpt/v2` format: a
//!   restored run continues byte-identically to an uninterrupted one.
//!
//! Runs are bit-deterministic for a given (topology, MACs, seed): every
//! random draw derives from the master seed via per-node streams.
//!
//! ## Example
//!
//! ```
//! use cmap_sim::{MediumBuilder, PhyConfig, World, time};
//!
//! let phy = PhyConfig::default();
//! let medium = MediumBuilder::new(&phy).uniform(2, -70.0).build();
//! let mut world = World::builder().medium(medium).phy(phy).seed(42).build();
//! let flow = world.add_flow(0, 1, 1400);
//! // (install MACs here; nodes default to a silent NullMac)
//! world.run_until(time::secs(1));
//! assert_eq!(world.stats().flow(flow).arrivals.len(), 0); // NullMac sent nothing
//! ```

pub mod app;
pub mod ckpt;
pub mod config;
pub mod event;
pub mod faults;
pub mod mac;
pub mod medium;
pub mod node;
pub mod perf;
pub(crate) mod pool;
pub mod radio;
pub mod rng;
pub mod stats;
pub mod time;
pub mod world;

pub use app::AppPacket;
pub use ckpt::{CkptError, CKPT_MAGIC};
pub use cmap_obs::{CounterId, GaugeId, TraceEvent, TraceSink};
pub use config::PhyConfig;
pub use faults::{FaultPlan, GilbertElliott, Lockup, Outage, Shadowing, WatchdogConfig};
pub use mac::{Mac, NodeCtx, NullMac, RxErrorInfo, RxInfo};
pub use medium::{DenseMedium, Medium, MediumBuilder, Propagation, SparseMedium, SparseStats};
pub use radio::RadioPhase;
pub use stats::Stats;
pub use time::Time;
pub use world::{Flow, FlowKind, NodeId, World, WorldBuilder};
