//! `cmap-ckpt/v2` — the versioned binary checkpoint format.
//!
//! A checkpoint is a full serialization of a mid-run [`World`]: simulation
//! clock, timing-wheel contents, radio bank, per-node RNG stream
//! positions, MAC state machines, statistics, and fault-plan cursors.
//! The contract is **byte-identity**: run to event K, checkpoint, restore
//! in a fresh process over an identically-configured world, run to the
//! end — every deterministic artifact must be byte-identical to an
//! uninterrupted same-seed run (`tests/checkpoint_identity.rs` gates
//! this).
//!
//! The encoding is deliberately primitive: little-endian fixed-width
//! integers, `f64` as raw IEEE bit patterns (bit-exact restore, no
//! text round-trip), and length-prefixed byte blobs. No
//! self-description — the format version in the magic line *is* the
//! schema, and any structural change must bump it. Readers validate
//! eagerly and return [`CkptError`] rather than panicking: a truncated
//! or foreign file is an expected input (crash-safe artifact dirs), not
//! a bug.
//!
//! [`World`]: crate::World

/// Format identifier; serialized as the magic prefix of every checkpoint.
/// v2 (city-scale medium PR) extends the config echo with the medium
/// fingerprint, so a checkpoint can no longer be restored over a world
/// whose propagation engine or link set drifted from the saved one.
pub const CKPT_MAGIC: &str = "cmap-ckpt/v2";

/// Why a checkpoint could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The magic prefix is missing or names a different format version.
    BadMagic,
    /// The buffer ended before a field being read.
    Truncated,
    /// A field holds a value outside its legal range.
    Malformed(String),
    /// The checkpoint does not match the world it is being applied to
    /// (different seed, topology size, fault plan, ...).
    Mismatch(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a {CKPT_MAGIC} checkpoint"),
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CkptError::Mismatch(what) => write!(f, "checkpoint/world mismatch: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Little-endian checkpoint encoder.
#[derive(Debug, Default)]
pub struct CkptWriter {
    buf: Vec<u8>,
}

impl CkptWriter {
    /// A writer primed with the format magic.
    pub fn new() -> CkptWriter {
        let mut w = CkptWriter { buf: Vec::new() };
        w.buf.extend_from_slice(CKPT_MAGIC.as_bytes());
        w.buf.push(b'\n');
        w
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bit pattern (bit-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a `usize` as `u64` (checkpoints are cross-width portable).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bound on any single decoded collection length: no legitimate world in
/// this workspace holds a billion of anything, and refusing early keeps a
/// corrupt length field from attempting a huge allocation.
const MAX_LEN: u64 = 1 << 30;

/// Little-endian checkpoint decoder.
#[derive(Debug)]
pub struct CkptReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    /// Wrap `buf`, validating the format magic.
    pub fn new(buf: &'a [u8]) -> Result<CkptReader<'a>, CkptError> {
        let mut magic = CKPT_MAGIC.as_bytes().to_vec();
        magic.push(b'\n');
        if buf.len() < magic.len() || &buf[..magic.len()] != magic.as_slice() {
            return Err(CkptError::BadMagic);
        }
        Ok(CkptReader {
            buf,
            pos: magic.len(),
        })
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CkptError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CkptError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a collection length (bounds-checked `u64` → `usize`).
    // Not a container: `len` here is a cursor read op, so `is_empty` has
    // no meaning.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CkptError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(CkptError::Malformed(format!("length {v} out of range")));
        }
        usize::try_from(v).map_err(|_| CkptError::Malformed(format!("length {v} out of range")))
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CkptError::Malformed("non-UTF-8 string".to_string()))
    }

    /// Require that the whole buffer was consumed (trailing garbage means
    /// a format mismatch, not padding).
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
// Tests assert bit-exact f64 round-trips — bitwise equality is the
// property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = CkptWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-12345);
        w.f64(-0.0);
        w.f64(1.5e-300);
        w.len(42);
        w.bool(true);
        w.bool(false);
        w.bytes(b"blob");
        w.str("héllo");
        let bytes = w.finish();

        let mut r = CkptReader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), 1.5e-300);
        assert_eq!(r.len().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"blob");
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        assert_eq!(
            CkptReader::new(b"not-a-checkpoint").unwrap_err(),
            CkptError::BadMagic
        );
        // Magic of a past or future version must be rejected, not
        // half-read.
        assert_eq!(
            CkptReader::new(b"cmap-ckpt/v1\n").unwrap_err(),
            CkptError::BadMagic
        );
        assert_eq!(
            CkptReader::new(b"cmap-ckpt/v3\n").unwrap_err(),
            CkptError::BadMagic
        );

        let mut w = CkptWriter::new();
        w.u64(1);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 2);
        let mut r = CkptReader::new(&bytes).unwrap();
        assert_eq!(r.u64().unwrap_err(), CkptError::Truncated);

        // An absurd length field fails before allocating.
        let mut w = CkptWriter::new();
        w.u64(u64::MAX);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes).unwrap();
        assert!(matches!(r.len().unwrap_err(), CkptError::Malformed(_)));

        // Bool bytes are strict.
        let mut w = CkptWriter::new();
        w.u8(2);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes).unwrap();
        assert!(matches!(r.bool().unwrap_err(), CkptError::Malformed(_)));

        // Trailing garbage is flagged.
        let mut w = CkptWriter::new();
        w.u8(0);
        let bytes = w.finish();
        let mut r = CkptReader::new(&bytes).unwrap();
        let _ = r.u8().unwrap();
        r.expect_end().unwrap();
        let mut w = CkptWriter::new();
        w.u16(0);
        let bytes = w.finish();
        let r = CkptReader::new(&bytes).unwrap();
        assert!(matches!(
            r.expect_end().unwrap_err(),
            CkptError::Malformed(_)
        ));
    }
}
