//! Deterministic randomness.
//!
//! Every run derives all of its randomness from a single `u64` master seed:
//! one [`SmallRng`] per node plus one for the world itself, split with a
//! SplitMix64 expansion so that adding a node never perturbs the streams of
//! existing nodes. Identical seed + identical configuration ⇒ bit-identical
//! runs, which the determinism integration test pins down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — the standard seed-expansion permutation.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalise a SplitMix64 state into an output value.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent sub-seed from a master seed and a stream index.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master;
    for _ in 0..=stream % 4 {
        splitmix64(&mut s);
    }
    splitmix64_mix(s ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// A [`SmallRng`] for the given stream of a master seed.
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// Draw from a standard normal via Box–Muller (avoids a `rand_distr`
/// dependency; called at most once per frame arrival).
pub fn normal(rng: &mut SmallRng, mean: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return mean;
    }
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sigma * z
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ_across_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        let mut r1 = stream_rng(7, 3);
        let mut r2 = stream_rng(7, 3);
        for _ in 0..10 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = stream_rng(1, 0);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = normal(&mut rng, 2.0, 3.0);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sumsq / f64::from(n) - mean * mean;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn zero_sigma_is_exact() {
        let mut rng = stream_rng(1, 0);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }
}
