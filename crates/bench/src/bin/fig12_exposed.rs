//! Fig 12 (§5.2): exposed terminals — CMAP's headline 2x gain.

use cmap_bench::{banner, median_of, medians_line, render_cdfs, Cli};
use cmap_experiments::exposed;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(50);
    banner(
        "Fig 12 — exposed terminals",
        "CMAP ~2x over CS; ~15% of pairs not truly exposed; win=1 only ~1.5x",
        &spec,
    );
    let curves = exposed::fig12(&spec);
    println!("{}", medians_line(&curves));
    let cs = median_of(&curves, "CS, acks");
    let cmap = median_of(&curves, "CMAP");
    let win1 = median_of(&curves, "CMAP, win=1");
    println!(
        "median gain: CMAP/CS = {:.2}x (paper ~2x), win1/CS = {:.2}x (paper ~1.5x)",
        cmap / cs,
        win1 / cs
    );
    println!();
    println!("{}", render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
}
