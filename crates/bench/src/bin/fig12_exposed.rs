//! Fig 12 (§5.2): exposed terminals — CMAP's headline 2x gain.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig12);
}
