//! Fig 13 (§5.3): two senders in range — CMAP discriminates.

use cmap_bench::{banner, medians_line, render_cdfs, Cli};
use cmap_experiments::in_range;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(50);
    banner(
        "Fig 13 — two senders in range of each other",
        "CMAP tracks CS-on where pairs conflict (~15%) and CS-off where concurrent wins (~18% tail)",
        &spec,
    );
    let curves = in_range::fig13(&spec);
    println!("{}", medians_line(&curves));
    println!();
    println!("{}", render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
}
