//! Fig 13 (§5.3): two senders in range — CMAP discriminates.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig13);
}
