//! Fig 14 (§5.4): hidden-interferer scatter and the 0.896 expectation.

use cmap_bench::{banner, Cli};
use cmap_experiments::hidden;

fn main() {
    let cli = Cli::parse();
    let mut spec = cli.spec(200);
    if cli.effort == cmap_bench::Effort::Full {
        spec.configs = cli.runs.unwrap_or(500); // the paper's 500 triples
    }
    banner(
        "Fig 14 — hidden interferers",
        "~8% of (link, interferer) samples in the hidden quadrant; expected CMAP normalised throughput ~0.90",
        &spec,
    );
    let out = hidden::fig14(&spec);
    println!(
        "hidden-interferer fraction: {:.3} (paper ~0.08)",
        out.hidden_fraction
    );
    println!(
        "expected CMAP normalised throughput: {:.3} (paper 0.896)",
        out.expected_cmap
    );
    println!();
    println!("{:>10} {:>12}", "min PRR", "norm tput");
    for p in &out.points {
        println!("{:>10.3} {:>12.3}", p.min_prr, p.normalized);
    }
}
