//! Fig 14 (§5.4): hidden-interferer scatter and the 0.896 expectation.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig14);
}
