//! Fig 19 (§5.6): header-or-trailer reception vs number of concurrent senders.

use cmap_bench::{banner, Cli, Effort};
use cmap_experiments::header_trailer;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(10);
    let per_k = match cli.effort {
        Effort::Quick => 2,
        _ => 5,
    };
    banner(
        "Fig 19 — header-or-trailer reception vs concurrent senders",
        "median stays high as concurrency grows; the 10th percentile drops sharply",
        &spec,
    );
    let rows = header_trailer::fig19(&spec, per_k);
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "senders", "mean", "median", "p10", "p25", "p75", "p90"
    );
    for r in &rows {
        let s = &r.summary;
        println!(
            "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            r.senders, s.mean, s.median, s.p10, s.p25, s.p75, s.p90
        );
    }
}
