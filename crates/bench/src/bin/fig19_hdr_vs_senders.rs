//! Fig 19 (§5.6): header-or-trailer reception vs number of concurrent senders.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig19);
}
