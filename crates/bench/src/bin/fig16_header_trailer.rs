//! Fig 16 (§5.5): header-or-trailer vs header-only reception per vpkt.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig16);
}
