//! Fig 16 (§5.5): header-or-trailer vs header-only reception per vpkt.

use cmap_bench::{banner, render_cdfs, Cli};
use cmap_experiments::exposed::Curve;
use cmap_experiments::header_trailer;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(25);
    banner(
        "Fig 16 — probability of receiving header and/or trailer",
        "header-or-trailer beats header-only; the gap is largest out of range; in range the either-rate is ~1",
        &spec,
    );
    let out = header_trailer::fig16(&spec);
    let curves = vec![
        Curve {
            label: "In-range, header".into(),
            samples: out.in_range_header,
        },
        Curve {
            label: "In-range, hdr/trl".into(),
            samples: out.in_range_either,
        },
        Curve {
            label: "OoR, header".into(),
            samples: out.out_of_range_header,
        },
        Curve {
            label: "OoR, hdr/trl".into(),
            samples: out.out_of_range_either,
        },
    ];
    for c in &curves {
        println!("{}: mean {:.3}", c.label, cmap_bench::mean(&c.samples));
    }
    println!();
    println!("{}", render_cdfs("rate", &curves, 0.0, 1.0, 21));
}
