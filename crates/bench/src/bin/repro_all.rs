//! Run every figure of the evaluation (the registry's repro subset) and
//! write a paper-vs-measured report plus a machine-readable suite manifest.
//!
//! ```text
//! cargo run --release -p cmap-bench --bin repro_all -- \
//!     [--quick|--full] [--seed N] [--out PATH] [--json PATH]
//! ```
//!
//! * stdout / `--out PATH`: the EXPERIMENTS-style text report,
//! * `--json PATH` (default `BENCH_repro.json`): a `SuiteReport` with one
//!   `RunReport` per figure, suite wall-clock, and an event-loop profile.
//!
//! The suite self-validates: every figure's report must contain its
//! declared required metrics, and any figure failure makes the run exit
//! nonzero — CI gates on both.

use std::fmt::Write as _;

use cmap_bench::figures::{profile_event_loop, registry, report_for, spec_block};
use cmap_bench::Cli;
use cmap_obs::{SuiteReport, TimingBlock};

fn main() {
    let cli = Cli::parse();
    let json_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_repro.json".to_string());

    let mut report = String::new();
    // cmap-lint: allow(wall-clock) — progress timing of the harness itself; never feeds simulation state
    let t0 = std::time::Instant::now();

    // The suite-level spec block: figures override configs/duration per
    // entry, so only the seed/effort fields are meaningful here.
    let mut suite_spec = spec_block(&cli, &cli.spec(0));
    suite_spec.configs = 0;
    let mut suite = SuiteReport::new("repro_all", suite_spec);
    let mut failures: Vec<String> = Vec::new();

    for fig in registry() {
        if !fig.in_repro() {
            continue;
        }
        let spec = fig.spec(&cli);
        // cmap-lint: allow(wall-clock) — per-figure wall timing for the report's timing block only
        let f0 = std::time::Instant::now();
        let out = fig.run(&cli);
        let wall_secs = f0.elapsed().as_secs_f64();

        let _ = writeln!(report, "\n### {}\n", fig.title());
        report.push_str(&out.text);
        for f in &out.failures {
            let _ = writeln!(report, "FAIL: {f}");
        }
        failures.extend(out.failures.iter().cloned());

        let r = report_for(&*fig, &cli, &spec, &out, Some(wall_secs));
        if let Err(e) = r.validate(fig.required_metrics()) {
            failures.push(e);
        }
        suite.figures.push(r);
        eprintln!("[{}s] {} done", t0.elapsed().as_secs(), fig.name());
    }

    let profile = profile_event_loop();
    eprint!("{}", profile.render_text());
    suite.profile = Some(profile);
    suite.timing = Some(TimingBlock {
        wall_secs: t0.elapsed().as_secs_f64(),
    });

    println!("{report}");
    if let Some(path) = &cli.out {
        std::fs::write(path, &report).expect("write text report");
        eprintln!("text report written to {path}");
    }
    std::fs::write(&json_path, suite.to_json(true)).expect("write suite report");
    eprintln!("suite report written to {json_path}");
    eprintln!("total: {}s", t0.elapsed().as_secs());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
