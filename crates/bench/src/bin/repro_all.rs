//! Run every figure of the evaluation (the registry's repro subset) and
//! write a paper-vs-measured report plus a machine-readable suite manifest.
//!
//! ```text
//! cargo run --release -p cmap-bench --bin repro_all -- \
//!     [--quick|--full] [--seed N] [--jobs N] [--out PATH] [--json PATH] \
//!     [--perf-out PATH] [--perf-baseline PATH]
//! ```
//!
//! * stdout / `--out PATH`: the EXPERIMENTS-style text report,
//! * `--json PATH` (default `BENCH_repro.json`): a `SuiteReport` with one
//!   `RunReport` per figure, suite wall-clock, and an event-loop profile,
//! * `--perf-out PATH` (default `BENCH_perf.json`): the tracked perf
//!   baseline (`cmap-perf/v3`) — per-figure wall-clock, events/sec,
//!   BER-table lookups and allocation counts, plus suite-level scheduler
//!   stats, BER-table identity/error, and pool utilization; with
//!   `--perf-baseline` pointing at a `--jobs 1` artifact it also carries
//!   `speedup_vs_jobs1` fields.
//!
//! The suite self-validates: every figure's report must contain its
//! declared required metrics, and any figure failure makes the run exit
//! nonzero — CI gates on both.

use std::fmt::Write as _;

use cmap_bench::figures::{profile_event_loop, registry, report_for, spec_block};
use cmap_bench::perf_baseline::{
    parse_serial_baseline, BerTablePerf, FigurePerf, PerfReport, SchedPerf,
};
use cmap_bench::Cli;
use cmap_obs::{SuiteReport, TimingBlock};

// This is the one instrumented binary: install the counting allocator so
// the perf artifact's `allocs` figures are real measurements, not zeros.
#[global_allocator]
static ALLOC: cmap_obs::alloc::CountingAlloc = cmap_obs::alloc::CountingAlloc;

fn main() {
    let cli = Cli::parse();
    let json_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_repro.json".to_string());
    let perf_path = cli
        .perf_out
        .clone()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let jobs = cli.effective_jobs();

    let mut report = String::new();
    // cmap-lint: allow(wall-clock) — progress timing of the harness itself; never feeds simulation state
    let t0 = std::time::Instant::now();
    cmap_sim::perf::reset();
    cmap_exec::reset_pool_stats();

    // The suite-level spec block: figures override configs/duration per
    // entry, so only the seed/effort fields are meaningful here.
    let mut suite_spec = spec_block(&cli, &cli.spec(0));
    suite_spec.configs = 0;
    let mut suite = SuiteReport::new("repro_all", suite_spec);
    let mut failures: Vec<String> = Vec::new();
    let mut perf_figures: Vec<FigurePerf> = Vec::new();

    for fig in registry() {
        if !fig.in_repro() {
            continue;
        }
        let spec = fig.spec(&cli);
        let engine0 = cmap_sim::perf::totals();
        let allocs0 = cmap_obs::alloc::allocations();
        // cmap-lint: allow(wall-clock) — per-figure wall timing for the report's timing block only
        let f0 = std::time::Instant::now();
        let out = fig.run(&cli);
        let wall_secs = f0.elapsed().as_secs_f64();
        let engine = cmap_sim::perf::totals();
        let allocs = cmap_obs::alloc::allocations() - allocs0;

        let _ = writeln!(report, "\n### {}\n", fig.title());
        report.push_str(&out.text);
        for f in &out.failures {
            let _ = writeln!(report, "FAIL: {f}");
        }
        failures.extend(out.failures.iter().cloned());

        let r = report_for(&*fig, &cli, &spec, &out, Some(wall_secs));
        if let Err(e) = r.validate(fig.required_metrics()) {
            failures.push(e);
        }
        suite.figures.push(r);
        perf_figures.push(FigurePerf {
            name: fig.name().to_string(),
            wall_secs,
            events: engine.events - engine0.events,
            ber_lookups: engine.ber_lookups - engine0.ber_lookups,
            allocs,
        });
        eprintln!("[{}s] {} done", t0.elapsed().as_secs(), fig.name());
    }

    let pool = cmap_exec::pool_stats();
    let mut profile = profile_event_loop();
    profile.set_pool(jobs, pool.batches, pool.jobs_executed, pool.busy_ns);
    eprint!("{}", profile.render_text());
    suite.profile = Some(profile);
    suite.timing = Some(TimingBlock {
        wall_secs: t0.elapsed().as_secs_f64(),
    });

    let baseline = cli.perf_baseline.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        let walls = parse_serial_baseline(&text);
        if walls.is_none() {
            eprintln!("warning: {path} is not a --jobs 1 perf artifact; skipping speedups");
        }
        walls
    });
    let engine_totals = cmap_sim::perf::totals();
    let perf = PerfReport {
        jobs,
        cores_detected: cmap_exec::default_jobs(),
        suite_wall_secs: t0.elapsed().as_secs_f64(),
        pool,
        sched: SchedPerf {
            cascades: engine_totals.sched_cascades,
            max_occupancy: engine_totals.sched_max_occupancy,
        },
        ber_table: BerTablePerf::current(),
        allocs: cmap_obs::alloc::allocations(),
        figures: perf_figures,
        baseline,
    };

    println!("{report}");
    if let Some(path) = &cli.out {
        std::fs::write(path, &report).expect("write text report");
        eprintln!("text report written to {path}");
    }
    std::fs::write(&json_path, suite.to_json(true)).expect("write suite report");
    eprintln!("suite report written to {json_path}");
    std::fs::write(&perf_path, perf.to_json()).expect("write perf artifact");
    eprintln!("perf artifact written to {perf_path}");
    if let Some(speedup) = perf.suite_speedup() {
        eprintln!("suite speedup vs --jobs 1: {speedup:.2}x at --jobs {jobs}");
    }
    eprintln!("total: {}s", t0.elapsed().as_secs());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
