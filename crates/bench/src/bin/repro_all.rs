//! Run every experiment of the evaluation and write a paper-vs-measured
//! report (the contents of EXPERIMENTS.md's results section).
//!
//! ```text
//! cargo run --release -p cmap-bench --bin repro_all -- [--quick|--full] [--out PATH]
//! ```

use std::fmt::Write as _;

use cmap_bench::{mean, median_of, render_cdfs, Cli, Effort};
use cmap_experiments::exposed::Curve;
use cmap_experiments::{ap, calibration, exposed, header_trailer, hidden, in_range, mesh};
use cmap_stats::{std_dev, Cdf};

fn main() {
    // --out is repro_all-specific; strip it before the common parser.
    let mut out_path: Option<String> = None;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out_path = args.next();
        } else {
            rest.push(a);
        }
    }
    // Re-inject remaining args for Cli::parse.
    let cli = {
        // Cli::parse reads the process args; emulate by a tiny local parse.
        let mut effort = Effort::Standard;
        let mut seed = 42u64;
        let mut runs = None;
        let mut it = rest.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => effort = Effort::Quick,
                "--full" => effort = Effort::Full,
                "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
                "--runs" => runs = it.next().and_then(|v| v.parse().ok()),
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        Cli { effort, seed, runs }
    };

    let mut report = String::new();
    // cmap-lint: allow(wall-clock) — progress timing of the harness itself; never feeds simulation state
    let t0 = std::time::Instant::now();

    // §4.2 calibration.
    {
        let spec = cli.spec(1);
        let c = calibration::single_link(&spec);
        section(&mut report, "§4.2 single-link calibration");
        wl(&mut report, format!(
            "| single-link throughput | paper: CMAP 5.04 vs 802.11 5.07 Mbit/s | measured: CMAP {:.2} vs 802.11 {:.2} Mbit/s |",
            c.cmap_mbps, c.dot11_mbps));
        eprintln!("[{}s] calibration done", t0.elapsed().as_secs());
    }

    // Fig 12.
    {
        let spec = cli.spec(50);
        let curves = exposed::fig12(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        let win1 = median_of(&curves, "CMAP, win=1");
        let blast = median_of(&curves, "CS off, no acks");
        section(&mut report, "Fig 12 — exposed terminals");
        wl(
            &mut report,
            format!(
            "| median CMAP/CS gain | paper ~2x | measured {:.2}x (CS {:.2}, CMAP {:.2} Mbit/s) |",
            cmap / cs, cs, cmap),
        );
        wl(
            &mut report,
            format!(
            "| stop-and-wait ablation | paper: win=1 only ~1.5x | measured {:.2}x ({:.2} Mbit/s) |",
            win1 / cs, win1),
        );
        wl(&mut report, format!(
            "| CS-off-no-acks envelope | paper: ~15% of pairs not truly exposed | measured median {blast:.2} Mbit/s |"));
        cdf_block(&mut report, "Mbit/s", &curves, 0.0, 12.5, 26);
        eprintln!("[{}s] fig12 done", t0.elapsed().as_secs());
    }

    // Fig 13.
    {
        let spec = cli.spec(50);
        let curves = in_range::fig13(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        section(&mut report, "Fig 13 — two senders in range");
        wl(&mut report, format!(
            "| CMAP vs status quo on mixed pairs | paper: CMAP matches CS where pairs conflict, tracks CS-off where concurrency wins | measured medians: CS {:.2}, CMAP {:.2} Mbit/s |",
            cs, cmap));
        cdf_block(&mut report, "Mbit/s", &curves, 0.0, 12.5, 26);
        eprintln!("[{}s] fig13 done", t0.elapsed().as_secs());
    }

    // Fig 14.
    {
        let mut spec = cli.spec(200);
        if cli.effort == Effort::Full {
            spec.configs = cli.runs.unwrap_or(500);
        }
        let out = hidden::fig14(&spec);
        section(&mut report, "Fig 14 — hidden interferers");
        wl(
            &mut report,
            format!(
                "| hidden-interferer fraction | paper ~8% | measured {:.1}% |",
                100.0 * out.hidden_fraction
            ),
        );
        wl(
            &mut report,
            format!(
                "| expected CMAP normalised throughput | paper 0.896 | measured {:.3} |",
                out.expected_cmap
            ),
        );
        eprintln!("[{}s] fig14 done", t0.elapsed().as_secs());
    }

    // Fig 15.
    {
        let spec = cli.spec(50);
        let curves = hidden::fig15(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        section(&mut report, "Fig 15 — hidden terminals");
        wl(&mut report, format!(
            "| CMAP vs status quo | paper: comparable (backoff prevents degradation) | measured CMAP/CS = {:.2}x (CS {:.2}, CMAP {:.2} Mbit/s) |",
            cmap / cs, cs, cmap));
        cdf_block(&mut report, "Mbit/s", &curves, 0.0, 12.5, 26);
        eprintln!("[{}s] fig15 done", t0.elapsed().as_secs());
    }

    // Fig 16.
    {
        let spec = cli.spec(25);
        let out = header_trailer::fig16(&spec);
        section(&mut report, "Fig 16 — header/trailer reception");
        wl(
            &mut report,
            format!(
                "| in-range either-rate | paper ~1 | measured mean {:.3} (header-only {:.3}) |",
                mean(&out.in_range_either),
                mean(&out.in_range_header)
            ),
        );
        wl(&mut report, format!(
            "| out-of-range either-rate | paper: trailer benefit largest here | measured mean {:.3} (header-only {:.3}) |",
            mean(&out.out_of_range_either), mean(&out.out_of_range_header)));
        eprintln!("[{}s] fig16 done", t0.elapsed().as_secs());
    }

    // Fig 17 + 18.
    {
        let spec = cli.spec(10);
        let per_n = if cli.effort == Effort::Quick { 3 } else { 10 };
        let out = ap::ap_sweep(&spec, 6, per_n);
        section(&mut report, "Fig 17 — AP aggregate throughput");
        for n in 3..=6 {
            let get = |l: &str| {
                out.aggregates
                    .iter()
                    .find(|(on, ol, _)| *on == n && ol == l)
                    .map(|(_, _, s)| (mean(s), std_dev(s)))
            };
            if let (Some((cs, cs_sd)), Some((cmap, cmap_sd))) = (get("CS, acks"), get("CMAP")) {
                wl(&mut report, format!(
                    "| N={n} | paper: CMAP +21%..47% over CS | measured CS {:.2}±{:.2}, CMAP {:.2}±{:.2} Mbit/s ({:+.0}%) |",
                    cs, cs_sd, cmap, cmap_sd, 100.0 * (cmap / cs - 1.0)));
            }
        }
        section(&mut report, "Fig 18 — per-sender throughput");
        let med = |l: &str| {
            out.per_sender
                .iter()
                .find(|(ol, _)| ol == l)
                .map(|(_, s)| Cdf::new(s.clone()).median())
                .unwrap_or(f64::NAN)
        };
        wl(&mut report, format!(
            "| median per-sender throughput | paper: 2.5 -> 4.6 Mbit/s (1.8x) | measured CS {:.2} -> CMAP {:.2} Mbit/s ({:.2}x) |",
            med("CS, acks"), med("CMAP"), med("CMAP") / med("CS, acks")));
        let curves: Vec<Curve> = out
            .per_sender
            .iter()
            .map(|(l, s)| Curve {
                label: l.clone(),
                samples: s.clone(),
            })
            .collect();
        cdf_block(&mut report, "Mbit/s", &curves, 0.0, 6.0, 25);
        eprintln!("[{}s] fig17/18 done", t0.elapsed().as_secs());
    }

    // Fig 19.
    {
        let spec = cli.spec(10);
        let per_k = if cli.effort == Effort::Quick { 2 } else { 5 };
        let rows = header_trailer::fig19(&spec, per_k);
        section(
            &mut report,
            "Fig 19 — header/trailer reception vs concurrency",
        );
        wl(
            &mut report,
            "| senders | mean | median | p10 | p90 | paper: median ~flat, p10 collapses |".into(),
        );
        for r in &rows {
            let s = &r.summary;
            wl(
                &mut report,
                format!(
                    "| {} | {:.3} | {:.3} | {:.3} | {:.3} | |",
                    r.senders, s.mean, s.median, s.p10, s.p90
                ),
            );
        }
        eprintln!("[{}s] fig19 done", t0.elapsed().as_secs());
    }

    // Fig 20.
    {
        let spec = cli.spec(25);
        let curves = exposed::fig20(&spec);
        section(&mut report, "Fig 20 — exposed terminals at 6/12/18 Mbit/s");
        for mbps in [6u64, 12, 18] {
            let med = |l: String| {
                curves
                    .iter()
                    .find(|c| c.label == l)
                    .map(|c| Cdf::new(c.samples.clone()).median())
            };
            if let (Some(cs), Some(cmap)) = (med(format!("CS@{mbps}")), med(format!("CMAP@{mbps}")))
            {
                wl(&mut report, format!(
                    "| @{mbps} Mbit/s | paper: gains persist, opportunities shrink with rate | measured CS {:.2}, CMAP {:.2} ({:.2}x) |",
                    cs, cmap, cmap / cs));
            }
        }
        eprintln!("[{}s] fig20 done", t0.elapsed().as_secs());
    }

    // §5.7 mesh.
    {
        let spec = cli.spec(10);
        let out = mesh::mesh(&spec, 3);
        let get = |l: &str| {
            out.aggregates
                .iter()
                .find(|(ol, _)| ol == l)
                .map(|(_, s)| mean(s))
                .unwrap_or(f64::NAN)
        };
        section(&mut report, "§5.7 — mesh content dissemination");
        wl(&mut report, format!(
            "| aggregate leaf throughput | paper: CMAP +52% over CS | measured CS {:.2}, CMAP {:.2} Mbit/s ({:+.0}%) |",
            get("CS, acks"), get("CMAP"), 100.0 * (get("CMAP") / get("CS, acks") - 1.0)));
        eprintln!("[{}s] mesh done", t0.elapsed().as_secs());
    }

    println!("{report}");
    if let Some(path) = out_path {
        std::fs::write(&path, &report).expect("write report");
        eprintln!("report written to {path}");
    }
    eprintln!("total: {}s", t0.elapsed().as_secs());
}

fn section(report: &mut String, title: &str) {
    let _ = writeln!(report, "\n### {title}\n");
}

fn wl(report: &mut String, line: String) {
    let _ = writeln!(report, "{line}");
}

fn cdf_block(report: &mut String, x: &str, curves: &[Curve], lo: f64, hi: f64, bins: usize) {
    let _ = writeln!(report, "\n```");
    let _ = write!(report, "{}", render_cdfs(x, curves, lo, hi, bins));
    let _ = writeln!(report, "```");
}
