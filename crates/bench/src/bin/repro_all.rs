//! Run every figure of the evaluation (the registry's repro subset) and
//! write a paper-vs-measured report plus a machine-readable suite manifest.
//!
//! ```text
//! cargo run --release -p cmap-bench --bin repro_all -- \
//!     [--quick|--full] [--seed N] [--jobs N] [--out PATH] [--json PATH] \
//!     [--perf-out PATH] [--perf-baseline PATH] [--resume]
//! ```
//!
//! * stdout / `--out PATH`: the EXPERIMENTS-style text report,
//! * `--json PATH` (default `BENCH_repro.json`): a `SuiteReport` with one
//!   `RunReport` per figure, suite wall-clock, and an event-loop profile,
//! * `--perf-out PATH` (default `BENCH_perf.json`): the tracked perf
//!   baseline (`cmap-perf/v4`) — per-figure wall-clock, events/sec,
//!   BER-table lookups and allocation counts, plus suite-level scheduler
//!   stats, BER-table identity/error, and pool utilization; with
//!   `--perf-baseline` pointing at a `--jobs 1` artifact it also carries
//!   `speedup_vs_jobs1` fields.
//!
//! **Crash safety.** Each completed figure's text section, report JSON and
//! perf numbers are written to `<json>.work/` through the atomic writer,
//! and recorded in a `cmap-manifest/v1` completion ledger. All final
//! artifacts are also written atomically, so a SIGKILL at any instant
//! leaves either the old bytes or complete new bytes. `--resume` restarts
//! an interrupted suite: figures whose work-dir artifacts are present and
//! hash-valid are spliced verbatim instead of re-run — the final text and
//! deterministic JSON come out byte-identical to an uninterrupted run.
//!
//! **Supervision.** A panicking figure no longer kills the suite: the
//! panic is caught, the quarantined cells (from `cmap_exec`'s supervised
//! pool) are recorded in the suite report's `failures` block, the
//! remaining figures run to completion, and the exit code is nonzero.
//!
//! The suite self-validates: every figure's report must contain its
//! declared required metrics, and any figure failure makes the run exit
//! nonzero — CI gates on both.

use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

use cmap_bench::figures::{profile_event_loop, registry, report_for, spec_block};
use cmap_bench::perf_baseline::{
    parse_serial_baseline, BerTablePerf, FigurePerf, FramePoolPerf, PerfReport, SchedPerf,
};
use cmap_bench::Cli;
use cmap_obs::artifact::{atomic_write, Manifest};
use cmap_obs::{FailedCell, FailureBlock, SuiteReport, TimingBlock};

// This is the one instrumented binary: install the counting allocator so
// the perf artifact's `allocs` figures are real measurements, not zeros.
#[global_allocator]
static ALLOC: cmap_obs::alloc::CountingAlloc = cmap_obs::alloc::CountingAlloc;

/// The three per-figure work-dir artifacts.
struct FigureArtifacts {
    /// Text-report section, exactly as a clean run would append it.
    text: String,
    /// `RunReport::to_json(true)` bytes.
    json: String,
    /// Perf numbers, in the work-dir text encoding.
    perf: FigurePerf,
}

fn text_name(fig: &str) -> String {
    format!("fig_{fig}.txt")
}
fn json_name(fig: &str) -> String {
    format!("fig_{fig}.json")
}
fn perf_name(fig: &str) -> String {
    format!("fig_{fig}.perf")
}

/// Encode per-figure perf numbers as work-dir text. The wall-clock is an
/// exact bit pattern so a resumed suite reproduces the float verbatim.
fn encode_perf(p: &FigurePerf) -> String {
    format!(
        "wall_bits {:016x}\nevents {}\nber_lookups {}\nallocs {}\n",
        p.wall_secs.to_bits(),
        p.events,
        p.ber_lookups,
        p.allocs
    )
}

/// Decode [`encode_perf`]'s output; `None` on any malformed line.
fn decode_perf(name: &str, text: &str) -> Option<FigurePerf> {
    let mut wall_bits = None;
    let mut events = None;
    let mut ber_lookups = None;
    let mut allocs = None;
    for line in text.lines() {
        let (key, value) = line.split_once(' ')?;
        match key {
            "wall_bits" => wall_bits = Some(u64::from_str_radix(value, 16).ok()?),
            "events" => events = Some(value.parse().ok()?),
            "ber_lookups" => ber_lookups = Some(value.parse().ok()?),
            "allocs" => allocs = Some(value.parse().ok()?),
            _ => return None,
        }
    }
    Some(FigurePerf {
        name: name.to_string(),
        wall_secs: f64::from_bits(wall_bits?),
        events: events?,
        ber_lookups: ber_lookups?,
        allocs: allocs?,
    })
}

/// Load a figure's completed artifacts from the work dir, verifying each
/// against the manifest. `None` means "not complete — run it".
fn load_completed(work: &Path, manifest: &Manifest, fig: &str) -> Option<FigureArtifacts> {
    let load = |name: String| -> Option<Vec<u8>> {
        let bytes = std::fs::read(work.join(&name)).ok()?;
        manifest.verify(&name, &bytes).then_some(bytes)
    };
    let text = String::from_utf8(load(text_name(fig))?).ok()?;
    let json = String::from_utf8(load(json_name(fig))?).ok()?;
    let perf_text = String::from_utf8(load(perf_name(fig))?).ok()?;
    let perf = decode_perf(fig, &perf_text)?;
    Some(FigureArtifacts { text, json, perf })
}

/// The manifest's run-identity line. Deliberately excludes `--jobs`: pool
/// width never changes artifact bytes, so resuming at a different width
/// is sound.
fn manifest_meta(cli: &Cli) -> String {
    format!(
        "suite=repro_all seed={} effort={} runs={}",
        cli.seed,
        cli.effort.label(),
        match cli.runs {
            Some(n) => n.to_string(),
            None => "default".to_string(),
        }
    )
}

/// Set up the work directory and completion manifest. On `--resume` an
/// existing manifest is honored if it parses and its meta line matches
/// this invocation; otherwise (and always without `--resume`) the work
/// dir is cleared and the suite starts from scratch.
fn init_work_dir(work: &Path, cli: &Cli) -> Manifest {
    let meta = manifest_meta(cli);
    if cli.resume {
        match std::fs::read_to_string(work.join("MANIFEST"))
            .map_err(|e| e.to_string())
            .and_then(|text| Manifest::parse(&text))
        {
            Ok(m) if m.meta == meta => {
                eprintln!("resuming from {} ({} artifacts)", work.display(), m.len());
                return m;
            }
            Ok(m) => {
                eprintln!(
                    "warning: work dir is from a different run ({} != {meta}); starting fresh",
                    m.meta
                );
            }
            Err(e) => {
                eprintln!(
                    "warning: no usable manifest in {} ({e}); starting fresh",
                    work.display()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(work);
    std::fs::create_dir_all(work).expect("create work dir");
    Manifest::new(&meta)
}

/// Persist one completed figure: three artifacts plus the updated
/// manifest, all atomically, manifest last — a crash between any two
/// writes leaves at worst an unreferenced file that a resume re-runs.
fn record_figure(work: &Path, manifest: &mut Manifest, fig: &str, arts: &FigureArtifacts) {
    let files = [
        (text_name(fig), arts.text.clone().into_bytes()),
        (json_name(fig), arts.json.clone().into_bytes()),
        (perf_name(fig), encode_perf(&arts.perf).into_bytes()),
    ];
    for (name, bytes) in &files {
        atomic_write(work.join(name), bytes).expect("write figure artifact");
        manifest.record(name, bytes);
    }
    atomic_write(work.join("MANIFEST"), manifest.to_text().as_bytes()).expect("write manifest");
}

fn main() {
    let cli = Cli::parse();
    let json_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_repro.json".to_string());
    let perf_path = cli
        .perf_out
        .clone()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let jobs = cli.effective_jobs();
    let work = PathBuf::from(format!("{json_path}.work"));
    let mut manifest = init_work_dir(&work, &cli);

    let mut report = String::new();
    // cmap-lint: allow(wall-clock) — progress timing of the harness itself; never feeds simulation state
    let t0 = std::time::Instant::now();
    cmap_sim::perf::reset();
    cmap_exec::reset_pool_stats();
    cmap_exec::reset_supervision_stats();
    let _ = cmap_exec::take_quarantined();

    // The suite-level spec block: figures override configs/duration per
    // entry, so only the seed/effort fields are meaningful here.
    let mut suite_spec = spec_block(&cli, &cli.spec(0));
    suite_spec.configs = 0;
    let mut suite = SuiteReport::new("repro_all", suite_spec);
    let mut failures: Vec<String> = Vec::new();
    let mut failed_cells: Vec<FailedCell> = Vec::new();
    let mut perf_figures: Vec<FigurePerf> = Vec::new();

    for fig in registry() {
        if !fig.in_repro() {
            continue;
        }

        if let Some(saved) = load_completed(&work, &manifest, fig.name()) {
            report.push_str(&saved.text);
            suite.push_raw(saved.json);
            perf_figures.push(saved.perf);
            eprintln!(
                "[{}s] {} restored from work dir",
                t0.elapsed().as_secs(),
                fig.name()
            );
            continue;
        }

        let spec = fig.spec(&cli);
        let engine0 = cmap_sim::perf::totals();
        let allocs0 = cmap_obs::alloc::allocations();
        // cmap-lint: allow(wall-clock) — per-figure wall timing for the report's timing block only
        let f0 = std::time::Instant::now();
        // Jobs the figure fans out through the pool get labelled
        // `<figure>[<index>]`; a panic anywhere in the run is caught so
        // the remaining figures still execute.
        cmap_exec::set_job_context(fig.name());
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| fig.run(&cli)));
        let wall_secs = f0.elapsed().as_secs_f64();
        let engine = cmap_sim::perf::totals();
        let allocs = cmap_obs::alloc::allocations() - allocs0;
        let quarantined = cmap_exec::take_quarantined();
        for q in &quarantined {
            failed_cells.push(FailedCell {
                figure: fig.name().to_string(),
                label: q.label.clone(),
                attempts: u64::from(q.attempts),
                error: q.error.clone(),
            });
        }

        let out = match run {
            Ok(out) => out,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                if quarantined.is_empty() {
                    failed_cells.push(FailedCell {
                        figure: fig.name().to_string(),
                        label: fig.name().to_string(),
                        attempts: 1,
                        error: msg.clone(),
                    });
                }
                failures.push(format!("{} panicked: {msg}", fig.name()));
                let _ = writeln!(report, "\n### {}\n\nFAIL: panicked: {msg}", fig.title());
                eprintln!("[{}s] {} FAILED: {msg}", t0.elapsed().as_secs(), fig.name());
                continue;
            }
        };

        let mut section = String::new();
        let _ = writeln!(section, "\n### {}\n", fig.title());
        section.push_str(&out.text);
        for f in &out.failures {
            let _ = writeln!(section, "FAIL: {f}");
        }
        report.push_str(&section);
        failures.extend(out.failures.iter().cloned());

        let r = report_for(&*fig, &cli, &spec, &out, Some(wall_secs));
        let mut complete = out.failures.is_empty() && quarantined.is_empty();
        if let Err(e) = r.validate(fig.required_metrics()) {
            failures.push(e);
            complete = false;
        }
        let fig_perf = FigurePerf {
            name: fig.name().to_string(),
            wall_secs,
            events: engine.events - engine0.events,
            ber_lookups: engine.ber_lookups - engine0.ber_lookups,
            allocs,
        };
        if complete {
            // Only clean, validated figures become resumable artifacts —
            // a resumed run must re-execute anything that failed.
            record_figure(
                &work,
                &mut manifest,
                fig.name(),
                &FigureArtifacts {
                    text: section,
                    json: r.to_json(true),
                    perf: fig_perf.clone(),
                },
            );
        }
        suite.push(r);
        perf_figures.push(fig_perf);
        eprintln!("[{}s] {} done", t0.elapsed().as_secs(), fig.name());
    }
    cmap_exec::set_job_context("");

    let supervision = cmap_exec::supervision_stats();
    suite.failures = Some(FailureBlock {
        panics: supervision.panics,
        retries: supervision.retries,
        quarantined: supervision.quarantined,
        cells: failed_cells.clone(),
    });

    let pool = cmap_exec::pool_stats();
    let mut profile = profile_event_loop();
    profile.set_pool(jobs, pool.batches, pool.jobs_executed, pool.busy_ns);
    eprint!("{}", profile.render_text());
    suite.profile = Some(profile);
    suite.timing = Some(TimingBlock {
        wall_secs: t0.elapsed().as_secs_f64(),
    });

    let baseline = cli.perf_baseline.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path).ok()?;
        let walls = parse_serial_baseline(&text);
        if walls.is_none() {
            eprintln!("warning: {path} is not a --jobs 1 perf artifact; skipping speedups");
        }
        walls
    });
    let engine_totals = cmap_sim::perf::totals();
    let perf = PerfReport {
        jobs,
        cores_detected: cmap_exec::default_jobs(),
        suite_wall_secs: t0.elapsed().as_secs_f64(),
        pool,
        sched: SchedPerf {
            cascades: engine_totals.sched_cascades,
            max_occupancy: engine_totals.sched_max_occupancy,
        },
        ber_table: BerTablePerf::current(),
        frame_pool: FramePoolPerf {
            high_water: engine_totals.pool_high_water,
            recycled: engine_totals.pool_recycled,
            bytes: engine_totals.pool_bytes,
        },
        allocs: cmap_obs::alloc::allocations(),
        figures: perf_figures,
        baseline,
    };

    println!("{report}");
    if let Some(path) = &cli.out {
        atomic_write(path, report.as_bytes()).expect("write text report");
        eprintln!("text report written to {path}");
    }
    atomic_write(&json_path, suite.to_json(true).as_bytes()).expect("write suite report");
    eprintln!("suite report written to {json_path}");
    atomic_write(&perf_path, perf.to_json().as_bytes()).expect("write perf artifact");
    eprintln!("perf artifact written to {perf_path}");
    if let Some(speedup) = perf.suite_speedup() {
        eprintln!("suite speedup vs --jobs 1: {speedup:.2}x at --jobs {jobs}");
    }
    eprintln!("total: {}s", t0.elapsed().as_secs());

    if !failures.is_empty() {
        eprintln!("suite completed with {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        for c in &failed_cells {
            eprintln!(
                "QUARANTINED: {} {} ({} attempts): {}",
                c.figure, c.label, c.attempts, c.error
            );
        }
        std::process::exit(1);
    }
}
