//! Fig 20 (§5.8): exposed terminals at 6, 12 and 18 Mbit/s.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig20);
}
