//! Fig 20 (§5.8): exposed terminals at 6, 12 and 18 Mbit/s.

use cmap_bench::{banner, medians_line, render_cdfs, Cli};
use cmap_experiments::exposed;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(25);
    banner(
        "Fig 20 — exposed terminals at higher bit-rates",
        "CMAP keeps its gains at 12 and 18 Mbit/s; opportunities shrink as the SINR requirement grows",
        &spec,
    );
    let curves = exposed::fig20(&spec);
    println!("{}", medians_line(&curves));
    for mbps in [6u64, 12, 18] {
        let med = |l: String| {
            curves
                .iter()
                .find(|c| c.label == l)
                .map(|c| cmap_stats::Cdf::new(c.samples.clone()).median())
        };
        if let (Some(cs), Some(cmap)) = (med(format!("CS@{mbps}")), med(format!("CMAP@{mbps}"))) {
            println!("@{mbps} Mbit/s: CMAP/CS = {:.2}x", cmap / cs);
        }
    }
    println!();
    println!("{}", render_cdfs("Mbit/s", &curves, 0.0, 25.0, 26));
}
