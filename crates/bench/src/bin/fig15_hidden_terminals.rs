//! Fig 15 (§5.5): hidden terminals — CMAP's backoff avoids degradation.

use cmap_bench::{banner, median_of, medians_line, render_cdfs, Cli};
use cmap_experiments::hidden;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(50);
    banner(
        "Fig 15 — two senders out of range (hidden terminals)",
        "CMAP comparable to the status quo; little mass above the single-pair rate",
        &spec,
    );
    let curves = hidden::fig15(&spec);
    println!("{}", medians_line(&curves));
    let cs = median_of(&curves, "CS, acks");
    let cmap = median_of(&curves, "CMAP");
    println!("CMAP/CS median ratio: {:.2} (paper ~1.0)", cmap / cs);
    println!();
    println!("{}", render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
}
