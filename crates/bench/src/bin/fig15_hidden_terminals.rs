//! Fig 15 (§5.5): hidden terminals — CMAP's backoff avoids degradation.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Fig15);
}
