//! Chaos soak: fault plans × seeds over the exposed-terminal topology.
//!
//! The robustness gauntlet behind the §4 safety argument: under node
//! churn, bursty channels, lockups, clock skew and frame corruption,
//! CMAP must degrade *gracefully* — no panics, no watchdog violations,
//! goodput within a stated bound of the 802.11 DCF baseline under the
//! same fault plan — and stay bit-deterministic (same seed + same plan
//! ⇒ byte-identical `Stats::snapshot()`).
//!
//! For every (plan, seed) this runs:
//!   1. CMAP under the plan, twice (snapshots must match byte-for-byte),
//!   2. 802.11 DCF under the same plan,
//!   3. a clean CMAP reference run.
//!
//! Bounds asserted per plan (mean aggregate goodput across seeds):
//!   * CMAP-under-faults ≥ 0.5 × DCF-under-faults,
//!   * CMAP-under-faults ≥ 0.25 × CMAP-clean.
//!
//! Exits nonzero on any violation, so CI can gate on it.

use cmap_bench::{mean, Cli, Effort};
use cmap_core::{CmapConfig, CmapMac};
use cmap_mac80211::{DcfConfig, DcfMac};
use cmap_sim::time::{secs, Time};
use cmap_sim::{FaultPlan, Medium, PhyConfig, World};

/// CMAP goodput under a fault plan must stay within this factor of the
/// DCF baseline under the *same* plan.
const CMAP_VS_DCF_MIN: f64 = 0.5;
/// ... and within this factor of the clean CMAP reference.
const FAULT_VS_CLEAN_MIN: f64 = 0.25;

const NODES: usize = 4;

/// The Fig 12 exposed-terminal topology: two pairs that can (and should)
/// run concurrently — the configuration where CMAP has the most to lose
/// when its conflict map degrades.
fn exposed_world(seed: u64) -> (World, Vec<u16>) {
    let phy = PhyConfig::default();
    let rss: &[(usize, usize, f64)] = &[
        (0, 1, -60.0),
        (2, 3, -60.0),
        (0, 2, -75.0),
        (0, 3, -93.0),
        (2, 1, -93.0),
        (1, 3, -95.0),
    ];
    let mut gains = vec![f64::NEG_INFINITY; NODES * NODES];
    for &(a, b, rss_dbm) in rss {
        gains[a * NODES + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * NODES + a] = rss_dbm - phy.tx_power_dbm;
    }
    let delays = vec![100u64; NODES * NODES];
    let medium = Medium::from_gains_db(NODES, &gains, &delays, &phy);
    let mut w = World::new(medium, phy, seed);
    let f1 = w.add_flow(0, 1, 1400);
    let f2 = w.add_flow(2, 3, 1400);
    (w, vec![f1, f2])
}

enum Proto {
    Cmap,
    Dcf,
}

struct RunOut {
    goodput: f64,
    violations: u64,
    snapshot: String,
}

fn run_one(proto: &Proto, plan: &FaultPlan, seed: u64, duration: Time) -> RunOut {
    let (mut w, flows) = exposed_world(seed);
    for n in 0..NODES {
        match proto {
            Proto::Cmap => w.set_mac(n, Box::new(CmapMac::new(CmapConfig::default()))),
            Proto::Dcf => w.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo()))),
        }
    }
    if !plan.is_clean() {
        w.install_faults(plan.clone());
    }
    w.run_until(duration);
    let from = duration / 4;
    let goodput = flows
        .iter()
        .map(|&f| {
            w.stats()
                .flow_throughput_mbps(f, w.flow(f).payload_len, from, duration)
        })
        .sum();
    RunOut {
        goodput,
        violations: w.watchdog_violations(),
        snapshot: w.stats().snapshot(),
    }
}

fn main() {
    let cli = Cli::parse();
    let (duration, seeds) = match cli.effort {
        Effort::Quick => (secs(4), 10),
        Effort::Standard => (secs(8), 10),
        Effort::Full => (secs(20), 25),
    };
    let seeds = cli.runs.unwrap_or(seeds);
    let plans = FaultPlan::canonical(NODES, duration);
    println!("==================================================================");
    println!("chaos soak — exposed-terminal topology, {NODES} nodes");
    println!(
        "{} fault plans x {seeds} seeds, {:.0}s runs, base seed {}",
        plans.len(),
        duration as f64 / 1e9,
        cli.seed,
    );
    println!(
        "bounds: cmap/dcf >= {CMAP_VS_DCF_MIN}, fault/clean >= {FAULT_VS_CLEAN_MIN}; \
         zero violations; byte-identical same-seed snapshots"
    );
    println!("------------------------------------------------------------------");

    let mut failures = 0u32;
    for (name, plan) in &plans {
        let mut cmap_fault = Vec::new();
        let mut dcf_fault = Vec::new();
        let mut cmap_clean = Vec::new();
        for i in 0..seeds {
            let seed = cli.seed + i as u64;
            let a = run_one(&Proto::Cmap, plan, seed, duration);
            let b = run_one(&Proto::Cmap, plan, seed, duration);
            let d = run_one(&Proto::Dcf, plan, seed, duration);
            let c = run_one(&Proto::Cmap, &FaultPlan::clean(), seed, duration);
            if a.snapshot != b.snapshot {
                println!("FAIL [{name}] seed {seed}: same-seed snapshots differ");
                failures += 1;
            }
            let viol = a.violations + b.violations + d.violations + c.violations;
            if viol > 0 {
                println!("FAIL [{name}] seed {seed}: {viol} watchdog violations");
                failures += 1;
            }
            cmap_fault.push(a.goodput);
            dcf_fault.push(d.goodput);
            cmap_clean.push(c.goodput);
        }
        let (cf, df, cc) = (mean(&cmap_fault), mean(&dcf_fault), mean(&cmap_clean));
        println!(
            "[{name:>14}] cmap {cf:5.2} | dcf {df:5.2} | cmap-clean {cc:5.2} Mbit/s \
             | cmap/dcf {:.2} | fault/clean {:.2}",
            cf / df.max(1e-9),
            cf / cc.max(1e-9),
        );
        if cf < CMAP_VS_DCF_MIN * df {
            println!("FAIL [{name}]: cmap under faults {cf:.2} < {CMAP_VS_DCF_MIN} x dcf {df:.2}");
            failures += 1;
        }
        if cf < FAULT_VS_CLEAN_MIN * cc {
            println!(
                "FAIL [{name}]: cmap under faults {cf:.2} < {FAULT_VS_CLEAN_MIN} x clean {cc:.2}"
            );
            failures += 1;
        }
    }
    println!("------------------------------------------------------------------");
    if failures > 0 {
        println!("chaos soak: {failures} FAILURES");
        std::process::exit(1);
    }
    println!("chaos soak: all invariants held");
}
