//! Chaos soak: fault plans × seeds over the exposed-terminal topology.
//!
//! The robustness gauntlet behind the §4 safety argument: under node
//! churn, bursty channels, lockups, clock skew and frame corruption,
//! CMAP must degrade *gracefully* — no panics, no watchdog violations,
//! goodput within a stated bound of the 802.11 DCF baseline under the
//! same fault plan — and stay bit-deterministic (same seed + same plan
//! ⇒ byte-identical `Stats::snapshot()`).
//!
//! Exits nonzero on any violation, so CI can gate on it.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::ChaosSoak);
}
