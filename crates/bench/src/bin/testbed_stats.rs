//! §5.1: the testbed's link population.

use cmap_bench::Cli;
use cmap_experiments::runner::{radio_env, Spec};
use cmap_phy::Rate;
use cmap_sim::PhyConfig;
use cmap_topo::{LinkMeasurements, Testbed};

fn main() {
    let cli = Cli::parse();
    let spec = Spec {
        testbed_seed: cli.seed,
        ..Spec::default()
    };
    let tb = Testbed::office_floor(spec.testbed_seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&PhyConfig::default()), Rate::R6, 1400);
    let c = lm.connectivity();
    println!(
        "§5.1 — testbed link population (seed {})",
        spec.testbed_seed
    );
    println!("paper: 2162 connected pairs; 68% PRR<0.1, 12% intermediate, 20% PRR=1;");
    println!("       mean degree 15.2, median 17");
    println!(
        "measured: {} connected pairs; {:.0}% weak, {:.0}% intermediate, {:.0}% perfect;",
        c.connected_pairs,
        100.0 * c.frac_weak,
        100.0 * c.frac_intermediate,
        100.0 * c.frac_perfect
    );
    println!(
        "          mean degree {:.1}, median {:.1}",
        c.mean_degree, c.median_degree
    );
    let mut potential = 0;
    let mut in_range = 0;
    for a in 0..tb.len() {
        for b in 0..tb.len() {
            if a == b {
                continue;
            }
            if lm.potential_link(a, b) {
                potential += 1;
            }
            if lm.in_range(a, b) {
                in_range += 1;
            }
        }
    }
    println!("potential transmission links: {potential}; in-range pairs: {in_range}");
}
