//! §5.1: the testbed's link population.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::TestbedStats);
}
