//! Ablation study of CMAP's design choices (DESIGN.md §4.3) on the three
//! canonical two-pair micro-topologies: exposed, conflicting, hidden.
//!
//! Variants: full CMAP, stop-and-wait window (Fig 12's ablation), no
//! trailers (Fig 16's motivation), no loss-rate backoff (Fig 15's
//! motivation), no interferer-list piggybacking on ACKs, and
//! message-in-message capture disabled at the PHY.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Ablations);
}
