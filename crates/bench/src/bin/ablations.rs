//! Ablation study of CMAP's design choices (DESIGN.md §4.3) on the three
//! canonical two-pair micro-topologies: exposed, conflicting, hidden.
//!
//! Variants: full CMAP, stop-and-wait window (Fig 12's ablation), no
//! trailers (Fig 16's motivation), no loss-rate backoff (Fig 15's
//! motivation), no interferer-list piggybacking on ACKs, and
//! message-in-message capture disabled at the PHY.

use cmap_bench::Cli;
use cmap_core::{CmapConfig, CmapMac};
use cmap_sim::time::secs;
use cmap_sim::{Medium, PhyConfig, World};

struct Scenario {
    name: &'static str,
    rss: Vec<(usize, usize, f64)>,
}

fn sym(v: &mut Vec<(usize, usize, f64)>, a: usize, b: usize, rss: f64) {
    v.push((a, b, rss));
    v.push((b, a, rss));
}

fn scenarios() -> Vec<Scenario> {
    let mut exposed = Vec::new();
    sym(&mut exposed, 0, 1, -60.0);
    sym(&mut exposed, 2, 3, -60.0);
    sym(&mut exposed, 0, 2, -75.0);
    sym(&mut exposed, 0, 3, -93.0);
    sym(&mut exposed, 2, 1, -93.0);
    sym(&mut exposed, 1, 3, -95.0);
    let mut conflicting = Vec::new();
    sym(&mut conflicting, 0, 1, -60.0);
    sym(&mut conflicting, 2, 3, -60.0);
    sym(&mut conflicting, 0, 2, -65.0);
    sym(&mut conflicting, 0, 3, -63.0);
    sym(&mut conflicting, 2, 1, -63.0);
    sym(&mut conflicting, 1, 3, -80.0);
    let mut hidden = Vec::new();
    sym(&mut hidden, 0, 1, -60.0);
    sym(&mut hidden, 2, 3, -60.0);
    sym(&mut hidden, 0, 3, -62.0);
    sym(&mut hidden, 2, 1, -62.0);
    sym(&mut hidden, 1, 3, -70.0);
    vec![
        Scenario {
            name: "exposed",
            rss: exposed,
        },
        Scenario {
            name: "conflicting",
            rss: conflicting,
        },
        Scenario {
            name: "hidden",
            rss: hidden,
        },
    ]
}

fn run(
    rss: &[(usize, usize, f64)],
    cfg: &CmapConfig,
    phy: PhyConfig,
    seed: u64,
    dur_s: u64,
) -> f64 {
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    for &(a, b, rss_dbm) in rss {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
    }
    let medium = Medium::from_gains_db(n, &gains, &vec![100; n * n], &phy);
    let mut w = World::new(medium, phy, seed);
    let f1 = w.add_flow(0, 1, 1400);
    let f2 = w.add_flow(2, 3, 1400);
    for node in 0..n {
        w.set_mac(node, Box::new(CmapMac::new(cfg.clone())));
    }
    w.run_until(secs(dur_s));
    let from = secs(dur_s * 2 / 5);
    w.stats().flow_throughput_mbps(f1, 1400, from, secs(dur_s))
        + w.stats().flow_throughput_mbps(f2, 1400, from, secs(dur_s))
}

fn main() {
    let cli = Cli::parse();
    let dur = match cli.effort {
        cmap_bench::Effort::Quick => 10,
        cmap_bench::Effort::Standard => 25,
        cmap_bench::Effort::Full => 60,
    };
    let variants: Vec<(&str, CmapConfig, PhyConfig)> = vec![
        ("CMAP (full)", CmapConfig::default(), PhyConfig::default()),
        (
            "win=1",
            CmapConfig::default().stop_and_wait(),
            PhyConfig::default(),
        ),
        (
            "no trailers",
            CmapConfig::default().without_trailers(),
            PhyConfig::default(),
        ),
        (
            "no backoff",
            CmapConfig::default().without_backoff(),
            PhyConfig::default(),
        ),
        (
            "no IL-in-ACKs",
            CmapConfig {
                il_in_acks: false,
                ..CmapConfig::default()
            },
            PhyConfig::default(),
        ),
        (
            "no MIM capture",
            CmapConfig::default(),
            PhyConfig {
                mim_capture: false,
                ..PhyConfig::default()
            },
        ),
        (
            "l_interf=0.25",
            CmapConfig {
                l_interf: 0.25,
                ..CmapConfig::default()
            },
            PhyConfig::default(),
        ),
        (
            "l_interf=0.75",
            CmapConfig {
                l_interf: 0.75,
                ..CmapConfig::default()
            },
            PhyConfig::default(),
        ),
    ];
    println!(
        "Aggregate Mbit/s over two saturated pairs ({dur}s runs, seed {}):\n",
        cli.seed
    );
    print!("{:<16}", "variant");
    for s in scenarios() {
        print!(" {:>12}", s.name);
    }
    println!();
    for (name, cfg, phy) in &variants {
        print!("{name:<16}");
        for s in scenarios() {
            let agg = run(&s.rss, cfg, phy.clone(), cli.seed ^ 0xAB1, dur);
            print!(" {agg:>12.2}");
        }
        println!();
    }
    println!("\nReference points: single link ~5.4; perfect exposed concurrency ~10.7.");
}
