//! Fig 17 (§5.6): AP topologies — aggregate throughput vs N.

use cmap_bench::{banner, Cli, Effort};
use cmap_experiments::ap;
use cmap_stats::{mean, std_dev};

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(10);
    let per_n = match cli.effort {
        Effort::Quick => 3,
        _ => 10, // the paper's 10 experiments per N
    };
    banner(
        "Fig 17 — N APs and N clients: mean aggregate throughput",
        "CMAP +21% (N=3) to +47% (N=4) over CS-on",
        &spec,
    );
    let out = ap::ap_sweep(&spec, 6, per_n);
    println!("{:>4} {:>18} {:>10} {:>8}", "N", "protocol", "mean", "sd");
    for (n, label, samples) in &out.aggregates {
        println!(
            "{n:>4} {label:>18} {:>10.2} {:>8.2}",
            mean(samples),
            std_dev(samples)
        );
    }
    for n in 3..=6 {
        let get = |l: &str| {
            out.aggregates
                .iter()
                .find(|(on, ol, _)| *on == n && ol == l)
                .map(|(_, _, s)| mean(s))
        };
        if let (Some(cs), Some(cmap)) = (get("CS, acks"), get("CMAP")) {
            println!("N={n}: CMAP/CS = {:.2}x", cmap / cs);
        }
    }
}
