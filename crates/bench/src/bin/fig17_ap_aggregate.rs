//! Fig 17 (§5.6): AP topologies — aggregate throughput vs N.
//!
//! Figs 17 and 18 share one `ap_sweep` run; both binaries wrap the
//! combined `fig17_18_ap` registry entry.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::ApFigure);
}
