//! §5.7: two-hop content-dissemination mesh.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Mesh);
}
