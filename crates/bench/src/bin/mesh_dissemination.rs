//! §5.7: two-hop content-dissemination mesh.

use cmap_bench::{banner, Cli};
use cmap_experiments::mesh;
use cmap_stats::mean;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(10);
    banner(
        "§5.7 — two-hop content dissemination mesh (S -> A1..A3 -> B1..B3)",
        "CMAP +52% aggregate leaf throughput over CS-on across 10 topologies",
        &spec,
    );
    let out = mesh::mesh(&spec, 3);
    let mut means = std::collections::HashMap::new();
    for (label, samples) in &out.aggregates {
        println!("{label}: per-topology aggregates {samples:?}");
        println!("{label}: mean {:.2} Mbit/s", mean(samples));
        means.insert(label.clone(), mean(samples));
    }
    if let (Some(cs), Some(cmap)) = (means.get("CS, acks"), means.get("CMAP")) {
        println!("CMAP/CS = {:.2}x (paper 1.52x)", cmap / cs);
    }
}
