//! Fig 18 (§5.6): per-sender throughput CDF across AP experiments.

use cmap_bench::{banner, render_cdfs, Cli, Effort};
use cmap_experiments::ap;
use cmap_experiments::exposed::Curve;
use cmap_stats::Cdf;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(10);
    let per_n = match cli.effort {
        Effort::Quick => 3,
        _ => 10,
    };
    banner(
        "Fig 18 — per-sender throughput in the AP experiments",
        "CMAP raises the median per-sender throughput 1.8x (2.5 -> 4.6 Mbit/s)",
        &spec,
    );
    let out = ap::ap_sweep(&spec, 6, per_n);
    let curves: Vec<Curve> = out
        .per_sender
        .iter()
        .map(|(l, s)| Curve {
            label: l.clone(),
            samples: s.clone(),
        })
        .collect();
    for c in &curves {
        println!(
            "{}: median {:.2} Mbit/s",
            c.label,
            Cdf::new(c.samples.clone()).median()
        );
    }
    let med = |l: &str| {
        Cdf::new(
            curves
                .iter()
                .find(|c| c.label == l)
                .unwrap()
                .samples
                .clone(),
        )
        .median()
    };
    println!(
        "CMAP/CS median ratio: {:.2}x (paper 1.8x)",
        med("CMAP") / med("CS, acks")
    );
    println!();
    println!("{}", render_cdfs("Mbit/s", &curves, 0.0, 6.0, 25));
}
