//! Fig 18 (§5.6): per-sender throughput CDF across AP experiments.
//!
//! Figs 17 and 18 share one `ap_sweep` run; both binaries wrap the
//! combined `fig17_18_ap` registry entry.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::ApFigure);
}
