//! City-scale sweep: events/sec and peak resident memory vs node count.
//!
//! Charts the sparse spatially-indexed medium against the node count —
//! 50 (testbed scale) through tens of thousands (city scale) — under
//! both CMAP and the 802.11 DCF baseline, recording each cell's
//! interference-pruning error bound in the report. `--runs N` narrows
//! the sweep to a single node count for per-process RSS accounting
//! (what the CI `scale-sweep` job does).

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::ScaleSweep);
}
