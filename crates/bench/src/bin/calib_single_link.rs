//! §4.2 calibration: single-link CMAP vs 802.11 throughput.

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::Calib);
}
