//! §4.2 calibration: single-link CMAP vs 802.11 throughput.

use cmap_bench::{banner, Cli};
use cmap_experiments::calibration;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(1);
    banner(
        "§4.2 — single-link calibration",
        "CMAP 5.04 Mbit/s vs 802.11 5.07 Mbit/s at the 6 Mbit/s rate",
        &spec,
    );
    let c = calibration::single_link(&spec);
    println!(
        "link {} -> {}: CMAP {:.2} Mbit/s | 802.11 (CS, acks) {:.2} Mbit/s | ratio {:.3}",
        c.link.0,
        c.link.1,
        c.cmap_mbps,
        c.dot11_mbps,
        c.cmap_mbps / c.dot11_mbps
    );
}
