//! Extension experiment: conflict-map convergence time and transient loss
//! vs. the interferer-list broadcast period (quantifying §7's "transient
//! packet loss before conflict map entries converge").

fn main() {
    cmap_bench::figures::figure_main(&cmap_bench::figures::ConvergenceSweep);
}
