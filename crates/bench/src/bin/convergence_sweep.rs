//! Extension experiment: conflict-map convergence time and transient loss
//! vs. the interferer-list broadcast period (quantifying §7's "transient
//! packet loss before conflict map entries converge").

use cmap_bench::{banner, Cli};
use cmap_experiments::convergence;
use cmap_stats::mean;

fn main() {
    let cli = Cli::parse();
    let spec = cli.spec(10);
    banner(
        "Convergence sweep (extension)",
        "the paper notes transient loss before convergence but does not quantify it",
        &spec,
    );
    let sweeps = convergence::sweep(&spec, &[250, 500, 1000, 2000, 4000]);
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "period ms", "conv rate", "mean conv s", "transient", "steady"
    );
    for s in &sweeps {
        let conv: Vec<f64> = s.points.iter().filter_map(|p| p.converged_at_s).collect();
        let transient: Vec<f64> = s.points.iter().map(|p| p.transient_mbps).collect();
        let steady: Vec<f64> = s.points.iter().map(|p| p.steady_mbps).collect();
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
            s.period_ms,
            conv.len() as f64 / s.points.len() as f64,
            if conv.is_empty() {
                f64::NAN
            } else {
                mean(&conv)
            },
            mean(&transient),
            mean(&steady),
        );
    }
    println!("\nFaster broadcasts converge sooner; steady state is insensitive");
    println!("(the ACK piggyback carries rule-1 entries regardless).");
}
