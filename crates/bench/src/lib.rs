//! # cmap-bench — figure regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§5), each printing
//! the measured series next to the paper's reported numbers:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `calib_single_link` | §4.2 single-link calibration |
//! | `fig12_exposed` | Fig 12 — exposed terminals |
//! | `fig13_in_range` | Fig 13 — two senders in range |
//! | `fig14_hidden_interferers` | Fig 14 — hidden-interferer scatter |
//! | `fig15_hidden_terminals` | Fig 15 — hidden terminals |
//! | `fig16_header_trailer` | Fig 16 — header/trailer reception |
//! | `fig17_ap_aggregate` | Fig 17 — AP aggregate throughput |
//! | `fig18_ap_per_sender` | Fig 18 — AP per-sender CDF |
//! | `fig19_hdr_vs_senders` | Fig 19 — reception vs concurrency |
//! | `fig20_bitrates` | Fig 20 — exposed terminals at 6/12/18 Mbit/s |
//! | `mesh_dissemination` | §5.7 — two-hop mesh |
//! | `testbed_stats` | §5.1 — link population |
//! | `repro_all` | everything above, written to EXPERIMENTS-style text |
//! | `chaos_soak` | robustness: fault plans × seeds, degradation bounds |
//!
//! Every binary is a thin wrapper around an entry of the scenario registry
//! in [`figures`] — the figure's parameters, run logic, printed text and
//! machine-readable metrics live in one place, and `repro_all` iterates the
//! same registry instead of duplicating it.
//!
//! All binaries accept `--quick` (shorter runs, fewer configurations),
//! `--full` (the paper's 100-second runs and full configuration counts),
//! `--seed N` (testbed seed), `--runs N` (configuration count) and
//! `--json PATH` (write a machine-readable [`cmap_obs::RunReport`]).
//! Criterion micro-benchmarks (`cargo bench`) live in `benches/`.

pub mod figures;
pub mod perf_baseline;

use cmap_experiments::exposed::Curve;
use cmap_experiments::Spec;
use cmap_sim::time::secs;
use cmap_stats::{Cdf, Series, Table};

/// Effort level selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Smoke-test scale.
    Quick,
    /// Default: statistically useful, minutes of wall-clock.
    Standard,
    /// The paper's scale (100 s runs, full configuration counts).
    Full,
}

impl Effort {
    /// Lower-case label for reports (`quick` / `standard` / `full`).
    pub fn label(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Standard => "standard",
            Effort::Full => "full",
        }
    }
}

/// The usage string every binary prints on `--help` or a parse error.
pub const USAGE: &str = "usage: <bin> [--quick|--full] [--seed N] [--runs N] [--jobs N] \
     [--json PATH] [--out PATH] [--perf-out PATH] [--perf-baseline PATH] [--resume]";

/// Why [`Cli::try_parse_from`] rejected a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` was requested: print usage, exit 0.
    Help,
    /// Malformed arguments: print the message plus usage, exit 2.
    Bad(String),
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Effort level.
    pub effort: Effort,
    /// Testbed seed.
    pub seed: u64,
    /// Override for the number of configurations, if given.
    pub runs: Option<usize>,
    /// Worker-pool width (`--jobs N`); `None` means "probe the machine"
    /// ([`effective_jobs`](Cli::effective_jobs)). Results are identical for
    /// every width — see `cmap_exec`.
    pub jobs: Option<usize>,
    /// Write a machine-readable report (`RunReport`, or `SuiteReport` for
    /// `repro_all`) to this path.
    pub json: Option<String>,
    /// `repro_all`: also write the text report to this path.
    pub out: Option<String>,
    /// `repro_all`: path for the perf artifact (default `BENCH_perf.json`).
    pub perf_out: Option<String>,
    /// `repro_all`: a `BENCH_perf.json` from a `--jobs 1` run of the same
    /// suite; enables `speedup_vs_jobs1` fields in the perf artifact.
    pub perf_baseline: Option<String>,
    /// `repro_all`: resume an interrupted suite — skip figures whose
    /// per-figure artifacts in the work directory are present and
    /// hash-valid against the completion manifest, and splice their saved
    /// reports into the final artifacts.
    pub resume: bool,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli {
            effort: Effort::Standard,
            seed: 42,
            runs: None,
            jobs: None,
            json: None,
            out: None,
            perf_out: None,
            perf_baseline: None,
            resume: false,
        }
    }
}

impl Cli {
    /// Parse an argument list (without the program name). Pure function so
    /// error paths are unit-testable; [`Cli::parse`] is the exiting shell.
    pub fn try_parse_from<I>(args: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = Cli::default();
        let mut args = args.into_iter();
        let value = |flag: &str, v: Option<String>| {
            v.ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.effort = Effort::Quick,
                "--full" => cli.effort = Effort::Full,
                "--seed" => {
                    cli.seed = value("--seed", args.next())?
                        .parse()
                        .map_err(|_| CliError::Bad("--seed needs a number".into()))?;
                }
                "--runs" => {
                    cli.runs = Some(
                        value("--runs", args.next())?
                            .parse()
                            .map_err(|_| CliError::Bad("--runs needs a number".into()))?,
                    );
                }
                "--jobs" => {
                    let n: usize = value("--jobs", args.next())?
                        .parse()
                        .map_err(|_| CliError::Bad("--jobs needs a number".into()))?;
                    if n == 0 {
                        return Err(CliError::Bad("--jobs must be >= 1".into()));
                    }
                    cli.jobs = Some(n);
                }
                "--json" => cli.json = Some(value("--json", args.next())?),
                "--out" => cli.out = Some(value("--out", args.next())?),
                "--perf-out" => cli.perf_out = Some(value("--perf-out", args.next())?),
                "--perf-baseline" => {
                    cli.perf_baseline = Some(value("--perf-baseline", args.next())?);
                }
                "--resume" => cli.resume = true,
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::Bad(format!("unknown flag {other}"))),
            }
        }
        Ok(cli)
    }

    /// Parse `std::env::args`; exits with usage on `--help` or bad flags.
    pub fn parse() -> Cli {
        match Cli::try_parse_from(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(CliError::Help) => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            Err(CliError::Bad(msg)) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The worker-pool width this invocation runs with: `--jobs N` if
    /// given, otherwise the machine's available parallelism. The probed
    /// value sizes the pool only — it is never serialized into report
    /// bytes, so the same seeds produce byte-identical artifacts on any
    /// machine (see `cmap_exec::default_jobs`).
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(cmap_exec::default_jobs)
    }

    /// Build the experiment spec for this CLI at a given default
    /// configuration count.
    pub fn spec(&self, default_configs: usize) -> Spec {
        let (duration, configs) = match self.effort {
            Effort::Quick => (secs(10), (default_configs / 4).max(3)),
            Effort::Standard => (secs(30), default_configs),
            Effort::Full => (secs(100), default_configs),
        };
        Spec {
            testbed_seed: self.seed,
            duration,
            configs: self.runs.unwrap_or(configs),
            jobs: self.effective_jobs(),
            ..Spec::default()
        }
    }
}

/// Render labelled sample sets as a CDF table over `[lo, hi]`.
pub fn render_cdfs(x_label: &str, curves: &[Curve], lo: f64, hi: f64, bins: usize) -> String {
    let mut table = Table::new(x_label);
    for c in curves {
        let cdf = Cdf::new(c.samples.clone());
        table.push(Series::new(c.label.clone(), cdf.points()));
    }
    // A CDF is a step function: interpolation on the grid is fine for a
    // textual rendering.
    table.render_grid(lo, hi, bins)
}

/// One line of per-curve medians.
pub fn medians_line(curves: &[Curve]) -> String {
    curves
        .iter()
        .map(|c| {
            format!(
                "{} median {:.2}",
                c.label,
                Cdf::new(c.samples.clone()).median()
            )
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Median of one labelled curve.
pub fn median_of(curves: &[Curve], label: &str) -> f64 {
    let c = curves
        .iter()
        .find(|c| c.label == label)
        .unwrap_or_else(|| panic!("missing curve {label}"));
    Cdf::new(c.samples.clone()).median()
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    cmap_stats::mean(xs)
}

/// Standard figure preamble.
pub fn banner(figure: &str, paper_claim: &str, spec: &Spec) {
    println!("==================================================================");
    println!("{figure}");
    println!("paper: {paper_claim}");
    println!(
        "spec: testbed seed {}, {} configurations, {:.0}s runs (measuring the last {:.0}s)",
        spec.testbed_seed,
        spec.configs,
        spec.duration as f64 / 1e9,
        (spec.duration - spec.measure_from()) as f64 / 1e9,
    );
    println!("------------------------------------------------------------------");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let cli = Cli::try_parse_from(args(&[])).unwrap();
        assert_eq!(cli.effort, Effort::Standard);
        assert_eq!(cli.seed, 42);
        assert!(cli.runs.is_none() && cli.json.is_none() && cli.out.is_none());

        let cli = Cli::try_parse_from(args(&[
            "--quick", "--seed", "7", "--runs", "9", "--json", "r.json", "--out", "r.md",
        ]))
        .unwrap();
        assert_eq!(cli.effort, Effort::Quick);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.runs, Some(9));
        assert_eq!(cli.json.as_deref(), Some("r.json"));
        assert_eq!(cli.out.as_deref(), Some("r.md"));

        let cli = Cli::try_parse_from(args(&[
            "--perf-out",
            "p.json",
            "--perf-baseline",
            "serial.json",
        ]))
        .unwrap();
        assert_eq!(cli.perf_out.as_deref(), Some("p.json"));
        assert_eq!(cli.perf_baseline.as_deref(), Some("serial.json"));
        assert!(!cli.resume);

        let cli = Cli::try_parse_from(args(&["--resume"])).unwrap();
        assert!(cli.resume);
        assert!(USAGE.contains("--resume"));
    }

    #[test]
    fn parse_errors_are_reportable_not_fatal() {
        let unknown = Cli::try_parse_from(args(&["--frobnicate"])).unwrap_err();
        assert_eq!(unknown, CliError::Bad("unknown flag --frobnicate".into()));

        let missing = Cli::try_parse_from(args(&["--seed"])).unwrap_err();
        assert_eq!(missing, CliError::Bad("--seed needs a value".into()));

        let non_numeric = Cli::try_parse_from(args(&["--runs", "many"])).unwrap_err();
        assert_eq!(non_numeric, CliError::Bad("--runs needs a number".into()));

        let bad_jobs = Cli::try_parse_from(args(&["--jobs", "zero"])).unwrap_err();
        assert_eq!(bad_jobs, CliError::Bad("--jobs needs a number".into()));

        let zero_jobs = Cli::try_parse_from(args(&["--jobs", "0"])).unwrap_err();
        assert_eq!(zero_jobs, CliError::Bad("--jobs must be >= 1".into()));

        let dangling = Cli::try_parse_from(args(&["--json"])).unwrap_err();
        assert_eq!(dangling, CliError::Bad("--json needs a value".into()));

        assert_eq!(
            Cli::try_parse_from(args(&["--help"])).unwrap_err(),
            CliError::Help
        );
        assert_eq!(
            Cli::try_parse_from(args(&["-h"])).unwrap_err(),
            CliError::Help
        );
    }

    #[test]
    fn spec_scales_with_effort() {
        let quick = Cli {
            effort: Effort::Quick,
            seed: 1,
            ..Cli::default()
        }
        .spec(50);
        let full = Cli {
            effort: Effort::Full,
            seed: 1,
            ..Cli::default()
        }
        .spec(50);
        assert!(quick.duration < full.duration);
        assert!(quick.configs < full.configs);
        assert_eq!(full.duration, secs(100));
    }

    #[test]
    fn runs_override_wins() {
        let cli = Cli {
            runs: Some(7),
            ..Cli::default()
        };
        assert_eq!(cli.spec(50).configs, 7);
    }

    #[test]
    fn jobs_flag_reaches_the_spec() {
        let cli = Cli::try_parse_from(args(&["--jobs", "4"])).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.effective_jobs(), 4);
        assert_eq!(cli.spec(50).jobs, 4);
        // Unpinned: the probe only sizes the pool, so any positive width
        // is acceptable (and never appears in report bytes).
        assert!(Cli::default().effective_jobs() >= 1);
    }

    #[test]
    fn effort_labels_are_stable() {
        assert_eq!(Effort::Quick.label(), "quick");
        assert_eq!(Effort::Standard.label(), "standard");
        assert_eq!(Effort::Full.label(), "full");
    }

    #[test]
    fn render_cdfs_produces_rows() {
        let curves = vec![
            Curve {
                label: "a".into(),
                samples: vec![1.0, 2.0, 3.0],
            },
            Curve {
                label: "b".into(),
                samples: vec![2.0, 4.0],
            },
        ];
        let text = render_cdfs("Mbit/s", &curves, 0.0, 5.0, 6);
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains('a') && text.contains('b'));
        assert!(medians_line(&curves).contains("median 2.00"));
        assert!((median_of(&curves, "a") - 2.0).abs() < 1e-12);
    }
}
