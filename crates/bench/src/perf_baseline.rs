//! The tracked perf baseline (`BENCH_perf.json`).
//!
//! `repro_all` measures each figure's wall-clock and pulls the engine's
//! process-wide totals (`cmap_sim::perf`) to report events/sec and the BER
//! memo-cache hit rate, plus the executor's pool utilization. The whole
//! file is wall-clock derived — it is a *performance* artifact, explicitly
//! excluded from determinism comparisons (those compare the suite report,
//! which never contains pool width or timings outside its `timing` block).
//!
//! Speedup tracking: pass `--perf-baseline PATH` pointing at a
//! `BENCH_perf.json` produced by a `--jobs 1` run of the same suite and the
//! report gains `speedup_vs_jobs1` fields (serial wall over this run's
//! wall). The baseline is parsed with a purpose-built scanner over the
//! format this module itself emits — no JSON dependency.
//!
//! This module does no timing itself: walls are fed in by the harness
//! shell, keeping the crate clean under cmap-lint's wall-clock rule.

use std::fmt::Write as _;

use cmap_obs::json::fmt_f64;

/// Schema tag stamped into the artifact.
pub const PERF_SCHEMA: &str = "cmap-perf/v2";

/// One figure's measured performance.
#[derive(Debug, Clone)]
pub struct FigurePerf {
    /// Registry name of the figure.
    pub name: String,
    /// Wall-clock seconds for the figure at the configured width.
    pub wall_secs: f64,
    /// Engine events processed during the figure (all runs, all workers).
    pub events: u64,
    /// BER memo-cache hits during the figure.
    pub ber_hits: u64,
    /// BER memo-cache misses during the figure.
    pub ber_misses: u64,
}

impl FigurePerf {
    /// Events per wall-clock second (0 for a zero-length wall).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Cache hit rate in [0, 1], or 0 when there were no lookups.
    pub fn ber_hit_rate(&self) -> f64 {
        let total = self.ber_hits + self.ber_misses;
        if total == 0 {
            0.0
        } else {
            self.ber_hits as f64 / total as f64
        }
    }
}

/// Wall-clock figures extracted from a serial (`--jobs 1`) baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineWalls {
    /// The baseline suite's total wall-clock seconds.
    pub suite_wall_secs: f64,
    /// `(figure_name, wall_secs)` in file order.
    pub figures: Vec<(String, f64)>,
}

impl BaselineWalls {
    /// Serial wall for one figure, if the baseline measured it.
    pub fn figure_wall(&self, name: &str) -> Option<f64> {
        self.figures
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, w)| w)
    }
}

/// The complete perf artifact.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Worker-pool width this suite ran with.
    pub jobs: usize,
    /// Cores the machine advertised (`cmap_exec::default_jobs`). CI reads
    /// this to skip the `speedup_vs_jobs1` expectation on single-core
    /// runners, where a pooled run cannot be faster than serial.
    pub cores_detected: usize,
    /// Total suite wall-clock seconds.
    pub suite_wall_secs: f64,
    /// Executor pool utilization over the whole suite.
    pub pool: cmap_exec::PoolStats,
    /// Per-figure measurements, in run order.
    pub figures: Vec<FigurePerf>,
    /// Serial walls to compute speedups against, when provided.
    pub baseline: Option<BaselineWalls>,
}

impl PerfReport {
    /// Suite-level speedup vs the serial baseline, if one was provided.
    pub fn suite_speedup(&self) -> Option<f64> {
        let b = self.baseline.as_ref()?;
        if self.suite_wall_secs > 0.0 {
            Some(b.suite_wall_secs / self.suite_wall_secs)
        } else {
            None
        }
    }

    /// Render the artifact. Key order is fixed; `speedup_vs_jobs1` fields
    /// are `null` when no baseline was provided.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), fmt_f64);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"{}\",\"jobs\":{},\"cores_detected\":{},\"suite_wall_secs\":{},\"speedup_vs_jobs1\":{}",
            PERF_SCHEMA,
            self.jobs,
            self.cores_detected,
            fmt_f64(self.suite_wall_secs),
            opt(self.suite_speedup()),
        );
        let _ = write!(
            s,
            ",\"pool\":{{\"batches\":{},\"jobs_executed\":{},\"busy_ns\":{},\"max_workers\":{}}}",
            self.pool.batches, self.pool.jobs_executed, self.pool.busy_ns, self.pool.max_workers,
        );
        s.push_str(",\"figures\":[");
        for (i, f) in self.figures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let speedup = self
                .baseline
                .as_ref()
                .and_then(|b| b.figure_wall(&f.name))
                .and_then(|serial| {
                    if f.wall_secs > 0.0 {
                        Some(serial / f.wall_secs)
                    } else {
                        None
                    }
                });
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"wall_secs\":{},\"events\":{},\"events_per_sec\":{},\
                 \"ber_hits\":{},\"ber_misses\":{},\"ber_cache_hit_rate\":{},\
                 \"speedup_vs_jobs1\":{}}}",
                f.name,
                fmt_f64(f.wall_secs),
                f.events,
                fmt_f64(f.events_per_sec()),
                f.ber_hits,
                f.ber_misses,
                fmt_f64(f.ber_hit_rate()),
                opt(speedup),
            );
        }
        s.push_str("]}");
        s
    }
}

/// Scan a `BENCH_perf.json` produced by this module for its walls.
///
/// Returns `None` unless the file carries the expected schema tag *and*
/// was produced by a `--jobs 1` run (anything else is not a serial
/// baseline, and a speedup against it would be meaningless).
pub fn parse_serial_baseline(text: &str) -> Option<BaselineWalls> {
    if !text.contains(&format!("\"schema\":\"{PERF_SCHEMA}\"")) {
        return None;
    }
    // Emitted as `"jobs":N,` — match the serial width textually.
    if !text.contains("\"jobs\":1,") {
        return None;
    }
    let suite_wall_secs = scan_num(text, "\"suite_wall_secs\":")?;
    let mut figures = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"name\":\"") {
        let tail = &rest[at + "\"name\":\"".len()..];
        let name_end = tail.find('"')?;
        let name = tail[..name_end].to_string();
        let wall = scan_num(tail, "\"wall_secs\":")?;
        figures.push((name, wall));
        rest = &tail[name_end..];
    }
    Some(BaselineWalls {
        suite_wall_secs,
        figures,
    })
}

/// The number right after the first occurrence of `key`.
fn scan_num(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let tail = &text[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(jobs: usize) -> PerfReport {
        PerfReport {
            jobs,
            cores_detected: 8,
            suite_wall_secs: 10.0,
            pool: cmap_exec::PoolStats {
                batches: 5,
                jobs_executed: 40,
                busy_ns: 9_000_000,
                max_workers: jobs as u64,
            },
            figures: vec![
                FigurePerf {
                    name: "fig12_exposed".into(),
                    wall_secs: 4.0,
                    events: 8_000,
                    ber_hits: 900,
                    ber_misses: 100,
                },
                FigurePerf {
                    name: "fig15_hidden".into(),
                    wall_secs: 6.0,
                    events: 12_000,
                    ber_hits: 0,
                    ber_misses: 0,
                },
            ],
            baseline: None,
        }
    }

    #[test]
    fn json_shape_and_meters() {
        let r = sample(2);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"cmap-perf/v2\",\"jobs\":2,\"cores_detected\":8,"));
        assert!(j.contains("\"events_per_sec\":2000"), "{j}");
        assert!(j.contains("\"ber_cache_hit_rate\":0.9"), "{j}");
        assert!(j.contains("\"speedup_vs_jobs1\":null"), "{j}");
        assert!(j.contains("\"max_workers\":2"), "{j}");
    }

    #[test]
    fn serial_baseline_round_trips_through_the_scanner() {
        let serial = sample(1);
        let walls = parse_serial_baseline(&serial.to_json()).expect("parses");
        assert!((walls.suite_wall_secs - 10.0).abs() < 1e-12);
        assert_eq!(walls.figures.len(), 2);
        let w = walls.figure_wall("fig12_exposed").expect("measured");
        assert!((w - 4.0).abs() < 1e-12);
        assert!(walls.figure_wall("no_such_figure").is_none());
    }

    #[test]
    fn speedups_appear_with_a_baseline() {
        let serial = sample(1);
        let walls = parse_serial_baseline(&serial.to_json()).unwrap();
        let mut parallel = sample(4);
        parallel.suite_wall_secs = 5.0;
        parallel.figures[0].wall_secs = 2.0;
        parallel.baseline = Some(walls);
        assert!((parallel.suite_speedup().unwrap() - 2.0).abs() < 1e-12);
        let j = parallel.to_json();
        assert!(j.contains("\"speedup_vs_jobs1\":2"), "{j}");
    }

    #[test]
    fn non_serial_files_are_rejected_as_baselines() {
        let parallel = sample(2);
        assert!(parse_serial_baseline(&parallel.to_json()).is_none());
        assert!(parse_serial_baseline("{\"schema\":\"other\"}").is_none());
        assert!(parse_serial_baseline("not json at all").is_none());
    }
}
