//! The tracked perf baseline (`BENCH_perf.json`).
//!
//! `repro_all` measures each figure's wall-clock and pulls the engine's
//! process-wide totals (`cmap_sim::perf`) to report events/sec, BER-table
//! lookup volume and scheduler statistics, plus the executor's pool
//! utilization and (when the binary installs `cmap_obs::alloc`) heap
//! allocation counts. The whole file is wall-clock derived — it is a
//! *performance* artifact, explicitly excluded from determinism comparisons
//! (those compare the suite report, which never contains pool width or
//! timings outside its `timing` block).
//!
//! # Schema migration: `cmap-perf/v2` → `cmap-perf/v3`
//!
//! v2's per-figure `ber_hits`/`ber_misses`/`ber_cache_hit_rate` fields are
//! **gone**: the memo cache they metered was removed in favour of the
//! precomputed BER interpolation table (`cmap_phy::table`), whose lookups
//! always succeed. v3 replaces them with per-figure `ber_lookups` and
//! `allocs`, and adds two suite-level blocks: `sched` (timing-wheel
//! cascades and peak occupancy) and `ber_table` (the table's version tag
//! and its *measured* max interpolation error — the artifact-visibility
//! rule for the error-bounded mode). Consumers pinned to v2 must not read
//! v3 files; the schema tag check in [`parse_serial_baseline`] enforces
//! the same for this module's own scanner.
//!
//! # Schema migration: `cmap-perf/v3` → `cmap-perf/v4`
//!
//! v4 adds one suite-level block, `frame_pool` — the engine's pooled
//! frame-buffer statistics (`cmap_sim::perf`): `high_water` (most slots
//! any world held claimed at once), `recycled` (slot frees across all
//! worlds) and `bytes` (largest parked-buffer footprint). The key is
//! deliberately distinct from the existing executor `pool` block, which
//! meters worker threads, not buffers. No field was removed or renamed,
//! but the tag still bumps: the alloc-regression gate in CI compares v4
//! `allocs` fields against a v4 baseline, and mixing in a v3 file (whose
//! figures predate the pooled allocator) would make that comparison lie.
//!
//! Speedup tracking: pass `--perf-baseline PATH` pointing at a
//! `BENCH_perf.json` produced by a `--jobs 1` run of the same suite and the
//! report gains `speedup_vs_jobs1` fields (serial wall over this run's
//! wall). The baseline is parsed with a purpose-built scanner over the
//! format this module itself emits — no JSON dependency.
//!
//! This module does no timing itself: walls are fed in by the harness
//! shell, keeping the crate clean under cmap-lint's wall-clock rule.

use std::fmt::Write as _;

use cmap_obs::json::fmt_f64;

/// Schema tag stamped into the artifact.
pub const PERF_SCHEMA: &str = "cmap-perf/v4";

/// One figure's measured performance.
#[derive(Debug, Clone)]
pub struct FigurePerf {
    /// Registry name of the figure.
    pub name: String,
    /// Wall-clock seconds for the figure at the configured width.
    pub wall_secs: f64,
    /// Engine events processed during the figure (all runs, all workers).
    pub events: u64,
    /// BER interpolation-table lookups during the figure.
    pub ber_lookups: u64,
    /// Heap allocations during the figure (0 when the running binary did
    /// not install the counting allocator).
    pub allocs: u64,
}

impl FigurePerf {
    /// Events per wall-clock second (0 for a zero-length wall).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Scheduler (timing-wheel) statistics over the whole suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedPerf {
    /// Events re-filed from an upper wheel level during cascades.
    pub cascades: u64,
    /// Largest pending-event count any world reached.
    pub max_occupancy: u64,
}

/// The BER table's identity and measured accuracy, recorded so the
/// error-bounded approximation is visible in the artifact it influenced.
#[derive(Debug, Clone)]
pub struct BerTablePerf {
    /// Version tag of the table scheme (`cmap_phy::table::TABLE_VERSION`).
    pub version: &'static str,
    /// Grid nodes per rate.
    pub grid_points: usize,
    /// Measured max |table − direct| at construction.
    pub max_abs_err: f64,
}

impl BerTablePerf {
    /// Snapshot the shared table's identity and measured error.
    pub fn current() -> BerTablePerf {
        BerTablePerf {
            version: cmap_phy::table::TABLE_VERSION,
            grid_points: cmap_phy::table::GRID_POINTS,
            max_abs_err: cmap_phy::BerTable::shared().max_abs_err(),
        }
    }
}

/// Engine frame-pool statistics over the whole suite (new in v4). Distinct
/// from the executor `pool` block, which meters worker threads.
#[derive(Debug, Clone, Copy, Default)]
pub struct FramePoolPerf {
    /// Most pooled frame slots any world held claimed at once.
    pub high_water: u64,
    /// Pool slot recycle events (frees) across all worlds.
    pub recycled: u64,
    /// Largest parked-buffer footprint any world reached, in bytes.
    pub bytes: u64,
}

/// Wall-clock figures extracted from a serial (`--jobs 1`) baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineWalls {
    /// The baseline suite's total wall-clock seconds.
    pub suite_wall_secs: f64,
    /// `(figure_name, wall_secs)` in file order.
    pub figures: Vec<(String, f64)>,
}

impl BaselineWalls {
    /// Serial wall for one figure, if the baseline measured it.
    pub fn figure_wall(&self, name: &str) -> Option<f64> {
        self.figures
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, w)| w)
    }
}

/// The complete perf artifact.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Worker-pool width this suite ran with.
    pub jobs: usize,
    /// Cores the machine advertised (`cmap_exec::default_jobs`). CI reads
    /// this to skip the `speedup_vs_jobs1` expectation on single-core
    /// runners, where a pooled run cannot be faster than serial, and to
    /// refuse cross-runner-class events/sec comparisons.
    pub cores_detected: usize,
    /// Total suite wall-clock seconds.
    pub suite_wall_secs: f64,
    /// Executor pool utilization over the whole suite.
    pub pool: cmap_exec::PoolStats,
    /// Scheduler statistics over the whole suite.
    pub sched: SchedPerf,
    /// BER-table identity and measured error bound.
    pub ber_table: BerTablePerf,
    /// Engine frame-pool statistics over the whole suite.
    pub frame_pool: FramePoolPerf,
    /// Heap allocations over the whole suite (0 when not instrumented).
    pub allocs: u64,
    /// Per-figure measurements, in run order.
    pub figures: Vec<FigurePerf>,
    /// Serial walls to compute speedups against, when provided.
    pub baseline: Option<BaselineWalls>,
}

impl PerfReport {
    /// Suite-level speedup vs the serial baseline, if one was provided.
    pub fn suite_speedup(&self) -> Option<f64> {
        let b = self.baseline.as_ref()?;
        if self.suite_wall_secs > 0.0 {
            Some(b.suite_wall_secs / self.suite_wall_secs)
        } else {
            None
        }
    }

    /// Render the artifact. Key order is fixed; `speedup_vs_jobs1` fields
    /// are `null` when no baseline was provided.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), fmt_f64);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"{}\",\"jobs\":{},\"cores_detected\":{},\"suite_wall_secs\":{},\"speedup_vs_jobs1\":{}",
            PERF_SCHEMA,
            self.jobs,
            self.cores_detected,
            fmt_f64(self.suite_wall_secs),
            opt(self.suite_speedup()),
        );
        let _ = write!(
            s,
            ",\"pool\":{{\"batches\":{},\"jobs_executed\":{},\"busy_ns\":{},\"max_workers\":{}}}",
            self.pool.batches, self.pool.jobs_executed, self.pool.busy_ns, self.pool.max_workers,
        );
        let _ = write!(
            s,
            ",\"sched\":{{\"cascades\":{},\"max_occupancy\":{}}}",
            self.sched.cascades, self.sched.max_occupancy,
        );
        let _ = write!(
            s,
            ",\"ber_table\":{{\"version\":\"{}\",\"grid_points\":{},\"max_abs_err\":{}}}",
            self.ber_table.version,
            self.ber_table.grid_points,
            fmt_f64(self.ber_table.max_abs_err),
        );
        let _ = write!(
            s,
            ",\"frame_pool\":{{\"high_water\":{},\"recycled\":{},\"bytes\":{}}}",
            self.frame_pool.high_water, self.frame_pool.recycled, self.frame_pool.bytes,
        );
        let _ = write!(s, ",\"allocs\":{}", self.allocs);
        s.push_str(",\"figures\":[");
        for (i, f) in self.figures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let speedup = self
                .baseline
                .as_ref()
                .and_then(|b| b.figure_wall(&f.name))
                .and_then(|serial| {
                    if f.wall_secs > 0.0 {
                        Some(serial / f.wall_secs)
                    } else {
                        None
                    }
                });
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"wall_secs\":{},\"events\":{},\"events_per_sec\":{},\
                 \"ber_lookups\":{},\"allocs\":{},\"speedup_vs_jobs1\":{}}}",
                f.name,
                fmt_f64(f.wall_secs),
                f.events,
                fmt_f64(f.events_per_sec()),
                f.ber_lookups,
                f.allocs,
                opt(speedup),
            );
        }
        s.push_str("]}");
        s
    }
}

/// Scan a `BENCH_perf.json` produced by this module for its walls.
///
/// Returns `None` unless the file carries the expected schema tag *and*
/// was produced by a `--jobs 1` run (anything else is not a serial
/// baseline, and a speedup against it would be meaningless).
pub fn parse_serial_baseline(text: &str) -> Option<BaselineWalls> {
    if !text.contains(&format!("\"schema\":\"{PERF_SCHEMA}\"")) {
        return None;
    }
    // Emitted as `"jobs":N,` — match the serial width textually.
    if !text.contains("\"jobs\":1,") {
        return None;
    }
    let suite_wall_secs = scan_num(text, "\"suite_wall_secs\":")?;
    let mut figures = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"name\":\"") {
        let tail = &rest[at + "\"name\":\"".len()..];
        let name_end = tail.find('"')?;
        let name = tail[..name_end].to_string();
        let wall = scan_num(tail, "\"wall_secs\":")?;
        figures.push((name, wall));
        rest = &tail[name_end..];
    }
    Some(BaselineWalls {
        suite_wall_secs,
        figures,
    })
}

/// The number right after the first occurrence of `key`.
fn scan_num(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let tail = &text[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(jobs: usize) -> PerfReport {
        PerfReport {
            jobs,
            cores_detected: 8,
            suite_wall_secs: 10.0,
            pool: cmap_exec::PoolStats {
                batches: 5,
                jobs_executed: 40,
                busy_ns: 9_000_000,
                max_workers: jobs as u64,
            },
            sched: SchedPerf {
                cascades: 1234,
                max_occupancy: 77,
            },
            ber_table: BerTablePerf {
                version: "ber-table/v1",
                grid_points: 4097,
                max_abs_err: 0.0011,
            },
            frame_pool: FramePoolPerf {
                high_water: 12,
                recycled: 90_000,
                bytes: 24_576,
            },
            allocs: 5000,
            figures: vec![
                FigurePerf {
                    name: "fig12_exposed".into(),
                    wall_secs: 4.0,
                    events: 8_000,
                    ber_lookups: 1_000,
                    allocs: 3000,
                },
                FigurePerf {
                    name: "fig15_hidden".into(),
                    wall_secs: 6.0,
                    events: 12_000,
                    ber_lookups: 0,
                    allocs: 0,
                },
            ],
            baseline: None,
        }
    }

    #[test]
    fn json_shape_and_meters() {
        let r = sample(2);
        let j = r.to_json();
        assert!(j.starts_with("{\"schema\":\"cmap-perf/v4\",\"jobs\":2,\"cores_detected\":8,"));
        assert!(j.contains("\"events_per_sec\":2000"), "{j}");
        assert!(j.contains("\"ber_lookups\":1000"), "{j}");
        assert!(
            j.contains("\"sched\":{\"cascades\":1234,\"max_occupancy\":77}"),
            "{j}"
        );
        assert!(
            j.contains("\"ber_table\":{\"version\":\"ber-table/v1\",\"grid_points\":4097,"),
            "{j}"
        );
        assert!(
            j.contains("\"frame_pool\":{\"high_water\":12,\"recycled\":90000,\"bytes\":24576}"),
            "{j}"
        );
        assert!(j.contains("\"allocs\":5000"), "{j}");
        assert!(j.contains("\"speedup_vs_jobs1\":null"), "{j}");
        assert!(j.contains("\"max_workers\":2"), "{j}");
        // The v2 cache fields are really gone (migration note above).
        assert!(!j.contains("ber_cache_hit_rate"), "{j}");
        assert!(!j.contains("ber_hits"), "{j}");
    }

    #[test]
    fn live_table_snapshot_matches_the_shared_table() {
        let t = BerTablePerf::current();
        assert_eq!(t.version, cmap_phy::table::TABLE_VERSION);
        assert!(t.max_abs_err > 0.0 && t.max_abs_err < cmap_phy::table::ERR_BOUND);
    }

    #[test]
    fn serial_baseline_round_trips_through_the_scanner() {
        let serial = sample(1);
        let walls = parse_serial_baseline(&serial.to_json()).expect("parses");
        assert!((walls.suite_wall_secs - 10.0).abs() < 1e-12);
        assert_eq!(walls.figures.len(), 2);
        let w = walls.figure_wall("fig12_exposed").expect("measured");
        assert!((w - 4.0).abs() < 1e-12);
        assert!(walls.figure_wall("no_such_figure").is_none());
    }

    #[test]
    fn speedups_appear_with_a_baseline() {
        let serial = sample(1);
        let walls = parse_serial_baseline(&serial.to_json()).unwrap();
        let mut parallel = sample(4);
        parallel.suite_wall_secs = 5.0;
        parallel.figures[0].wall_secs = 2.0;
        parallel.baseline = Some(walls);
        assert!((parallel.suite_speedup().unwrap() - 2.0).abs() < 1e-12);
        let j = parallel.to_json();
        assert!(j.contains("\"speedup_vs_jobs1\":2"), "{j}");
    }

    #[test]
    fn non_serial_files_are_rejected_as_baselines() {
        let parallel = sample(2);
        assert!(parse_serial_baseline(&parallel.to_json()).is_none());
        // Artifacts from older schema eras are rejected by tag, serial or
        // not — a v3 baseline's alloc counts predate the pooled allocator.
        assert!(parse_serial_baseline(
            "{\"schema\":\"cmap-perf/v2\",\"jobs\":1,\"suite_wall_secs\":1}"
        )
        .is_none());
        assert!(parse_serial_baseline(
            "{\"schema\":\"cmap-perf/v3\",\"jobs\":1,\"suite_wall_secs\":1}"
        )
        .is_none());
        assert!(parse_serial_baseline("{\"schema\":\"other\"}").is_none());
        assert!(parse_serial_baseline("not json at all").is_none());
    }
}
