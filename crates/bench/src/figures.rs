//! The scenario registry: every figure/table of the evaluation as one
//! [`Figure`] implementation.
//!
//! A figure owns its parameters (spec scaling, per-N repetition counts),
//! its run logic, the text it prints, and the named metrics it reports —
//! the per-figure binaries and `repro_all` are both thin iterations over
//! [`registry`]. Each run yields a [`FigureOutput`] which [`figure_main`]
//! turns into stdout text plus an optional machine-readable
//! [`RunReport`] (`--json PATH`).
//!
//! Figures 17 and 18 share one expensive `ap_sweep` run, so the registry
//! models them as a single combined entry (`fig17_18_ap`): both binaries
//! wrap it, and `repro_all` runs the sweep once.

use std::fmt::Write as _;

use cmap_core::{CmapConfig, CmapMac};
use cmap_experiments::exposed::Curve;
use cmap_experiments::runner::radio_env;
use cmap_experiments::{
    ap, calibration, convergence, exposed, header_trailer, hidden, in_range, mesh, Spec,
};
use cmap_mac80211::{DcfConfig, DcfMac};
use cmap_obs::{LoopProfile, MetricValue, RunReport, SpecBlock, TimingBlock};
use cmap_phy::Rate;
use cmap_sim::time::secs;
use cmap_sim::{FaultPlan, MediumBuilder, PhyConfig, SparseStats, World};
use cmap_stats::{std_dev, Cdf};
use cmap_topo::{LinkMeasurements, Testbed};

use crate::{banner, mean, median_of, medians_line, render_cdfs, Cli, Effort};

/// What one figure run produced: printable text, named metrics, and (for
/// gating figures like the chaos soak) hard failures.
#[derive(Debug, Default)]
pub struct FigureOutput {
    /// The human-readable body (what the standalone binary prints after
    /// its banner).
    pub text: String,
    /// Named results, in insertion order (sorted at serialization).
    pub metrics: Vec<(String, MetricValue)>,
    /// Invariant violations; non-empty makes the wrapping binary (and
    /// `repro_all`) exit nonzero.
    pub failures: Vec<String>,
}

impl FigureOutput {
    fn new() -> FigureOutput {
        FigureOutput::default()
    }

    fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    fn metric(&mut self, key: impl Into<String>, value: impl Into<MetricValue>) {
        self.metrics.push((key.into(), value.into()));
    }
}

/// One registered figure/experiment of the evaluation.
pub trait Figure {
    /// Registry name; matches the wrapping binary (e.g. `fig12_exposed`).
    fn name(&self) -> &'static str;
    /// Banner heading.
    fn title(&self) -> &'static str;
    /// The paper's claim, printed under the banner.
    fn paper_claim(&self) -> &'static str;
    /// The experiment spec this figure runs under.
    fn spec(&self, cli: &Cli) -> Spec;
    /// Metric keys every report of this figure must contain.
    fn required_metrics(&self) -> &'static [&'static str];
    /// Whether `repro_all` includes this figure in its suite run. Gating
    /// and extension experiments (chaos soak, ablations, convergence
    /// sweep) keep their own binaries instead.
    fn in_repro(&self) -> bool {
        true
    }
    /// Run the figure.
    fn run(&self, cli: &Cli) -> FigureOutput;
}

/// Every registered figure, in suite order.
pub fn registry() -> Vec<Box<dyn Figure>> {
    vec![
        Box::new(Calib),
        Box::new(Fig12),
        Box::new(Fig13),
        Box::new(Fig14),
        Box::new(Fig15),
        Box::new(Fig16),
        Box::new(ApFigure),
        Box::new(Fig19),
        Box::new(Fig20),
        Box::new(Mesh),
        Box::new(TestbedStats),
        Box::new(ConvergenceSweep),
        Box::new(Ablations),
        Box::new(ChaosSoak),
        Box::new(ScaleSweep),
    ]
}

/// The report's spec block for a figure run.
pub fn spec_block(cli: &Cli, spec: &Spec) -> SpecBlock {
    SpecBlock {
        testbed_seed: spec.testbed_seed,
        run_seed: spec.run_seed,
        effort: cli.effort.label().to_string(),
        configs: spec.configs as u64,
        duration_s: spec.duration as f64 / 1e9,
        payload: spec.payload as u64,
    }
}

/// Assemble a [`RunReport`] from one figure run.
pub fn report_for(
    fig: &dyn Figure,
    cli: &Cli,
    spec: &Spec,
    out: &FigureOutput,
    wall_secs: Option<f64>,
) -> RunReport {
    let mut r = RunReport::new(fig.name(), fig.title(), spec_block(cli, spec));
    for (k, v) in &out.metrics {
        r.metric(k, v.clone());
    }
    r.timing = wall_secs.map(|wall_secs| TimingBlock { wall_secs });
    r
}

/// The shared `main` of every per-figure binary: parse, banner, run,
/// print, optionally write the `--json` report, exit nonzero on failures.
pub fn figure_main(fig: &dyn Figure) {
    let cli = Cli::parse();
    let spec = fig.spec(&cli);
    banner(fig.title(), fig.paper_claim(), &spec);
    // cmap-lint: allow(wall-clock) — harness-shell timing of the figure run; never feeds simulation state
    let t0 = std::time::Instant::now();
    let out = fig.run(&cli);
    let wall_secs = t0.elapsed().as_secs_f64();
    print!("{}", out.text);
    for f in &out.failures {
        println!("FAIL: {f}");
    }
    let report = report_for(fig, &cli, &spec, &out, Some(wall_secs));
    if let Err(e) = report.validate(fig.required_metrics()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = &cli.json {
        if let Err(e) = std::fs::write(path, report.to_json(true)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("report written to {path}");
    }
    if !out.failures.is_empty() {
        std::process::exit(1);
    }
}

/// Metric-key slug of a human label (`"CS, acks"` → `cs_acks`).
fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        let c = ch.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

// ---------------------------------------------------------------------------
// §4.2 calibration
// ---------------------------------------------------------------------------

/// §4.2 single-link calibration.
pub struct Calib;

impl Figure for Calib {
    fn name(&self) -> &'static str {
        "calib_single_link"
    }
    fn title(&self) -> &'static str {
        "§4.2 — single-link calibration"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP 5.04 Mbit/s vs 802.11 5.07 Mbit/s at the 6 Mbit/s rate"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(1)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["cmap_mbps", "dot11_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let c = calibration::single_link(&spec);
        let mut out = FigureOutput::new();
        out.line(format!(
            "link {} -> {}: CMAP {:.2} Mbit/s | 802.11 (CS, acks) {:.2} Mbit/s | ratio {:.3}",
            c.link.0,
            c.link.1,
            c.cmap_mbps,
            c.dot11_mbps,
            c.cmap_mbps / c.dot11_mbps
        ));
        out.metric("cmap_mbps", c.cmap_mbps);
        out.metric("dot11_mbps", c.dot11_mbps);
        out.metric("ratio", c.cmap_mbps / c.dot11_mbps);
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 12 — exposed terminals
// ---------------------------------------------------------------------------

/// Fig 12 (§5.2): exposed terminals — CMAP's headline 2x gain.
pub struct Fig12;

impl Figure for Fig12 {
    fn name(&self) -> &'static str {
        "fig12_exposed"
    }
    fn title(&self) -> &'static str {
        "Fig 12 — exposed terminals"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP ~2x over CS; ~15% of pairs not truly exposed; win=1 only ~1.5x"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(50)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["median_cs_mbps", "median_cmap_mbps", "gain_cmap_vs_cs"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let curves = exposed::fig12(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        let win1 = median_of(&curves, "CMAP, win=1");
        let blast = median_of(&curves, "CS off, no acks");
        let mut out = FigureOutput::new();
        out.line(medians_line(&curves));
        out.line(format!(
            "median gain: CMAP/CS = {:.2}x (paper ~2x), win1/CS = {:.2}x (paper ~1.5x)",
            cmap / cs,
            win1 / cs
        ));
        out.line("");
        out.text
            .push_str(&render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
        out.metric("median_cs_mbps", cs);
        out.metric("median_cmap_mbps", cmap);
        out.metric("median_win1_mbps", win1);
        out.metric("median_blast_mbps", blast);
        out.metric("gain_cmap_vs_cs", cmap / cs);
        out.metric("gain_win1_vs_cs", win1 / cs);
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 13 — two senders in range
// ---------------------------------------------------------------------------

/// Fig 13 (§5.3): two senders in range — CMAP discriminates.
pub struct Fig13;

impl Figure for Fig13 {
    fn name(&self) -> &'static str {
        "fig13_in_range"
    }
    fn title(&self) -> &'static str {
        "Fig 13 — two senders in range of each other"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP tracks CS-on where pairs conflict (~15%) and CS-off where concurrent wins (~18% tail)"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(50)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["median_cs_mbps", "median_cmap_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let curves = in_range::fig13(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        let mut out = FigureOutput::new();
        out.line(medians_line(&curves));
        out.line("");
        out.text
            .push_str(&render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
        out.metric("median_cs_mbps", cs);
        out.metric("median_cmap_mbps", cmap);
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 14 — hidden interferers
// ---------------------------------------------------------------------------

/// Fig 14 (§5.4): hidden-interferer scatter and the 0.896 expectation.
pub struct Fig14;

impl Figure for Fig14 {
    fn name(&self) -> &'static str {
        "fig14_hidden_interferers"
    }
    fn title(&self) -> &'static str {
        "Fig 14 — hidden interferers"
    }
    fn paper_claim(&self) -> &'static str {
        "~8% of (link, interferer) samples in the hidden quadrant; expected CMAP normalised throughput ~0.90"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        let mut spec = cli.spec(200);
        if cli.effort == Effort::Full {
            spec.configs = cli.runs.unwrap_or(500); // the paper's 500 triples
        }
        spec
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["hidden_fraction", "expected_cmap"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let o = hidden::fig14(&spec);
        let mut out = FigureOutput::new();
        out.line(format!(
            "hidden-interferer fraction: {:.3} (paper ~0.08)",
            o.hidden_fraction
        ));
        out.line(format!(
            "expected CMAP normalised throughput: {:.3} (paper 0.896)",
            o.expected_cmap
        ));
        out.line("");
        out.line(format!("{:>10} {:>12}", "min PRR", "norm tput"));
        for p in &o.points {
            out.line(format!("{:>10.3} {:>12.3}", p.min_prr, p.normalized));
        }
        out.metric("hidden_fraction", o.hidden_fraction);
        out.metric("expected_cmap", o.expected_cmap);
        out.metric("samples", o.points.len());
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 15 — hidden terminals
// ---------------------------------------------------------------------------

/// Fig 15 (§5.5): hidden terminals — CMAP's backoff avoids degradation.
pub struct Fig15;

impl Figure for Fig15 {
    fn name(&self) -> &'static str {
        "fig15_hidden_terminals"
    }
    fn title(&self) -> &'static str {
        "Fig 15 — two senders out of range (hidden terminals)"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP comparable to the status quo; little mass above the single-pair rate"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(50)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["median_cs_mbps", "median_cmap_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let curves = hidden::fig15(&spec);
        let cs = median_of(&curves, "CS, acks");
        let cmap = median_of(&curves, "CMAP");
        let mut out = FigureOutput::new();
        out.line(medians_line(&curves));
        out.line(format!(
            "CMAP/CS median ratio: {:.2} (paper ~1.0)",
            cmap / cs
        ));
        out.line("");
        out.text
            .push_str(&render_cdfs("Mbit/s", &curves, 0.0, 12.5, 26));
        out.metric("median_cs_mbps", cs);
        out.metric("median_cmap_mbps", cmap);
        out.metric("ratio", cmap / cs);
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 16 — header/trailer reception
// ---------------------------------------------------------------------------

/// Fig 16 (§5.5): header-or-trailer vs header-only reception per vpkt.
pub struct Fig16;

impl Figure for Fig16 {
    fn name(&self) -> &'static str {
        "fig16_header_trailer"
    }
    fn title(&self) -> &'static str {
        "Fig 16 — probability of receiving header and/or trailer"
    }
    fn paper_claim(&self) -> &'static str {
        "header-or-trailer beats header-only; the gap is largest out of range; in range the either-rate is ~1"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(25)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["mean_in_range_either", "mean_oor_either"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let o = header_trailer::fig16(&spec);
        let curves = vec![
            Curve {
                label: "In-range, header".into(),
                samples: o.in_range_header,
            },
            Curve {
                label: "In-range, hdr/trl".into(),
                samples: o.in_range_either,
            },
            Curve {
                label: "OoR, header".into(),
                samples: o.out_of_range_header,
            },
            Curve {
                label: "OoR, hdr/trl".into(),
                samples: o.out_of_range_either,
            },
        ];
        let mut out = FigureOutput::new();
        for c in &curves {
            out.line(format!("{}: mean {:.3}", c.label, mean(&c.samples)));
        }
        out.line("");
        out.text
            .push_str(&render_cdfs("rate", &curves, 0.0, 1.0, 21));
        out.metric("mean_in_range_header", mean(&curves[0].samples));
        out.metric("mean_in_range_either", mean(&curves[1].samples));
        out.metric("mean_oor_header", mean(&curves[2].samples));
        out.metric("mean_oor_either", mean(&curves[3].samples));
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 17 + 18 — AP topologies (one shared sweep)
// ---------------------------------------------------------------------------

/// Figs 17+18 (§5.6): N APs and N clients — aggregate and per-sender
/// throughput from one `ap_sweep` run.
pub struct ApFigure;

impl ApFigure {
    fn per_n(cli: &Cli) -> usize {
        match cli.effort {
            Effort::Quick => 3,
            _ => 10, // the paper's 10 experiments per N
        }
    }
}

impl Figure for ApFigure {
    fn name(&self) -> &'static str {
        "fig17_18_ap"
    }
    fn title(&self) -> &'static str {
        "Figs 17/18 — N APs and N clients: aggregate and per-sender throughput"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP +21% (N=3) to +47% (N=4) over CS-on; median per-sender throughput 1.8x (2.5 -> 4.6 Mbit/s)"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(10)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["median_cs_mbps", "median_cmap_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let o = ap::ap_sweep(&spec, 6, ApFigure::per_n(cli));
        let mut out = FigureOutput::new();
        out.line(format!(
            "{:>4} {:>18} {:>10} {:>8}",
            "N", "protocol", "mean", "sd"
        ));
        for (n, label, samples) in &o.aggregates {
            out.line(format!(
                "{n:>4} {label:>18} {:>10.2} {:>8.2}",
                mean(samples),
                std_dev(samples)
            ));
        }
        for n in 3..=6 {
            let get = |l: &str| {
                o.aggregates
                    .iter()
                    .find(|(on, ol, _)| *on == n && ol == l)
                    .map(|(_, _, s)| mean(s))
            };
            if let (Some(cs), Some(cmap)) = (get("CS, acks"), get("CMAP")) {
                out.line(format!("N={n}: CMAP/CS = {:.2}x", cmap / cs));
                out.metric(format!("n{n}_cs_mbps"), cs);
                out.metric(format!("n{n}_cmap_mbps"), cmap);
                out.metric(format!("n{n}_gain"), cmap / cs);
            }
        }
        let curves: Vec<Curve> = o
            .per_sender
            .iter()
            .map(|(l, s)| Curve {
                label: l.clone(),
                samples: s.clone(),
            })
            .collect();
        out.line("");
        out.line("per-sender throughput across the AP experiments (Fig 18):");
        for c in &curves {
            out.line(format!(
                "{}: median {:.2} Mbit/s",
                c.label,
                Cdf::new(c.samples.clone()).median()
            ));
        }
        let med = |l: &str| {
            curves
                .iter()
                .find(|c| c.label == l)
                .map(|c| Cdf::new(c.samples.clone()).median())
                .unwrap_or(f64::NAN)
        };
        let (cs, cmap) = (med("CS, acks"), med("CMAP"));
        out.line(format!(
            "CMAP/CS median ratio: {:.2}x (paper 1.8x)",
            cmap / cs
        ));
        out.line("");
        out.text
            .push_str(&render_cdfs("Mbit/s", &curves, 0.0, 6.0, 25));
        out.metric("median_cs_mbps", cs);
        out.metric("median_cmap_mbps", cmap);
        out.metric("median_gain", cmap / cs);
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 19 — header/trailer reception vs concurrency
// ---------------------------------------------------------------------------

/// Fig 19 (§5.6): header-or-trailer reception vs concurrent senders.
pub struct Fig19;

impl Figure for Fig19 {
    fn name(&self) -> &'static str {
        "fig19_hdr_vs_senders"
    }
    fn title(&self) -> &'static str {
        "Fig 19 — header-or-trailer reception vs concurrent senders"
    }
    fn paper_claim(&self) -> &'static str {
        "median stays high as concurrency grows; the 10th percentile drops sharply"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(10)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["rows"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let per_k = match cli.effort {
            Effort::Quick => 2,
            _ => 5,
        };
        let rows = header_trailer::fig19(&spec, per_k);
        let mut out = FigureOutput::new();
        out.line(format!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "senders", "mean", "median", "p10", "p25", "p75", "p90"
        ));
        for r in &rows {
            let s = &r.summary;
            out.line(format!(
                "{:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.senders, s.mean, s.median, s.p10, s.p25, s.p75, s.p90
            ));
            out.metric(format!("s{}_median", r.senders), s.median);
            out.metric(format!("s{}_p10", r.senders), s.p10);
        }
        out.metric("rows", rows.len());
        out
    }
}

// ---------------------------------------------------------------------------
// Fig 20 — exposed terminals at higher bit-rates
// ---------------------------------------------------------------------------

/// Fig 20 (§5.8): exposed terminals at 6, 12 and 18 Mbit/s.
pub struct Fig20;

impl Figure for Fig20 {
    fn name(&self) -> &'static str {
        "fig20_bitrates"
    }
    fn title(&self) -> &'static str {
        "Fig 20 — exposed terminals at higher bit-rates"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP keeps its gains at 12 and 18 Mbit/s; opportunities shrink as the SINR requirement grows"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(25)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["at6_cs_mbps", "at6_cmap_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let curves = exposed::fig20(&spec);
        let mut out = FigureOutput::new();
        out.line(medians_line(&curves));
        for mbps in [6u64, 12, 18] {
            let med = |l: String| {
                curves
                    .iter()
                    .find(|c| c.label == l)
                    .map(|c| Cdf::new(c.samples.clone()).median())
            };
            if let (Some(cs), Some(cmap)) = (med(format!("CS@{mbps}")), med(format!("CMAP@{mbps}")))
            {
                out.line(format!("@{mbps} Mbit/s: CMAP/CS = {:.2}x", cmap / cs));
                out.metric(format!("at{mbps}_cs_mbps"), cs);
                out.metric(format!("at{mbps}_cmap_mbps"), cmap);
                out.metric(format!("at{mbps}_gain"), cmap / cs);
            }
        }
        out.line("");
        out.text
            .push_str(&render_cdfs("Mbit/s", &curves, 0.0, 25.0, 26));
        out
    }
}

// ---------------------------------------------------------------------------
// §5.7 mesh
// ---------------------------------------------------------------------------

/// §5.7: two-hop content-dissemination mesh.
pub struct Mesh;

impl Figure for Mesh {
    fn name(&self) -> &'static str {
        "mesh_dissemination"
    }
    fn title(&self) -> &'static str {
        "§5.7 — two-hop content dissemination mesh (S -> A1..A3 -> B1..B3)"
    }
    fn paper_claim(&self) -> &'static str {
        "CMAP +52% aggregate leaf throughput over CS-on across 10 topologies"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(10)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["cs_mbps", "cmap_mbps"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let o = mesh::mesh(&spec, 3);
        let get = |l: &str| {
            o.aggregates
                .iter()
                .find(|(ol, _)| ol == l)
                .map(|(_, s)| mean(s))
                .unwrap_or(f64::NAN)
        };
        let mut out = FigureOutput::new();
        for (label, samples) in &o.aggregates {
            out.line(format!("{label}: per-topology aggregates {samples:?}"));
            out.line(format!("{label}: mean {:.2} Mbit/s", mean(samples)));
        }
        let (cs, cmap) = (get("CS, acks"), get("CMAP"));
        out.line(format!("CMAP/CS = {:.2}x (paper 1.52x)", cmap / cs));
        out.metric("cs_mbps", cs);
        out.metric("cmap_mbps", cmap);
        out.metric("gain", cmap / cs);
        out
    }
}

// ---------------------------------------------------------------------------
// §5.1 testbed link population
// ---------------------------------------------------------------------------

/// §5.1: the testbed's link population (analysis only; no simulation).
pub struct TestbedStats;

impl Figure for TestbedStats {
    fn name(&self) -> &'static str {
        "testbed_stats"
    }
    fn title(&self) -> &'static str {
        "§5.1 — testbed link population"
    }
    fn paper_claim(&self) -> &'static str {
        "2162 connected pairs; 68% PRR<0.1, 12% intermediate, 20% PRR=1; mean degree 15.2, median 17"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        Spec {
            testbed_seed: cli.seed,
            ..Spec::default()
        }
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["connected_pairs", "mean_degree"]
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let tb = Testbed::office_floor(spec.testbed_seed);
        let lm = LinkMeasurements::analyze(&tb, &radio_env(&PhyConfig::default()), Rate::R6, 1400);
        let c = lm.connectivity();
        let mut out = FigureOutput::new();
        out.line(format!(
            "measured: {} connected pairs; {:.0}% weak, {:.0}% intermediate, {:.0}% perfect;",
            c.connected_pairs,
            100.0 * c.frac_weak,
            100.0 * c.frac_intermediate,
            100.0 * c.frac_perfect
        ));
        out.line(format!(
            "          mean degree {:.1}, median {:.1}",
            c.mean_degree, c.median_degree
        ));
        let mut potential = 0usize;
        let mut in_range = 0usize;
        for a in 0..tb.len() {
            for b in 0..tb.len() {
                if a == b {
                    continue;
                }
                if lm.potential_link(a, b) {
                    potential += 1;
                }
                if lm.in_range(a, b) {
                    in_range += 1;
                }
            }
        }
        out.line(format!(
            "potential transmission links: {potential}; in-range pairs: {in_range}"
        ));
        out.metric("connected_pairs", c.connected_pairs);
        out.metric("frac_weak", c.frac_weak);
        out.metric("frac_intermediate", c.frac_intermediate);
        out.metric("frac_perfect", c.frac_perfect);
        out.metric("mean_degree", c.mean_degree);
        out.metric("median_degree", c.median_degree);
        out.metric("potential_links", potential);
        out.metric("in_range_pairs", in_range);
        out
    }
}

// ---------------------------------------------------------------------------
// Convergence sweep (extension)
// ---------------------------------------------------------------------------

/// Extension: conflict-map convergence time vs IL broadcast period.
pub struct ConvergenceSweep;

impl Figure for ConvergenceSweep {
    fn name(&self) -> &'static str {
        "convergence_sweep"
    }
    fn title(&self) -> &'static str {
        "Convergence sweep (extension)"
    }
    fn paper_claim(&self) -> &'static str {
        "the paper notes transient loss before convergence but does not quantify it"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        cli.spec(10)
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["p1000_conv_rate"]
    }
    fn in_repro(&self) -> bool {
        false
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let spec = self.spec(cli);
        let sweeps = convergence::sweep(&spec, &[250, 500, 1000, 2000, 4000]);
        let mut out = FigureOutput::new();
        out.line(format!(
            "{:>10} {:>12} {:>12} {:>12} {:>10}",
            "period ms", "conv rate", "mean conv s", "transient", "steady"
        ));
        for s in &sweeps {
            let conv: Vec<f64> = s.points.iter().filter_map(|p| p.converged_at_s).collect();
            let transient: Vec<f64> = s.points.iter().map(|p| p.transient_mbps).collect();
            let steady: Vec<f64> = s.points.iter().map(|p| p.steady_mbps).collect();
            let rate = conv.len() as f64 / s.points.len() as f64;
            let mean_conv = if conv.is_empty() {
                f64::NAN
            } else {
                mean(&conv)
            };
            out.line(format!(
                "{:>10} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
                s.period_ms,
                rate,
                mean_conv,
                mean(&transient),
                mean(&steady),
            ));
            out.metric(format!("p{}_conv_rate", s.period_ms), rate);
            out.metric(format!("p{}_mean_conv_s", s.period_ms), mean_conv);
            out.metric(format!("p{}_transient_mbps", s.period_ms), mean(&transient));
            out.metric(format!("p{}_steady_mbps", s.period_ms), mean(&steady));
        }
        out.line("");
        out.line("Faster broadcasts converge sooner; steady state is insensitive");
        out.line("(the ACK piggyback carries rule-1 entries regardless).");
        out
    }
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4.3)
// ---------------------------------------------------------------------------

/// Ablation study of CMAP's design choices on the three canonical
/// two-pair micro-topologies: exposed, conflicting, hidden.
pub struct Ablations;

struct Scenario {
    name: &'static str,
    rss: Vec<(usize, usize, f64)>,
}

fn sym(v: &mut Vec<(usize, usize, f64)>, a: usize, b: usize, rss: f64) {
    v.push((a, b, rss));
    v.push((b, a, rss));
}

fn scenarios() -> Vec<Scenario> {
    let mut exposed = Vec::new();
    sym(&mut exposed, 0, 1, -60.0);
    sym(&mut exposed, 2, 3, -60.0);
    sym(&mut exposed, 0, 2, -75.0);
    sym(&mut exposed, 0, 3, -93.0);
    sym(&mut exposed, 2, 1, -93.0);
    sym(&mut exposed, 1, 3, -95.0);
    let mut conflicting = Vec::new();
    sym(&mut conflicting, 0, 1, -60.0);
    sym(&mut conflicting, 2, 3, -60.0);
    sym(&mut conflicting, 0, 2, -65.0);
    sym(&mut conflicting, 0, 3, -63.0);
    sym(&mut conflicting, 2, 1, -63.0);
    sym(&mut conflicting, 1, 3, -80.0);
    let mut hidden = Vec::new();
    sym(&mut hidden, 0, 1, -60.0);
    sym(&mut hidden, 2, 3, -60.0);
    sym(&mut hidden, 0, 3, -62.0);
    sym(&mut hidden, 2, 1, -62.0);
    sym(&mut hidden, 1, 3, -70.0);
    vec![
        Scenario {
            name: "exposed",
            rss: exposed,
        },
        Scenario {
            name: "conflicting",
            rss: conflicting,
        },
        Scenario {
            name: "hidden",
            rss: hidden,
        },
    ]
}

fn ablation_run(
    rss: &[(usize, usize, f64)],
    cfg: &CmapConfig,
    phy: PhyConfig,
    seed: u64,
    dur_s: u64,
) -> f64 {
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    for &(a, b, rss_dbm) in rss {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
    }
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    let mut w = World::builder().medium(medium).phy(phy).seed(seed).build();
    let f1 = w.add_flow(0, 1, 1400);
    let f2 = w.add_flow(2, 3, 1400);
    for node in 0..n {
        w.set_mac(node, Box::new(CmapMac::new(cfg.clone())));
    }
    w.run_until(secs(dur_s));
    let from = secs(dur_s * 2 / 5);
    w.stats().flow_throughput_mbps(f1, 1400, from, secs(dur_s))
        + w.stats().flow_throughput_mbps(f2, 1400, from, secs(dur_s))
}

impl Ablations {
    fn duration_s(cli: &Cli) -> u64 {
        match cli.effort {
            Effort::Quick => 10,
            Effort::Standard => 25,
            Effort::Full => 60,
        }
    }
}

impl Figure for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn title(&self) -> &'static str {
        "Ablations — CMAP design choices on exposed/conflicting/hidden micro-topologies"
    }
    fn paper_claim(&self) -> &'static str {
        "each mechanism (sliding window, trailers, backoff, IL-in-ACKs, MIM capture) earns its keep"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        Spec {
            testbed_seed: cli.seed,
            duration: secs(Ablations::duration_s(cli)),
            configs: 24, // 8 variants x 3 scenarios
            ..Spec::default()
        }
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["cmap_full_exposed_mbps"]
    }
    fn in_repro(&self) -> bool {
        false
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let dur = Ablations::duration_s(cli);
        let variants: Vec<(&str, CmapConfig, PhyConfig)> = vec![
            ("CMAP (full)", CmapConfig::default(), PhyConfig::default()),
            (
                "win=1",
                CmapConfig::default().stop_and_wait(),
                PhyConfig::default(),
            ),
            (
                "no trailers",
                CmapConfig::default().without_trailers(),
                PhyConfig::default(),
            ),
            (
                "no backoff",
                CmapConfig::default().without_backoff(),
                PhyConfig::default(),
            ),
            (
                "no IL-in-ACKs",
                CmapConfig {
                    il_in_acks: false,
                    ..CmapConfig::default()
                },
                PhyConfig::default(),
            ),
            (
                "no MIM capture",
                CmapConfig::default(),
                PhyConfig {
                    mim_capture: false,
                    ..PhyConfig::default()
                },
            ),
            (
                "l_interf=0.25",
                CmapConfig {
                    l_interf: 0.25,
                    ..CmapConfig::default()
                },
                PhyConfig::default(),
            ),
            (
                "l_interf=0.75",
                CmapConfig {
                    l_interf: 0.75,
                    ..CmapConfig::default()
                },
                PhyConfig::default(),
            ),
        ];
        let mut out = FigureOutput::new();
        out.line(format!(
            "Aggregate Mbit/s over two saturated pairs ({dur}s runs, seed {}):\n",
            cli.seed
        ));
        let mut header = format!("{:<16}", "variant");
        let scens = scenarios();
        for s in &scens {
            let _ = write!(header, " {:>12}", s.name);
        }
        out.line(header);
        // The (variant × scenario) grid is embarrassingly parallel; the
        // pool returns results in grid order, so rows/metrics below read
        // back deterministically at any `--jobs` width.
        let grid: Vec<(usize, usize)> = (0..variants.len())
            .flat_map(|v| (0..scens.len()).map(move |s| (v, s)))
            .collect();
        let aggs = cmap_exec::Pool::new(cli.effective_jobs()).map(&grid, |&(v, s)| {
            let (_, cfg, phy) = &variants[v];
            ablation_run(&scens[s].rss, cfg, phy.clone(), cli.seed ^ 0xAB1, dur)
        });
        for (v, (name, _, _)) in variants.iter().enumerate() {
            let mut row = format!("{name:<16}");
            for (si, s) in scens.iter().enumerate() {
                let agg = aggs[v * scens.len() + si];
                let _ = write!(row, " {agg:>12.2}");
                let key = match *name {
                    "CMAP (full)" => format!("cmap_full_{}_mbps", s.name),
                    other => format!("{}_{}_mbps", slug(other), s.name),
                };
                out.metric(key, agg);
            }
            out.line(row);
        }
        out.line("\nReference points: single link ~5.4; perfect exposed concurrency ~10.7.");
        out
    }
}

// ---------------------------------------------------------------------------
// Chaos soak (gating)
// ---------------------------------------------------------------------------

/// Robustness gauntlet: fault plans × seeds over the exposed-terminal
/// topology; violations land in `FigureOutput::failures`.
pub struct ChaosSoak;

/// CMAP goodput under a fault plan must stay within this factor of the
/// DCF baseline under the *same* plan.
const CMAP_VS_DCF_MIN: f64 = 0.5;
/// ... and within this factor of the clean CMAP reference.
const FAULT_VS_CLEAN_MIN: f64 = 0.25;

const SOAK_NODES: usize = 4;

/// The Fig 12 exposed-terminal topology: two pairs that can (and should)
/// run concurrently — the configuration where CMAP has the most to lose
/// when its conflict map degrades.
pub fn exposed_world(seed: u64) -> (World, Vec<u16>) {
    let phy = PhyConfig::default();
    let rss: &[(usize, usize, f64)] = &[
        (0, 1, -60.0),
        (2, 3, -60.0),
        (0, 2, -75.0),
        (0, 3, -93.0),
        (2, 1, -93.0),
        (1, 3, -95.0),
    ];
    let mut gains = vec![f64::NEG_INFINITY; SOAK_NODES * SOAK_NODES];
    for &(a, b, rss_dbm) in rss {
        gains[a * SOAK_NODES + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * SOAK_NODES + a] = rss_dbm - phy.tx_power_dbm;
    }
    let delays = vec![100u64; SOAK_NODES * SOAK_NODES];
    let medium = MediumBuilder::new(&phy)
        .gains_db(SOAK_NODES, &gains, &delays)
        .build();
    let mut w = World::builder().medium(medium).phy(phy).seed(seed).build();
    let f1 = w.add_flow(0, 1, 1400);
    let f2 = w.add_flow(2, 3, 1400);
    (w, vec![f1, f2])
}

enum Proto {
    Cmap,
    Dcf,
}

struct SoakRun {
    goodput: f64,
    violations: u64,
    snapshot: String,
}

fn soak_one(proto: &Proto, plan: &FaultPlan, seed: u64, duration: u64) -> SoakRun {
    let (mut w, flows) = exposed_world(seed);
    for n in 0..SOAK_NODES {
        match proto {
            Proto::Cmap => w.set_mac(n, Box::new(CmapMac::new(CmapConfig::default()))),
            Proto::Dcf => w.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo()))),
        }
    }
    if !plan.is_clean() {
        w.install_faults(plan.clone());
    }
    w.run_until(duration);
    let from = duration / 4;
    let goodput = flows
        .iter()
        .map(|&f| {
            w.stats()
                .flow_throughput_mbps(f, w.flow(f).payload_len, from, duration)
        })
        .sum();
    SoakRun {
        goodput,
        violations: w.watchdog_violations(),
        snapshot: w.stats().snapshot(),
    }
}

impl ChaosSoak {
    fn params(cli: &Cli) -> (u64, usize) {
        let (duration, seeds) = match cli.effort {
            Effort::Quick => (secs(4), 10),
            Effort::Standard => (secs(8), 10),
            Effort::Full => (secs(20), 25),
        };
        (duration, cli.runs.unwrap_or(seeds))
    }
}

impl Figure for ChaosSoak {
    fn name(&self) -> &'static str {
        "chaos_soak"
    }
    fn title(&self) -> &'static str {
        "Chaos soak — fault plans × seeds, exposed-terminal topology"
    }
    fn paper_claim(&self) -> &'static str {
        "graceful degradation: no panics, no watchdog violations, goodput within stated bounds of DCF"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        let (duration, seeds) = ChaosSoak::params(cli);
        Spec {
            testbed_seed: cli.seed,
            duration,
            configs: seeds,
            ..Spec::default()
        }
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["failures"]
    }
    fn in_repro(&self) -> bool {
        false
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let (duration, seeds) = ChaosSoak::params(cli);
        let plans = FaultPlan::canonical(SOAK_NODES, duration);
        let mut out = FigureOutput::new();
        out.line(format!(
            "{} fault plans x {seeds} seeds, {:.0}s runs, base seed {}",
            plans.len(),
            duration as f64 / 1e9,
            cli.seed,
        ));
        out.line(format!(
            "bounds: cmap/dcf >= {CMAP_VS_DCF_MIN}, fault/clean >= {FAULT_VS_CLEAN_MIN}; \
             zero violations; byte-identical same-seed snapshots"
        ));
        let pool = cmap_exec::Pool::new(cli.effective_jobs());
        for (name, plan) in &plans {
            let mut cmap_fault = Vec::new();
            let mut dcf_fault = Vec::new();
            let mut cmap_clean = Vec::new();
            // Each seed's four runs are independent of every other seed's;
            // the pool joins them back in seed order, so the text report
            // and failure list are identical at any `--jobs` width.
            let seed_list: Vec<u64> = (0..seeds).map(|i| cli.seed + i as u64).collect();
            let per_seed = pool.map(&seed_list, |&seed| {
                let a = soak_one(&Proto::Cmap, plan, seed, duration);
                let b = soak_one(&Proto::Cmap, plan, seed, duration);
                let d = soak_one(&Proto::Dcf, plan, seed, duration);
                let c = soak_one(&Proto::Cmap, &FaultPlan::clean(), seed, duration);
                (seed, a, b, d, c)
            });
            for (seed, a, b, d, c) in per_seed {
                if a.snapshot != b.snapshot {
                    out.failures
                        .push(format!("[{name}] seed {seed}: same-seed snapshots differ"));
                }
                let viol = a.violations + b.violations + d.violations + c.violations;
                if viol > 0 {
                    out.failures
                        .push(format!("[{name}] seed {seed}: {viol} watchdog violations"));
                }
                cmap_fault.push(a.goodput);
                dcf_fault.push(d.goodput);
                cmap_clean.push(c.goodput);
            }
            let (cf, df, cc) = (mean(&cmap_fault), mean(&dcf_fault), mean(&cmap_clean));
            out.line(format!(
                "[{name:>14}] cmap {cf:5.2} | dcf {df:5.2} | cmap-clean {cc:5.2} Mbit/s \
                 | cmap/dcf {:.2} | fault/clean {:.2}",
                cf / df.max(1e-9),
                cf / cc.max(1e-9),
            ));
            out.metric(format!("{}_cmap_mbps", slug(name)), cf);
            out.metric(format!("{}_dcf_mbps", slug(name)), df);
            out.metric(format!("{}_clean_mbps", slug(name)), cc);
            if cf < CMAP_VS_DCF_MIN * df {
                out.failures.push(format!(
                    "[{name}]: cmap under faults {cf:.2} < {CMAP_VS_DCF_MIN} x dcf {df:.2}"
                ));
            }
            if cf < FAULT_VS_CLEAN_MIN * cc {
                out.failures.push(format!(
                    "[{name}]: cmap under faults {cf:.2} < {FAULT_VS_CLEAN_MIN} x clean {cc:.2}"
                ));
            }
        }
        if out.failures.is_empty() {
            out.line("chaos soak: all invariants held");
        } else {
            out.line(format!("chaos soak: {} FAILURES", out.failures.len()));
        }
        out.metric("failures", out.failures.len());
        out
    }
}

// ---------------------------------------------------------------------------
// Event-loop self-profile
// ---------------------------------------------------------------------------

/// Step a canonical exposed-terminal CMAP world in slices, timing each
/// slice from the harness shell, and return the aggregated profile. The
/// engine itself never reads a clock — wall time is measured out here and
/// fed to [`LoopProfile::record_slice`]; the dispatch mix comes from the
/// engine's deterministic per-kind counters.
pub fn profile_event_loop() -> LoopProfile {
    let (mut w, _flows) = exposed_world(7);
    for n in 0..SOAK_NODES {
        w.set_mac(n, Box::new(CmapMac::new(CmapConfig::default())));
    }
    let mut profile = LoopProfile::new();
    let slice = cmap_sim::time::millis(100);
    let mut prev_events = 0u64;
    for i in 1..=20u64 {
        // cmap-lint: allow(wall-clock) — harness-side slice timing; feeds only the profile, never the simulation
        let t0 = std::time::Instant::now();
        w.run_until(i * slice);
        let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let events = w.events_processed();
        profile.record_slice(events - prev_events, wall_ns);
        prev_events = events;
    }
    profile.set_dispatch(&w.event_counts());
    profile
}

// ---------------------------------------------------------------------------
// City-scale sweep (extension)
// ---------------------------------------------------------------------------

/// Interference-pruning threshold for sparse scale cells, dB above the
/// per-link pruning floor. The recorded error bound is deliberately
/// worst-case — it charges every out-of-range pair as if transmitting
/// simultaneously at the tail gain — so it grows with N; the chart
/// records it so regressions in the pruning geometry are visible.
const SCALE_EPSILON_DB: f64 = 3.0;

/// Street-grid block spacing for generated scale cities, metres.
const SCALE_BLOCK_M: f64 = 30.0;

/// Saturated flows per cell. Constant offered load across N isolates the
/// medium/engine cost of topology scale in the events/sec column.
const SCALE_FLOWS: usize = 16;

/// What one scale cell (node count × MAC) measured.
struct ScaleCell {
    events: u64,
    wall_secs: f64,
    peak_rss_bytes: u64,
    delivered: u64,
}

/// Run one city-scale cell: generate the city, build the sparse medium,
/// saturate [`SCALE_FLOWS`] nearest-neighbor flows, run, and measure.
fn scale_cell(n: usize, proto: &Proto, seed: u64, duration: u64) -> (ScaleCell, SparseStats) {
    let phy = PhyConfig::default();
    let channel = cmap_topo::ChannelModel::default();
    let dep = cmap_topo::grid_city(n, SCALE_BLOCK_M, 5.0, channel, seed);
    // Evaluate out to where even a 3-sigma shadowing boost cannot lift a
    // link above the noise floor; everything beyond folds into the bound.
    let min_gain_db = phy.noise_floor_dbm - phy.tx_power_dbm;
    let medium = MediumBuilder::new(&phy)
        .epsilon_db(SCALE_EPSILON_DB)
        .positions(
            dep.positions.clone(),
            channel.eval_range_m(min_gain_db),
            channel.tail_gain_db(min_gain_db),
            dep.gain_fn(),
        )
        .build();
    let sparse = *medium
        .sparse_stats()
        .expect("positions build yields a sparse medium");
    cmap_obs::rss::reset_peak();
    let mut w = World::builder().medium(medium).phy(phy).seed(seed).build();
    let flows = SCALE_FLOWS.min(n / 2).max(1);
    let mut flow_ids = Vec::with_capacity(flows);
    for k in 0..flows {
        let src = cmap_sim::NodeId::new(k * n / flows);
        // Send to the strongest-gain neighbor; isolated sources (possible
        // under heavy shadowing at tiny N) simply contribute no flow.
        let dst = w
            .medium()
            .reachable(src)
            .iter()
            .copied()
            .max_by(|&a, &b| w.medium().gain(src, a).total_cmp(&w.medium().gain(src, b)));
        if let Some(dst) = dst {
            flow_ids.push(w.add_flow(src, dst, 1400));
        }
    }
    for i in 0..n {
        match proto {
            Proto::Cmap => w.set_mac(i, Box::new(CmapMac::new(CmapConfig::default()))),
            Proto::Dcf => w.set_mac(i, Box::new(DcfMac::new(DcfConfig::status_quo()))),
        }
    }
    // cmap-lint: allow(wall-clock) — harness-shell cell timing for the events/sec column; never feeds simulation state
    let t0 = std::time::Instant::now();
    w.run_until(duration);
    let wall_secs = t0.elapsed().as_secs_f64();
    let delivered = flow_ids
        .iter()
        .map(|&f| w.stats().flow(f).arrivals.len() as u64)
        .sum();
    let peak_rss_bytes = cmap_obs::rss::peak_rss_bytes()
        .or_else(cmap_obs::rss::current_rss_bytes)
        .unwrap_or(0);
    (
        ScaleCell {
            events: w.events_processed(),
            wall_secs,
            peak_rss_bytes,
            delivered,
        },
        sparse,
    )
}

/// City-scale sweep: events/sec and peak resident memory vs node count
/// under CMAP and DCF over the sparse spatially-indexed medium.
pub struct ScaleSweep;

impl ScaleSweep {
    fn node_counts(cli: &Cli) -> Vec<usize> {
        // `--runs N` narrows the sweep to one node count, which is how CI
        // charts per-N cells in separate processes (clean per-run RSS).
        if let Some(n) = cli.runs {
            return vec![n.max(2)];
        }
        match cli.effort {
            Effort::Quick => vec![50, 1_000, 10_000],
            Effort::Standard => vec![50, 1_000, 10_000, 30_000],
            // MAC addressing caps instantiated worlds at 65535 nodes.
            Effort::Full => vec![50, 1_000, 10_000, 60_000],
        }
    }

    fn duration(cli: &Cli) -> u64 {
        match cli.effort {
            Effort::Quick => cmap_sim::time::millis(200),
            Effort::Standard => secs(1),
            Effort::Full => secs(2),
        }
    }
}

impl Figure for ScaleSweep {
    fn name(&self) -> &'static str {
        "scale_sweep"
    }
    fn title(&self) -> &'static str {
        "Scale sweep — city-scale sparse medium vs node count"
    }
    fn paper_claim(&self) -> &'static str {
        "extension: sparse spatial medium sustains 10k+ node cities with a recorded interference error bound"
    }
    fn spec(&self, cli: &Cli) -> Spec {
        Spec {
            testbed_seed: cli.seed,
            duration: ScaleSweep::duration(cli),
            configs: ScaleSweep::node_counts(cli).len(),
            ..Spec::default()
        }
    }
    fn required_metrics(&self) -> &'static [&'static str] {
        &["scale.cells", "scale.error_bound_db_max"]
    }
    fn in_repro(&self) -> bool {
        false
    }
    fn run(&self, cli: &Cli) -> FigureOutput {
        let counts = ScaleSweep::node_counts(cli);
        let duration = ScaleSweep::duration(cli);
        let mut out = FigureOutput::new();
        out.line(format!(
            "{} node counts x 2 MACs, {:.1}s sim each, epsilon {SCALE_EPSILON_DB} dB, seed {}",
            counts.len(),
            duration as f64 / 1e9,
            cli.seed,
        ));
        out.line(format!(
            "{:>7} {:>5} {:>12} {:>12} {:>10} {:>9} {:>9} {:>12}",
            "nodes", "mac", "events", "events/s", "rss MiB", "links", "pruned", "err bound dB"
        ));
        // Cells run serially under the supervised executor: a panicking
        // cell is retried and quarantined instead of killing the sweep,
        // and one-at-a-time keeps per-cell peak-RSS readings honest.
        let pool = cmap_exec::Pool::new(1);
        let mut cells: Vec<(usize, Proto)> = Vec::new();
        for &n in &counts {
            cells.push((n, Proto::Cmap));
            cells.push((n, Proto::Dcf));
        }
        let seed = cli.seed;
        let results = pool.map(&cells, |(n, proto)| scale_cell(*n, proto, seed, duration));
        let mut err_bound_max = 0.0f64;
        for ((n, proto), (cell, sparse)) in cells.iter().zip(&results) {
            let mac = match proto {
                Proto::Cmap => "cmap",
                Proto::Dcf => "dcf",
            };
            let eps = cell.events as f64 / cell.wall_secs.max(1e-9);
            err_bound_max = err_bound_max.max(sparse.error_bound_db);
            out.line(format!(
                "{n:>7} {mac:>5} {:>12} {:>12.0} {:>10.1} {:>9} {:>9} {:>12.6}",
                cell.events,
                eps,
                cell.peak_rss_bytes as f64 / (1024.0 * 1024.0),
                sparse.links,
                sparse.pruned,
                sparse.error_bound_db,
            ));
            let k = format!("scale.n{n}.{mac}");
            out.metric(format!("{k}.events"), cell.events);
            out.metric(format!("{k}.events_per_sec"), eps);
            out.metric(format!("{k}.peak_rss_bytes"), cell.peak_rss_bytes);
            out.metric(format!("{k}.delivered"), cell.delivered);
            out.metric(format!("{k}.links"), sparse.links);
            out.metric(format!("{k}.pruned"), sparse.pruned);
            out.metric(format!("{k}.error_bound_db"), sparse.error_bound_db);
            if cell.events == 0 {
                out.failures
                    .push(format!("[n={n} {mac}] no events processed"));
            }
            if cell.delivered == 0 && *n >= 50 {
                out.failures
                    .push(format!("[n={n} {mac}] nothing delivered"));
            }
        }
        out.metric("scale.cells", cells.len());
        out.metric("scale.error_bound_db_max", err_bound_max);
        out.metric("scale.epsilon_db", SCALE_EPSILON_DB);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_repro_subset_is_stable() {
        let figs = registry();
        let names: Vec<&str> = figs.iter().map(|f| f.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            names.len(),
            "duplicate figure names: {names:?}"
        );
        let repro: Vec<&str> = figs
            .iter()
            .filter(|f| f.in_repro())
            .map(|f| f.name())
            .collect();
        assert_eq!(
            repro,
            [
                "calib_single_link",
                "fig12_exposed",
                "fig13_in_range",
                "fig14_hidden_interferers",
                "fig15_hidden_terminals",
                "fig16_header_trailer",
                "fig17_18_ap",
                "fig19_hdr_vs_senders",
                "fig20_bitrates",
                "mesh_dissemination",
                "testbed_stats",
            ]
        );
        for f in &figs {
            assert!(
                !f.required_metrics().is_empty(),
                "{} declares no required metrics",
                f.name()
            );
        }
    }

    #[test]
    fn testbed_stats_report_passes_its_own_validation() {
        let cli = Cli {
            effort: Effort::Quick,
            ..Cli::default()
        };
        let fig = TestbedStats;
        let spec = fig.spec(&cli);
        let out = fig.run(&cli);
        assert!(out.text.contains("connected pairs"));
        assert!(out.failures.is_empty());
        let report = report_for(&fig, &cli, &spec, &out, Some(0.5));
        report.validate(fig.required_metrics()).unwrap();
        let det = report.to_json(false);
        assert!(det.contains("\"figure\":\"testbed_stats\""));
        assert!(det.contains("\"effort\":\"quick\""));
        assert!(!det.contains("timing"));
        assert!(report.to_json(true).contains("\"timing\""));
    }

    #[test]
    fn slug_compresses_labels_to_metric_keys() {
        assert_eq!(slug("CMAP (full)"), "cmap_full");
        assert_eq!(slug("no IL-in-ACKs"), "no_il_in_acks");
        assert_eq!(slug("l_interf=0.25"), "l_interf_0_25");
        assert_eq!(slug("CS, acks"), "cs_acks");
    }
}
