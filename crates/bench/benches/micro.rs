//! Criterion micro-benchmarks for the simulator's hot paths and the core
//! CMAP data structures, plus an end-to-end simulation-rate benchmark.
//!
//! These don't reproduce paper figures (the `src/bin/*` binaries do); they
//! guard the performance the figure harness depends on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cmap_core::{CmapConfig, CmapMac};
use cmap_phy::{error_model, Rate};
use cmap_sim::event::{Event, Scheduler};
use cmap_sim::time::secs;
use cmap_sim::{MediumBuilder, PhyConfig, World};
use cmap_wire::{cmap, Frame, MacAddr};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("scheduler_10k_events", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for i in 0..10_000u64 {
                s.schedule(
                    (i * 7919) % 100_000,
                    Event::Timer {
                        node: 0.into(),
                        token: i,
                    },
                );
            }
            let mut last = 0;
            while let Some((t, _)) = s.pop() {
                last = t;
            }
            black_box(last)
        })
    });
}

fn bench_defer_table(c: &mut Criterion) {
    use cmap_core::defer_table::DeferTable;
    let mut table = DeferTable::new();
    for i in 0..100u16 {
        table.apply_rule1(
            MacAddr::from_node_index(i),
            MacAddr::from_node_index(i + 100),
            Rate::R6,
            1_000_000,
        );
        table.apply_rule2(
            MacAddr::from_node_index(i),
            MacAddr::from_node_index(i + 200),
            Rate::R6,
            1_000_000,
        );
    }
    c.bench_function("defer_table_lookup_200_entries", |b| {
        b.iter(|| {
            let mut hits = 0;
            for i in 0..100u16 {
                if table.must_defer(
                    MacAddr::from_node_index(i),
                    MacAddr::from_node_index(i + 100),
                    MacAddr::from_node_index(i + 300),
                    black_box(0),
                    None,
                ) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_per_model(c: &mut Criterion) {
    c.bench_function("per_1400B_sinr_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for db in 0..200 {
                let sinr = 10f64.powf(f64::from(db) / 100.0);
                acc += error_model::packet_success_prob(black_box(sinr), Rate::R6, 1400);
            }
            black_box(acc)
        })
    });
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let frame = Frame::CmapData(cmap::Data {
        src: MacAddr::from_node_index(1),
        dst: MacAddr::from_node_index(2),
        vpkt_seq: 7,
        index: 3,
        flow: 0,
        flow_seq: 1234,
        payload: vec![0xC5; 1400],
    });
    c.bench_function("wire_emit_parse_1400B", |b| {
        b.iter(|| {
            let bytes = frame.emit();
            black_box(Frame::parse(&bytes).expect("roundtrip"))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // One simulated second of an exposed-terminal pair under CMAP in a
    // 10-node world; reports wall time per simulated second.
    c.bench_function("sim_1s_exposed_cmap_10_nodes", |b| {
        b.iter(|| {
            let phy = PhyConfig::default();
            let n = 10;
            let mut gains = vec![-120.0; n * n];
            let mut set = |a: usize, bb: usize, rss: f64| {
                gains[a * n + bb] = rss - 15.0;
                gains[bb * n + a] = rss - 15.0;
            };
            set(0, 1, -60.0);
            set(2, 3, -60.0);
            set(0, 2, -75.0);
            set(0, 3, -93.0);
            set(2, 1, -93.0);
            for i in 0..n {
                gains[i * n + i] = f64::NEG_INFINITY;
            }
            let medium = MediumBuilder::new(&phy)
                .gains_db(n, &gains, &vec![100; n * n])
                .build();
            let mut w = World::builder().medium(medium).phy(phy).seed(1).build();
            w.add_flow(0, 1, 1400);
            w.add_flow(2, 3, 1400);
            for node in 0..n {
                w.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
            }
            w.run_until(secs(1));
            black_box(w.events_processed())
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_defer_table,
    bench_per_model,
    bench_wire_roundtrip,
    bench_end_to_end
);
criterion_main!(benches);
