//! The symbol layer: a lightweight item/symbol model of one source file.
//!
//! This is deliberately *not* a full Rust parser. It reuses the token
//! layer's lexer (comments and string contents blanked, line structure
//! preserved) and recovers just enough structure for interprocedural
//! analysis:
//!
//! * function items with names, parameter names, `impl` qualifier, and
//!   return presence — enough for call-edge resolution by name;
//! * per-function facts: call sites with per-argument identifier lists,
//!   local assignments, return-position identifiers, wall-clock/entropy
//!   token lines, panic token lines, shared-state read lines, and
//!   sink-shaped struct literals;
//! * `static` declarations with an interior-mutability classification.
//!
//! Everything is resolved by *name*, not by type — the same trade the
//! token layer makes (fast, std-only, no rustc) at the cost of
//! conservative approximation. [`crate::flow`] documents how each rule
//! compensates.

use crate::{c_len, find_word, lex, test_regions, wall_clock_token, Lexed};

/// A physical unit inferred from an identifier or function-name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// 802.11 slot counts.
    Slots,
    /// Decibel-milliwatts (absolute power).
    Dbm,
    /// Decibels (relative gain/loss).
    Db,
    /// Milliwatts (linear power).
    Mw,
    /// Megabits per second.
    Mbps,
    /// Hertz.
    Hz,
}

impl Unit {
    /// The unit's canonical lowercase token.
    pub fn token(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::Slots => "slots",
            Unit::Dbm => "dbm",
            Unit::Db => "db",
            Unit::Mw => "mw",
            Unit::Mbps => "mbps",
            Unit::Hz => "hz",
        }
    }

    /// All units.
    pub const ALL: [Unit; 9] = [
        Unit::Ns,
        Unit::Us,
        Unit::Ms,
        Unit::Slots,
        Unit::Dbm,
        Unit::Db,
        Unit::Mw,
        Unit::Mbps,
        Unit::Hz,
    ];

    /// Parse a lowercase unit word.
    pub fn parse(s: &str) -> Option<Unit> {
        Unit::ALL.into_iter().find(|u| u.token() == s)
    }
}

/// Unit carried by an identifier, by suffix convention (`t_ns`, `p_dbm`)
/// or exact name (`ns`, `dbm` — common for conversion-helper parameters).
pub fn ident_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    for u in Unit::ALL {
        if lower == u.token() || lower.ends_with(&format!("_{}", u.token())) {
            return Some(u);
        }
    }
    None
}

/// Unit returned by a function, by name convention: a unit suffix
/// (`tx_time_ns`) or a `_to_<unit>` conversion segment (`ns_to_us_ceil`).
pub fn fn_name_unit(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    if let Some(at) = lower.rfind("_to_") {
        let tail = &lower[at + "_to_".len()..];
        let word: String = tail
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if let Some(u) = Unit::parse(&word) {
            return Some(u);
        }
    }
    ident_unit(&lower)
}

/// One `static` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDecl {
    /// Item name.
    pub name: String,
    /// 1-based declaration line.
    pub line: usize,
    /// `static mut`.
    pub is_mut: bool,
    /// Atomic / lock / cell / once types: mutable through `&'static`.
    pub interior_mutable: bool,
    /// The declared type text (trimmed).
    pub ty: String,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name (`_` patterns and tuple patterns yield `""`).
    pub name: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee base name (last path segment before the parens).
    pub callee: String,
    /// `Foo` in `Foo::bar(..)` / `path::bar(..)` — the segment before the
    /// final `::`, when present.
    pub qual: Option<String>,
    /// `.bar(..)` receiver form.
    pub is_method: bool,
    /// Receiver identifier for method calls (`x` in `x.min(y)`), when the
    /// receiver is a plain identifier or field access.
    pub receiver: Option<String>,
    /// 1-based line of the callee token.
    pub line: usize,
    /// Identifiers appearing in each top-level argument.
    pub args: Vec<Vec<String>>,
    /// Local the result is bound to (`let x = f(..)` / `x = f(..)`).
    pub assigned_to: Option<String>,
}

/// One local assignment (`let lhs = ...` / `lhs = ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assign {
    /// Left-hand binding name.
    pub lhs: String,
    /// Identifiers on the right-hand side.
    pub rhs_idents: Vec<String>,
    /// Callee names invoked on the right-hand side.
    pub rhs_calls: Vec<String>,
    /// 1-based line.
    pub line: usize,
}

/// What a binary-operator operand is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandKind {
    /// A plain identifier (or field-access path, reduced to one segment).
    Ident,
    /// A call whose unit comes from the callee's return.
    Call,
}

/// One operand of a recorded binary expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// Identifier or callee name.
    pub name: String,
    /// Ident vs call.
    pub kind: OperandKind,
}

/// One additive/comparison binary expression with identifier-or-call
/// operands — the raw material for the unit-flow rule (multiplication and
/// division legitimately change units and are not recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinOp {
    /// 1-based line.
    pub line: usize,
    /// `+`, `-`, `<`, `>`, `<=`, `>=`, `==`, `!=`.
    pub op: String,
    /// Left operand.
    pub left: Operand,
    /// Right operand.
    pub right: Operand,
}

/// A struct-literal site (`Name { .. }`), recorded for sink detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLit {
    /// Struct name.
    pub name: String,
    /// 1-based line of the opening brace.
    pub line: usize,
    /// Identifiers appearing inside the literal's span.
    pub idents: Vec<String>,
    /// Whether a wall-clock/entropy token appears inside the span.
    pub has_source: bool,
}

/// One function item and the facts the flow rules need.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// `impl` type qualifier, when declared inside an `impl` block.
    pub qual: Option<String>,
    /// Parameter names, `self` excluded.
    pub params: Vec<Param>,
    /// Whether the function takes `self` (method).
    pub has_self: bool,
    /// Whether the signature declares a non-`()` return type.
    pub returns_value: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Local assignments in the body.
    pub assigns: Vec<Assign>,
    /// Lines carrying wall-clock / entropy / parallelism-probe tokens.
    pub source_lines: Vec<usize>,
    /// `(line, token)` for `panic!` / `unreachable!` / bare `.unwrap()`.
    pub panic_lines: Vec<(usize, String)>,
    /// Lines reading shared state (`.load(`, `.fetch_*`, `.lock()`,
    /// `.get_or_init(`).
    pub shared_reads: Vec<usize>,
    /// Identifiers in return position (`return` statements and the
    /// trailing expression).
    pub return_idents: Vec<String>,
    /// Callee names in return position.
    pub return_calls: Vec<String>,
    /// Lines in return position.
    pub return_lines: Vec<usize>,
    /// Struct literals in the body.
    pub struct_lits: Vec<StructLit>,
    /// Additive/comparison expressions with resolvable operands.
    pub bin_ops: Vec<BinOp>,
}

/// The symbol model of one file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileModel {
    /// `/`-normalised path, as scanned.
    pub path: String,
    /// Function items, in declaration order.
    pub fns: Vec<FnModel>,
    /// `static` declarations.
    pub statics: Vec<StaticDecl>,
}

/// Keywords that look like call receivers but are not callees.
const NON_CALLEES: [&str; 14] = [
    "if", "while", "for", "match", "return", "fn", "loop", "in", "as", "move", "unsafe", "else",
    "let", "where",
];

/// Build the symbol model for one file.
pub fn build_model(path: &str, source: &str) -> FileModel {
    let lexed = lex(source);
    build_model_lexed(path, &lexed)
}

pub(crate) fn build_model_lexed(path: &str, lexed: &Lexed) -> FileModel {
    let in_test = test_regions(&lexed.code);
    let mut fns: Vec<FnModel> = Vec::new();
    let mut statics: Vec<StaticDecl> = Vec::new();

    // Parser state: brace depth, the impl-type stack, and the stack of
    // currently-open functions (facts go to the innermost).
    let mut depth: i64 = 0;
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    // (fn index in `fns`, depth at which its body opened)
    let mut open_fns: Vec<(usize, i64)> = Vec::new();
    // A signature seen but whose body `{` has not opened yet.
    let mut pending_fn: Option<(FnModel, String)> = None;

    for (idx, code) in lexed.code.iter().enumerate() {
        let line = idx + 1;

        // Statics (recorded wherever they appear, including fn bodies —
        // `static TABLE: OnceLock<..>` inside a function is still global
        // state).
        if let Some(decl) = static_decl(code, line, in_test[idx]) {
            statics.push(decl);
        }

        // Continue accumulating a pending signature.
        if let Some((_, sig)) = pending_fn.as_mut() {
            sig.push(' ');
            sig.push_str(code);
        } else if let Some(at) = find_word(code, "fn") {
            // A new `fn` item (or nested fn); closures have no `fn`.
            let mut f = FnModel {
                line,
                in_test: in_test[idx],
                qual: impl_stack.last().map(|(_, t)| t.clone()),
                ..FnModel::default()
            };
            f.end_line = line;
            let sig = code[at..].to_string();
            pending_fn = Some((f, sig));
        }

        // Does the pending signature terminate on this line?
        if let Some((f, sig)) = pending_fn.as_mut() {
            if let Some(brace) = sig_terminator(sig) {
                let done = brace == '{';
                parse_signature(sig, f);
                if done {
                    // Body opens at this line's `{`; depth bookkeeping
                    // below counts it, so the fn closes when depth returns
                    // to the depth *before* this line plus the braces that
                    // precede the signature's `{` on it. Using the current
                    // depth is correct because we push before counting.
                    let (f, _) = pending_fn.take().expect("just matched");
                    fns.push(f);
                    open_fns.push((fns.len() - 1, depth));
                } else {
                    // Trait method declaration (`fn f(..);`): keep the
                    // item for signature lookups, with an empty body.
                    let (f, _) = pending_fn.take().expect("just matched");
                    fns.push(f);
                }
            }
        }

        // Body facts for the innermost open fn. The line that *opens* the
        // body also belongs to it (single-line fns).
        if let Some(&(fi, _)) = open_fns.last() {
            collect_body_facts(&mut fns[fi], lexed, idx);
            fns[fi].end_line = line;
        }

        // impl-block detection (before depth update so the open brace on
        // this line is attributed to the impl).
        if let Some(ty) = impl_type(code) {
            if code.contains('{') {
                impl_stack.push((depth, ty));
            }
        }

        // Depth bookkeeping; pop fns and impls whose block closes here.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(&(fi, d)) = open_fns.last() {
                        if depth <= d {
                            fns[fi].end_line = line;
                            open_fns.pop();
                        }
                    }
                    if let Some(&(d, _)) = impl_stack.last().map(|(d, t)| (d, t)).as_ref() {
                        if depth <= *d {
                            impl_stack.pop();
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Trailing-expression return positions: the last non-empty body line
    // before the closing brace, when it does not end with `;`.
    for f in &mut fns {
        let last = trailing_expr_line(lexed, f.line, f.end_line);
        if let Some(l) = last {
            record_return_expr(f, &lexed.code[l - 1], l);
        }
    }

    FileModel {
        path: path.to_string(),
        fns,
        statics,
    }
}

/// `{` or `;` terminating a signature, at paren depth 0.
fn sig_terminator(sig: &str) -> Option<char> {
    let mut paren = 0i64;
    for c in sig.chars() {
        match c {
            '(' => paren += 1,
            ')' => paren -= 1,
            '{' if paren <= 0 => return Some('{'),
            ';' if paren <= 0 => return Some(';'),
            _ => {}
        }
    }
    None
}

/// Parse `fn name<..>(params) -> Ret` into the model fields.
fn parse_signature(sig: &str, f: &mut FnModel) {
    // Name: identifier after `fn`.
    let after = sig.trim_start_matches("fn").trim_start();
    f.name = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();

    // Parameters: between the first `(` at angle depth 0 and its match.
    let Some(open) = paren_open(sig) else { return };
    let Some(close) = matching_paren(sig, open) else {
        return;
    };
    let params = &sig[open + 1..close];
    for part in split_top_level(params) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let head = part.split(':').next().unwrap_or("").trim();
        if head == "self"
            || head.ends_with(" self")
            || head.ends_with("&self")
            || head == "&mut self"
            || head.ends_with("mut self")
        {
            f.has_self = true;
            continue;
        }
        let name = head
            .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("")
            .to_string();
        f.params.push(Param { name });
    }

    // Return type: `-> X` after the params.
    let tail = &sig[close + 1..];
    if let Some(arrow) = tail.find("->") {
        let ret: String = tail[arrow + 2..]
            .chars()
            .take_while(|&c| c != '{' && c != ';')
            .collect();
        let ret = ret.trim();
        f.returns_value = !ret.is_empty() && ret != "()";
    }
}

/// First `(` outside generic brackets.
fn paren_open(sig: &str) -> Option<usize> {
    let mut angle = 0i64;
    for (i, c) in sig.char_indices() {
        match c {
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            '(' if angle == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, c) in text.char_indices().skip_while(|&(i, _)| i < open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Split at top-level commas (parens/brackets/braces tracked).
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// `impl Type` / `impl Trait for Type`: the implemented type's name.
/// Only item-position `impl` counts — `-> impl Trait` in a signature is
/// not a block.
fn impl_type(code: &str) -> Option<String> {
    let head = code.trim_start();
    if !(head.starts_with("impl ") || head.starts_with("impl<") || head.starts_with("unsafe impl "))
    {
        return None;
    }
    let at = find_word(code, "impl")?;
    let rest = &code[at + "impl".len()..];
    // Skip generics directly after `impl`.
    let rest = skip_generics(rest.trim_start());
    let rest = if let Some(for_at) = find_word(rest, "for") {
        rest[for_at + 3..].trim_start()
    } else {
        rest
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name.chars().next().is_some_and(|c| c.is_uppercase())).then_some(name)
}

fn skip_generics(text: &str) -> &str {
    if !text.starts_with('<') {
        return text;
    }
    let mut depth = 0i64;
    for (i, c) in text.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return text[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    text
}

/// Parse a `static` declaration on this line, if any.
fn static_decl(code: &str, line: usize, in_test: bool) -> Option<StaticDecl> {
    let at = find_word(code, "static")?;
    // `&'static` / `'static` lifetime uses.
    if code[..at].trim_end().ends_with('\'') || code[..at].trim_end().ends_with('&') {
        return None;
    }
    let rest = code[at + "static".len()..].trim_start();
    let (is_mut, rest) = match rest.strip_prefix("mut ") {
        Some(r) => (true, r.trim_start()),
        None => (false, rest),
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty()
        || !name
            .chars()
            .next()
            .is_some_and(|c| c.is_uppercase() || c == '_')
    {
        return None;
    }
    let ty: String = rest[name.len()..]
        .trim_start()
        .trim_start_matches(':')
        .trim_start()
        .chars()
        .take_while(|&c| c != '=' && c != ';')
        .collect();
    let ty = ty.trim().to_string();
    const INTERIOR: [&str; 10] = [
        "Atomic",
        "Mutex",
        "RwLock",
        "RefCell",
        "Cell<",
        "UnsafeCell",
        "OnceLock",
        "OnceCell",
        "LazyLock",
        "LazyCell",
    ];
    let interior_mutable = INTERIOR.iter().any(|m| ty.contains(m));
    Some(StaticDecl {
        name,
        line,
        is_mut,
        interior_mutable,
        ty,
        in_test,
    })
}

/// Collect call sites, assignments, and token facts from body line `idx`.
fn collect_body_facts(f: &mut FnModel, lexed: &Lexed, idx: usize) {
    let code = &lexed.code[idx];
    let line = idx + 1;

    // Wall-clock / entropy / parallelism sources.
    if wall_clock_token(code, &lexed.raw[idx]).is_some() || code.contains("available_parallelism") {
        f.source_lines.push(line);
    }

    // Panic tokens (test-region lines are excluded by the caller's use of
    // `in_test` at the fn level; a non-test fn cannot contain test lines).
    for tok in ["panic!", "unreachable!"] {
        if code.contains(tok) {
            f.panic_lines.push((line, tok.to_string()));
        }
    }
    if code.contains(".unwrap()") {
        f.panic_lines.push((line, ".unwrap()".to_string()));
    }

    // Shared-state reads.
    for tok in [".load(", ".fetch_", ".lock()", ".get_or_init("] {
        if code.contains(tok) {
            f.shared_reads.push(line);
            break;
        }
    }

    // Assignment shape: `let [mut] lhs = rest` / `lhs = rest` (compound
    // assigns included via the op char before `=`).
    if let Some(assign) = parse_assign(code, line) {
        f.assigns.push(assign);
    }

    // `return expr;` positions.
    if let Some(at) = find_word(code, "return") {
        record_return_expr(f, &code[at + "return".len()..], line);
    }

    // Call sites.
    let calls = parse_calls(lexed, idx);
    let assigned = f
        .assigns
        .last()
        .and_then(|a| (a.line == line).then(|| a.lhs.clone()));
    for mut c in calls {
        c.assigned_to = assigned.clone();
        f.calls.push(c);
    }

    // Struct literals `Name {`.
    for lit in parse_struct_lits(lexed, idx) {
        f.struct_lits.push(lit);
    }

    // Additive/comparison expressions for the unit-flow rule.
    f.bin_ops.extend(parse_bin_ops(code, line));
}

/// Recognised two-operand operators for unit checking. `*` and `/`
/// legitimately change units (rate × time, energy ÷ time) and are not
/// checked.
const UNIT_OPS: [&str; 8] = ["<=", ">=", "==", "!=", "+", "-", "<", ">"];

/// Extract additive/comparison expressions whose operands are identifiers
/// or calls. Shifts, arrows, fat arrows, turbofish and unary minus are
/// excluded.
fn parse_bin_ops(code: &str, line: usize) -> Vec<BinOp> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let Some(op) = UNIT_OPS
            .iter()
            .find(|op| code[i..].starts_with(*op))
            .copied()
        else {
            i += 1;
            continue;
        };
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        let next_at = i + op.len();
        let next = bytes.get(next_at).copied().unwrap_or(b' ');
        let skip = match op {
            // `->`, `-=` and unary minus.
            "-" => {
                next == b'>'
                    || next == b'='
                    || matches!(
                        prev,
                        b'=' | b','
                            | b'('
                            | b'['
                            | b'{'
                            | b'<'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
            }
            // `+=`.
            "+" => next == b'=' || matches!(prev, b'+' | b':'),
            // Shifts, generics/turbofish, arrows.
            "<" => next == b'<' || next == b'-' || prev == b'<' || code[..i].ends_with("::"),
            ">" => next == b'>' || prev == b'>' || prev == b'-' || prev == b'=' || prev == b'<',
            // `<=`/`>=`/`==`/`!=` are unambiguous two-char forms; but an
            // `=` run (`===`-ish) or pattern arm must not slip through.
            _ => next == b'=' || next == b'>',
        };
        if skip {
            i += op.len();
            continue;
        }
        let left = operand_left(code, i);
        let right = operand_right(code, next_at);
        if let (Some(left), Some(right)) = (left, right) {
            out.push(BinOp {
                line,
                op: op.to_string(),
                left,
                right,
            });
        }
        i = next_at;
    }
    out
}

/// Reduce a dotted path to its most informative segment: the last
/// unit-bearing one, else the last.
fn path_segment(path: &str) -> Option<String> {
    let segs: Vec<&str> = path
        .split('.')
        .filter(|s| !s.is_empty() && !s.chars().next().is_some_and(|c| c.is_numeric()))
        .collect();
    if segs.is_empty() {
        return None;
    }
    let unit_seg = segs.iter().rev().find(|s| ident_unit(s).is_some());
    Some(
        unit_seg
            .unwrap_or(segs.last().expect("non-empty"))
            .to_string(),
    )
}

/// The operand to the left of the operator at byte `op_at`.
fn operand_left(code: &str, op_at: usize) -> Option<Operand> {
    let text = code[..op_at].trim_end();
    if text.ends_with(')') {
        // Call result: find the matching `(` and the callee before it.
        let mut depth = 0i64;
        for (i, c) in text.char_indices().rev() {
            match c {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        let name = crate::last_ident(&text[..i])?;
                        if NON_CALLEES.contains(&name.as_str()) {
                            return None;
                        }
                        return Some(Operand {
                            name,
                            kind: OperandKind::Call,
                        });
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    let end = text.len();
    let start = text
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .map_or(0, |i| i + c_len(text, i));
    let tok = &text[start..end];
    if tok.is_empty() || tok.chars().next().is_some_and(|c| c.is_numeric()) {
        return None;
    }
    Some(Operand {
        name: path_segment(tok)?,
        kind: OperandKind::Ident,
    })
}

/// The operand to the right of the operator ending at byte `from`.
fn operand_right(code: &str, from: usize) -> Option<Operand> {
    let text = code[from..].trim_start();
    let tok: String = text
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_' || c == '.')
        .collect();
    if tok.is_empty() || tok.chars().next().is_some_and(|c| c.is_numeric()) {
        return None;
    }
    let after = text[tok.len()..].trim_start();
    let kind = if after.starts_with('(') {
        OperandKind::Call
    } else {
        OperandKind::Ident
    };
    let name = match kind {
        // For a call chain `a.b(..)`, the unit comes from the final call.
        OperandKind::Call => tok.split('.').next_back()?.to_string(),
        OperandKind::Ident => path_segment(&tok)?,
    };
    if NON_CALLEES.contains(&name.as_str()) {
        return None;
    }
    Some(Operand { name, kind })
}

/// Identifiers and callee names in a return-position expression.
fn record_return_expr(f: &mut FnModel, expr: &str, line: usize) {
    let trimmed = expr.trim().trim_end_matches(';');
    if trimmed.is_empty() || trimmed == "}" || trimmed == "{" {
        return;
    }
    f.return_lines.push(line);
    for id in idents_of(trimmed) {
        f.return_idents.push(id);
    }
    for call in callee_names(trimmed) {
        f.return_calls.push(call);
    }
}

/// The trailing-expression line of a body, when it is not `;`-terminated.
fn trailing_expr_line(lexed: &Lexed, start: usize, end: usize) -> Option<usize> {
    if end <= start {
        // Single-line fn: the expression sits between the braces.
        let code = lexed.code.get(start - 1)?;
        let open = code.find('{')?;
        let close = code.rfind('}')?;
        if close > open + 1 {
            return Some(start);
        }
        return None;
    }
    let mut paren_deficit = 0i64;
    for l in (start..end).rev() {
        let code = lexed.code[l - 1].trim();
        if code.is_empty() || code == "}" || code == "{" {
            continue;
        }
        if paren_deficit == 0 && (code.ends_with(';') || code.ends_with('{')) {
            return None;
        }
        // A trailing multi-line call (`)` on its own line) resolves to the
        // line holding the unmatched `(` — the call head.
        let opens = code.chars().filter(|&c| c == '(').count() as i64;
        let closes = code.chars().filter(|&c| c == ')').count() as i64;
        paren_deficit += closes - opens;
        if paren_deficit <= 0 {
            return Some(l);
        }
    }
    None
}

/// All identifiers in a text fragment.
pub(crate) fn idents_of(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            if cur.is_empty() && c.is_numeric() {
                // Number literal, not an identifier; swallow it.
                prev = Some(c);
                continue;
            }
            if cur.is_empty() && prev.is_some_and(|p| p.is_numeric()) {
                prev = Some(c);
                continue;
            }
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
            prev = Some(c);
        } else {
            prev = Some(c);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Callee base names in a text fragment (`name(`, excluding keywords and
/// macro bangs).
fn callee_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let before = &text[..i];
        let trimmed = before.trim_end();
        if trimmed.ends_with('!') {
            continue;
        }
        if let Some(name) = crate::last_ident(trimmed) {
            if !NON_CALLEES.contains(&name.as_str()) {
                out.push(name);
            }
        }
    }
    out
}

/// Parse `let [mut] lhs = rest` / `lhs op= rest` on one line.
fn parse_assign(code: &str, line: usize) -> Option<Assign> {
    let eq = find_assign_eq(code)?;
    let lhs_text = code[..eq].trim_end();
    let lhs_text = lhs_text.trim_end_matches(|c: char| "+-*/%&|^".contains(c));
    let mut lhs_part = lhs_text.trim();
    if let Some(rest) = lhs_part.strip_prefix("let ") {
        lhs_part = rest.trim_start();
    }
    lhs_part = lhs_part.strip_prefix("mut ").unwrap_or(lhs_part);
    // `let x: Ty = ..` — identifiers in the type annotation are not data
    // flow; cut at the colon (a `self.x = ..` destination has no colon).
    if let Some(colon) = lhs_part.find(':') {
        lhs_part = lhs_part[..colon].trim_end();
    }
    // Only plain-identifier (optionally `self.x`) destinations.
    let lhs_ids = idents_of(lhs_part);
    let lhs = match lhs_ids.as_slice() {
        [one] => one.clone(),
        [s, field] if s == "self" => field.clone(),
        _ => return None,
    };
    let rhs = &code[eq + 1..];
    Some(Assign {
        lhs,
        rhs_idents: idents_of(rhs),
        rhs_calls: callee_names(rhs),
        line,
    })
}

/// Position of a single `=` that is an assignment (not `==`, `=>`, `<=`,
/// `>=`, `!=`).
fn find_assign_eq(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'=' {
            continue;
        }
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        let next = if i + 1 < bytes.len() {
            bytes[i + 1]
        } else {
            b' '
        };
        if matches!(prev, b'=' | b'<' | b'>' | b'!') || next == b'=' || next == b'>' {
            continue;
        }
        return Some(i);
    }
    None
}

/// Parse all call sites whose callee token sits on line `idx`.
fn parse_calls(lexed: &Lexed, idx: usize) -> Vec<CallSite> {
    let code = &lexed.code[idx];
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let before = &code[..i];
        let trimmed = before.trim_end();
        if trimmed.ends_with('!') {
            continue; // macro
        }
        let Some(callee) = crate::last_ident(trimmed) else {
            continue;
        };
        if NON_CALLEES.contains(&callee.as_str()) {
            continue;
        }
        // Qualifier and method-ness from what precedes the name.
        let name_start = trimmed.len() - callee.len();
        let prefix = trimmed[..name_start].trim_end();
        // `fn name(` is a declaration, not a call to itself.
        if prefix.ends_with("fn") && find_word(prefix, "fn") == Some(prefix.len() - 2) {
            continue;
        }
        let is_method = prefix.ends_with('.');
        let qual = prefix.strip_suffix("::").and_then(crate::last_ident);
        let receiver = if is_method {
            crate::last_ident(prefix.trim_end_matches('.'))
        } else {
            None
        };
        let args_text = collect_args_text(lexed, idx, i);
        let args: Vec<Vec<String>> = split_top_level(&args_text)
            .into_iter()
            .map(idents_of)
            .collect();
        let args = if args.len() == 1 && args[0].is_empty() {
            Vec::new()
        } else {
            args
        };
        out.push(CallSite {
            callee,
            qual,
            is_method,
            receiver,
            line: idx + 1,
            args,
            assigned_to: None,
        });
    }
    out
}

/// The argument text of a call whose `(` is at `(idx, col)` — walks up to
/// 40 lines forward to the matching `)`.
fn collect_args_text(lexed: &Lexed, idx: usize, col: usize) -> String {
    let mut depth = 0i64;
    let mut text = String::new();
    for (li, code) in lexed.code.iter().enumerate().skip(idx).take(40) {
        let start = if li == idx { col } else { 0 };
        for (ci, c) in code.char_indices() {
            if ci < start {
                continue;
            }
            match c {
                '(' => {
                    depth += 1;
                    if depth > 1 {
                        text.push(c);
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return text;
                    }
                    text.push(c);
                }
                _ if depth >= 1 => text.push(c),
                _ => {}
            }
        }
        text.push(' ');
    }
    text
}

/// Struct literals `Name {` opening on line `idx`, with the identifiers in
/// their span (up to 40 lines).
fn parse_struct_lits(lexed: &Lexed, idx: usize) -> Vec<StructLit> {
    let code = &lexed.code[idx];
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'{' {
            continue;
        }
        let before = code[..i].trim_end();
        let Some(name) = crate::last_ident(before) else {
            continue;
        };
        if !name.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        // Exclude declarations and control keywords directly before.
        let prefix = before[..before.len() - name.len()].trim_end();
        let is_decl = ["struct", "enum", "trait", "mod", "impl", "for", "union"]
            .iter()
            .any(|k| prefix.ends_with(k));
        if is_decl {
            continue;
        }
        // Span: walk to the matching `}`.
        let mut depth = 0i64;
        let mut idents = Vec::new();
        let mut has_source = false;
        'outer: for (li, line_code) in lexed.code.iter().enumerate().skip(idx).take(40) {
            let start = if li == idx { i } else { 0 };
            let slice = &line_code[start.min(line_code.len())..];
            if wall_clock_token(slice, lexed.raw.get(li).map_or("", |r| r)).is_some() {
                has_source = true;
            }
            let mut seg = String::new();
            for c in slice.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seg.push(' ');
                    }
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            idents.extend(idents_of(&seg));
                            break 'outer;
                        }
                        seg.push(' ');
                    }
                    _ => seg.push(c),
                }
            }
            idents.extend(idents_of(&seg));
        }
        out.push(StructLit {
            name,
            line: idx + 1,
            idents,
            has_source,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fns_params_and_calls() {
        let src = "\
impl Radio {
    pub fn airtime_ns(&self, len: usize, rate_mbps: u64) -> u64 {
        let bits = len * 8;
        tx_time_ns(bits, rate_mbps)
    }
}

fn helper(t_us: u64) -> u64 {
    t_us * 1000
}
";
        let m = build_model("crates/x/src/lib.rs", src);
        assert_eq!(m.fns.len(), 2);
        let a = &m.fns[0];
        assert_eq!(a.name, "airtime_ns");
        assert_eq!(a.qual.as_deref(), Some("Radio"));
        assert!(a.has_self);
        assert!(a.returns_value);
        assert_eq!(a.params.len(), 2);
        assert_eq!(a.params[1].name, "rate_mbps");
        assert!(a.calls.iter().any(|c| c.callee == "tx_time_ns"));
        assert!(a.return_calls.contains(&"tx_time_ns".to_string()));
        let h = &m.fns[1];
        assert_eq!(h.name, "helper");
        assert!(h.return_idents.contains(&"t_us".to_string()));
    }

    #[test]
    fn statics_and_interior_mutability() {
        let src = "\
static EVENTS: AtomicU64 = AtomicU64::new(0);
static NAMES: [&'static str; 2] = [\"a\", \"b\"];
fn f() {
    static TABLE: std::sync::OnceLock<[u32; 4]> = std::sync::OnceLock::new();
    let _ = TABLE.get_or_init(|| [0; 4]);
}
";
        let m = build_model("crates/x/src/lib.rs", src);
        assert_eq!(m.statics.len(), 3);
        assert!(m.statics[0].interior_mutable);
        assert!(!m.statics[1].interior_mutable, "{:?}", m.statics[1]);
        assert!(m.statics[2].interior_mutable);
        assert!(!m.fns[0].shared_reads.is_empty());
    }

    #[test]
    fn units_from_names() {
        assert_eq!(ident_unit("t_ns"), Some(Unit::Ns));
        assert_eq!(ident_unit("p_dbm"), Some(Unit::Dbm));
        assert_eq!(ident_unit("gain_db"), Some(Unit::Db));
        assert_eq!(ident_unit("count"), None);
        assert_eq!(ident_unit("status"), None);
        assert_eq!(fn_name_unit("tx_time_ns"), Some(Unit::Ns));
        assert_eq!(fn_name_unit("ns_to_us_ceil"), Some(Unit::Us));
        assert_eq!(fn_name_unit("whole_slots"), Some(Unit::Slots));
        assert_eq!(fn_name_unit("compute"), None);
    }

    #[test]
    fn bin_ops_capture_units_not_arrows() {
        let src = "\
fn f(t_ns: u64, t_us: u64) -> u64 {
    let x = t_ns + t_us;
    let ok = t_ns - 5;
    if x < dur_us() {
        return x;
    }
    x >> 2
}
";
        let m = build_model("crates/x/src/lib.rs", src);
        let ops = &m.fns[0].bin_ops;
        assert!(ops
            .iter()
            .any(|b| b.op == "+" && b.left.name == "t_ns" && b.right.name == "t_us"));
        // `t_ns - 5`: numeric right operand is not recorded.
        assert!(!ops.iter().any(|b| b.op == "-"));
        assert!(ops
            .iter()
            .any(|b| b.op == "<" && b.right.kind == OperandKind::Call && b.right.name == "dur_us"));
        // `->` and `>>` are not comparisons.
        assert!(!ops.iter().any(|b| b.op == ">"));
    }

    #[test]
    fn source_and_panic_facts() {
        let src = "\
fn meter() -> u64 {
    let t0 = std::time::Instant::now();
    let x = t0.elapsed();
    helper(x)
}
fn brittle(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
        let m = build_model("crates/x/src/lib.rs", src);
        assert_eq!(m.fns[0].source_lines, vec![2]);
        assert!(m.fns[0].assigns.iter().any(|a| a.lhs == "t0"));
        assert!(m.fns[0]
            .assigns
            .iter()
            .any(|a| a.lhs == "x" && a.rhs_idents.contains(&"t0".to_string())));
        assert_eq!(m.fns[1].panic_lines, vec![(7, ".unwrap()".to_string())]);
    }
}
