//! The interprocedural flow rules (R7–R10) over the symbol model.
//!
//! All four rules share one whole-program fixpoint over per-function
//! summaries:
//!
//! * **R7 `det-taint`** — `taints_return` / `param_sink`: does a function
//!   return a wall-clock/entropy-derived value; does its k-th parameter
//!   flow into an artifact sink?
//! * **R8 `unit-flow`** — `ret_unit`: the physical unit a function returns,
//!   inferred from its name suffix or its return expression; locals gain
//!   units through assignment.
//! * **R9 `shared-state`** — `shared_return`: does a function return a
//!   value read from shared mutable state (atomics, locks, once-cells)?
//! * **R10 `panic-reach`** — `may_panic`: can a call into this function
//!   reach `panic!`/`unreachable!`/a bare `.unwrap()`?
//!
//! Call edges are resolved by *name* (plus `impl`-type qualifier and
//! method-ness), the same trade the whole analyzer makes. Ambiguity is
//! handled by refusing: a name with more than [`MAX_CANDIDATES`] workspace
//! definitions produces no edge, so a common name never fans taint across
//! the workspace. That keeps every rule conservative in the false-positive
//! direction at the cost of missing flows through very common names.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{fn_name_unit, ident_unit};
use crate::model::{BinOp, CallSite, FileModel, FnModel, Operand, OperandKind, Unit};
use crate::{Config, FileScan, Rule, Violation};

/// One analyzed file as the flow layer sees it.
pub struct FlowFile<'a> {
    /// The symbol model (carries the path).
    pub model: &'a FileModel,
    /// The token-layer scan (pragma bookkeeping).
    pub scan: &'a FileScan,
    /// Raw source lines, for snippets.
    pub raw: Vec<&'a str>,
}

/// Flow-rule findings plus the pragma uses they consumed (for the
/// stale-pragma audit).
#[derive(Debug, Default)]
pub struct FlowOutput {
    /// Unsuppressed findings, ordered by (path, line, rule).
    pub violations: Vec<Violation>,
    /// `(file_index, pragma_line, rule)` of pragmas that silenced a flow
    /// finding.
    pub pragma_uses: Vec<(usize, usize, Rule)>,
}

/// A function reference: (file index, fn index).
type FnRef = (usize, usize);

/// Names defined more often than this produce no call edges.
const MAX_CANDIDATES: usize = 4;

/// Method names that collide with std prelude/iterator combinators. A
/// `.map(..)` receiver call is overwhelmingly `Iterator::map`, not a
/// workspace method that happens to share the name — resolving it to one
/// would wire false panic/taint edges through half the call graph. Method
/// calls with these names get an edge only when the qualifier pins the
/// impl type explicitly (which receiver syntax never does).
const STD_METHOD_NAMES: [&str; 40] = [
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_or",
    "map_or_else",
    "map_err",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "collect",
    "extend",
    "retain",
    "contains",
    "find",
    "position",
    "any",
    "all",
    "zip",
    "rev",
    "take",
    "store",
    "load",
    "swap",
    "replace",
    "parse",
    "split",
    "next",
];

/// Receiver methods whose two sides must share a unit.
const CLAMP_METHODS: [&str; 9] = [
    "min",
    "max",
    "clamp",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
];

#[derive(Debug, Clone, Default)]
struct Summary {
    taints_return: bool,
    shared_return: bool,
    may_panic: bool,
    param_sink: Vec<bool>,
    ret_unit: Option<Unit>,
}

/// Run R7–R10 over the workspace model.
pub fn run(files: &[FlowFile<'_>], cfg: &Config) -> FlowOutput {
    let engine = Engine::new(files, cfg);
    engine.findings()
}

struct Engine<'a> {
    files: &'a [FlowFile<'a>],
    cfg: &'a Config,
    /// name -> all fns with that name.
    index: BTreeMap<&'a str, Vec<FnRef>>,
    /// Per-call-site resolutions, indexed `[file][fn][call]`. Resolution
    /// depends only on the static models, never on summaries, so it is
    /// computed exactly once instead of on every fixpoint visit.
    call_cands: Vec<Vec<Vec<Vec<FnRef>>>>,
    /// callee -> callers that read its summary (the worklist edges).
    rev_deps: BTreeMap<FnRef, BTreeSet<FnRef>>,
    summaries: Vec<Vec<Summary>>,
    /// Per-fn wall-clock-tainted locals / shared-state-tainted locals.
    wall_locals: Vec<Vec<BTreeSet<String>>>,
    shared_locals: Vec<Vec<BTreeSet<String>>>,
    unit_locals: Vec<Vec<BTreeMap<String, Unit>>>,
}

/// Resolve a call site against the name index (see the module docs for
/// the ambiguity-refusal rules). Free function so `Engine::new` can run
/// it before the engine exists.
fn resolve_call(
    files: &[FlowFile<'_>],
    index: &BTreeMap<&str, Vec<FnRef>>,
    call: &CallSite,
) -> Vec<FnRef> {
    let Some(cands) = index.get(call.callee.as_str()) else {
        return Vec::new();
    };
    if call.is_method && call.qual.is_none() && STD_METHOD_NAMES.contains(&call.callee.as_str()) {
        return Vec::new();
    }
    let fn_model = |r: FnRef| -> &FnModel { &files[r.0].model.fns[r.1] };
    let mut cands: Vec<FnRef> = cands.clone();
    if call.is_method {
        cands.retain(|&r| fn_model(r).has_self);
    }
    if let Some(q) = &call.qual {
        // An uppercase qualifier names the impl type; `Self` does not
        // narrow. Lowercase qualifiers are module paths and any
        // definition may match.
        if q != "Self" && q.chars().next().is_some_and(|c| c.is_uppercase()) {
            cands.retain(|&r| fn_model(r).qual.as_deref() == Some(q.as_str()));
        }
    }
    if cands.len() > MAX_CANDIDATES {
        return Vec::new();
    }
    cands
}

impl<'a> Engine<'a> {
    fn new(files: &'a [FlowFile<'a>], cfg: &'a Config) -> Engine<'a> {
        let mut index: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (fj, f) in file.model.fns.iter().enumerate() {
                if !f.name.is_empty() {
                    index.entry(f.name.as_str()).or_default().push((fi, fj));
                }
            }
        }

        // Resolve every call site once, and record the reverse summary
        // dependencies the worklist propagates along: a function must be
        // revisited when any callee whose summary it reads changes.
        let mut call_cands: Vec<Vec<Vec<Vec<FnRef>>>> = Vec::with_capacity(files.len());
        let mut rev_deps: BTreeMap<FnRef, BTreeSet<FnRef>> = BTreeMap::new();
        let resolve_name = |name: &str| -> &[FnRef] {
            match index.get(name) {
                Some(c) if c.len() <= MAX_CANDIDATES => c,
                _ => &[],
            }
        };
        for (fi, file) in files.iter().enumerate() {
            let mut per_fn = Vec::with_capacity(file.model.fns.len());
            for (fj, f) in file.model.fns.iter().enumerate() {
                let caller = (fi, fj);
                let mut per_call = Vec::with_capacity(f.calls.len());
                for c in &f.calls {
                    let cands = resolve_call(files, &index, c);
                    for &t in &cands {
                        rev_deps.entry(t).or_default().insert(caller);
                    }
                    per_call.push(cands);
                }
                let named_deps = f
                    .return_calls
                    .iter()
                    .chain(f.assigns.iter().flat_map(|a| a.rhs_calls.iter()));
                for n in named_deps {
                    for &t in resolve_name(n) {
                        rev_deps.entry(t).or_default().insert(caller);
                    }
                }
                per_fn.push(per_call);
            }
            call_cands.push(per_fn);
        }

        let summaries = files
            .iter()
            .map(|f| {
                f.model
                    .fns
                    .iter()
                    .map(|m| Summary {
                        param_sink: vec![false; m.params.len()],
                        ..Summary::default()
                    })
                    .collect()
            })
            .collect();
        let empty_sets = |files: &[FlowFile]| {
            files
                .iter()
                .map(|f| f.model.fns.iter().map(|_| BTreeSet::new()).collect())
                .collect()
        };
        let mut engine = Engine {
            files,
            cfg,
            index,
            call_cands,
            rev_deps,
            summaries,
            wall_locals: empty_sets(files),
            shared_locals: empty_sets(files),
            unit_locals: files
                .iter()
                .map(|f| f.model.fns.iter().map(|_| BTreeMap::new()).collect())
                .collect(),
        };
        engine.fixpoint();
        engine
    }

    fn fn_model(&self, r: FnRef) -> &'a FnModel {
        &self.files[r.0].model.fns[r.1]
    }

    /// Memoized resolution for call `ci` of function `r`.
    fn cands(&self, r: FnRef, ci: usize) -> &[FnRef] {
        &self.call_cands[r.0][r.1][ci]
    }

    fn is_test_file(&self, fi: usize) -> bool {
        let p = &self.files[fi].model.path;
        (p.contains("/tests/") || p.contains("/benches/")) && !p.contains("fixtures")
    }

    fn is_test_fn(&self, r: FnRef) -> bool {
        self.fn_model(r).in_test || self.is_test_file(r.0)
    }

    /// Resolve a bare name (no call-site context).
    fn resolve_name(&self, name: &str) -> &[FnRef] {
        match self.index.get(name) {
            Some(c) if c.len() <= MAX_CANDIDATES => c,
            _ => &[],
        }
    }

    fn is_sanctioned(&self, name: &str) -> bool {
        self.cfg.sanctioned_sinks.iter().any(|s| s == name)
    }

    fn is_sink_name(&self, name: &str) -> bool {
        !self.is_sanctioned(name) && self.cfg.taint_sinks.iter().any(|s| s == name)
    }

    /// R10 seed: a panic the function commits directly. Bare `.unwrap()`
    /// only seeds from non-hot files — in hot files R4 already owns the
    /// unwrap line itself, and double-reporting every caller would drown
    /// the signal.
    fn direct_panic(&self, r: FnRef) -> Option<(usize, String)> {
        let f = self.fn_model(r);
        let hot = Config::matches(&self.cfg.hot_markers, &self.files[r.0].model.path);
        f.panic_lines
            .iter()
            .find(|(_, tok)| tok != ".unwrap()" || !hot)
            .cloned()
    }

    /// The whole-program fixpoint over all four summary kinds: a reverse-
    /// dependency worklist. Every function is visited once; after that a
    /// function is revisited only when a callee whose summary it reads
    /// changed, so total work tracks the number of changed edges rather
    /// than `rounds x workspace`.
    fn fixpoint(&mut self) {
        let rev_deps = std::mem::take(&mut self.rev_deps);
        let mut queue: std::collections::VecDeque<FnRef> = std::collections::VecDeque::new();
        let mut queued: BTreeSet<FnRef> = BTreeSet::new();
        for fi in 0..self.files.len() {
            for fj in 0..self.files[fi].model.fns.len() {
                queue.push_back((fi, fj));
                queued.insert((fi, fj));
            }
        }
        // Unit inference is not strictly monotone (a second candidate
        // unit collapses Some -> None), so bound the visit count like the
        // old round loop bounded rounds.
        let mut budget = 64 * queued.len().max(1);
        while let Some(r) = queue.pop_front() {
            queued.remove(&r);
            if budget == 0 {
                break;
            }
            budget -= 1;
            if self.update_fn(r) {
                for &d in rev_deps.get(&r).into_iter().flatten() {
                    if queued.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        self.rev_deps = rev_deps;
    }

    /// Recompute one function's locals and summary; true if anything grew.
    fn update_fn(&mut self, r: FnRef) -> bool {
        let f = self.fn_model(r);
        let mut changed = false;

        // -- locals ----------------------------------------------------
        let wall = self.compute_locals(r, f, &f.source_lines, |e, t| {
            e.summaries[t.0][t.1].taints_return
        });
        let shared = self.compute_locals(r, f, &f.shared_reads, |e, t| {
            e.summaries[t.0][t.1].shared_return
        });
        let units = self.compute_unit_locals(f);
        if wall != self.wall_locals[r.0][r.1] {
            self.wall_locals[r.0][r.1] = wall;
            changed = true;
        }
        if shared != self.shared_locals[r.0][r.1] {
            self.shared_locals[r.0][r.1] = shared;
            changed = true;
        }
        if units != self.unit_locals[r.0][r.1] {
            self.unit_locals[r.0][r.1] = units;
            changed = true;
        }

        // -- summary ---------------------------------------------------
        let taints_return = f.returns_value
            && (f.return_lines.iter().any(|l| f.source_lines.contains(l))
                || f.return_idents
                    .iter()
                    .any(|i| self.wall_locals[r.0][r.1].contains(i))
                || f.return_calls.iter().any(|n| {
                    self.resolve_name(n)
                        .iter()
                        .any(|&t| self.summaries[t.0][t.1].taints_return)
                }));
        let shared_return = f.returns_value
            && (f.return_lines.iter().any(|l| f.shared_reads.contains(l))
                || f.return_idents
                    .iter()
                    .any(|i| self.shared_locals[r.0][r.1].contains(i))
                || f.return_calls.iter().any(|n| {
                    self.resolve_name(n)
                        .iter()
                        .any(|&t| self.summaries[t.0][t.1].shared_return)
                }));
        let may_panic = !self.is_test_fn(r)
            && (self.direct_panic(r).is_some()
                || (0..f.calls.len()).any(|ci| {
                    self.cands(r, ci)
                        .iter()
                        .any(|&t| t != r && self.summaries[t.0][t.1].may_panic)
                }));
        let ret_unit = self.infer_ret_unit(r, f);
        let param_sink: Vec<bool> = (0..f.params.len())
            .map(|k| self.summaries[r.0][r.1].param_sink[k] || self.param_reaches_sink(r, f, k))
            .collect();

        let s = &mut self.summaries[r.0][r.1];
        let next = Summary {
            taints_return,
            shared_return,
            may_panic,
            param_sink,
            ret_unit,
        };
        if s.taints_return != next.taints_return
            || s.shared_return != next.shared_return
            || s.may_panic != next.may_panic
            || s.param_sink != next.param_sink
            || s.ret_unit != next.ret_unit
        {
            *s = next;
            changed = true;
        }
        changed
    }

    /// Intra-procedural taint: locals assigned from seed lines, from
    /// already-tainted locals, or from calls whose return is tainted.
    fn compute_locals(
        &self,
        r: FnRef,
        f: &FnModel,
        seeds: &[usize],
        target_tainted: impl Fn(&Engine, FnRef) -> bool,
    ) -> BTreeSet<String> {
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        for _ in 0..8 {
            let mut grew = false;
            for a in &f.assigns {
                if tainted.contains(&a.lhs) {
                    continue;
                }
                if seeds.contains(&a.line) || a.rhs_idents.iter().any(|i| tainted.contains(i)) {
                    tainted.insert(a.lhs.clone());
                    grew = true;
                }
            }
            for (ci, c) in f.calls.iter().enumerate() {
                let Some(lhs) = &c.assigned_to else { continue };
                if tainted.contains(lhs) {
                    continue;
                }
                if self.cands(r, ci).iter().any(|&t| target_tainted(self, t)) {
                    tainted.insert(lhs.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        tainted
    }

    /// Locals that carry a physical unit: by their own name, or assigned
    /// from a single-unit rhs (an ident or call with a known unit).
    fn compute_unit_locals(&self, f: &FnModel) -> BTreeMap<String, Unit> {
        let mut units: BTreeMap<String, Unit> = BTreeMap::new();
        for _ in 0..4 {
            let mut grew = false;
            for a in &f.assigns {
                if units.contains_key(&a.lhs) || ident_unit(&a.lhs).is_some() {
                    continue;
                }
                let mut found: BTreeSet<Unit> = BTreeSet::new();
                for i in &a.rhs_idents {
                    if let Some(u) = ident_unit(i).or_else(|| units.get(i).copied()) {
                        found.insert(u);
                    }
                }
                for n in &a.rhs_calls {
                    if let Some(u) = self.name_ret_unit(n) {
                        found.insert(u);
                    }
                }
                if found.len() == 1 {
                    units.insert(a.lhs.clone(), *found.iter().next().expect("len 1"));
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        units
    }

    /// Unit a named function returns: the name convention first, then the
    /// workspace definitions (all must agree).
    fn name_ret_unit(&self, name: &str) -> Option<Unit> {
        if let Some(u) = fn_name_unit(name) {
            return Some(u);
        }
        let cands = self.resolve_name(name);
        let units: BTreeSet<Unit> = cands
            .iter()
            .filter_map(|&t| self.summaries[t.0][t.1].ret_unit)
            .collect();
        (units.len() == 1 && !cands.is_empty()).then(|| *units.iter().next().expect("len 1"))
    }

    fn infer_ret_unit(&self, r: FnRef, f: &FnModel) -> Option<Unit> {
        if !f.returns_value {
            return None;
        }
        if let Some(u) = fn_name_unit(&f.name) {
            return Some(u);
        }
        let locals = &self.unit_locals[r.0][r.1];
        let mut found: BTreeSet<Unit> = BTreeSet::new();
        for i in &f.return_idents {
            if let Some(u) = ident_unit(i).or_else(|| locals.get(i).copied()) {
                found.insert(u);
            }
        }
        for n in &f.return_calls {
            if let Some(u) = self.name_ret_unit(n) {
                found.insert(u);
            }
        }
        (found.len() == 1).then(|| *found.iter().next().expect("len 1"))
    }

    /// Does parameter `k` of `r` flow into a sink (directly or through a
    /// callee's sink-reaching parameter)?
    fn param_reaches_sink(&self, r: FnRef, f: &FnModel, k: usize) -> bool {
        let name = &f.params[k].name;
        if name.is_empty() {
            return false;
        }
        for (ci, c) in f.calls.iter().enumerate() {
            if self.is_sink_name(&c.callee) && c.args.iter().flatten().any(|a| a == name) {
                return true;
            }
            if self.is_sanctioned(&c.callee) {
                continue;
            }
            for (ak, arg) in c.args.iter().enumerate() {
                if !arg.iter().any(|a| a == name) {
                    continue;
                }
                if self.cands(r, ci).iter().any(|&t| {
                    self.summaries[t.0][t.1]
                        .param_sink
                        .get(ak)
                        .copied()
                        .unwrap_or(false)
                }) {
                    return true;
                }
            }
        }
        f.struct_lits
            .iter()
            .any(|l| self.is_sink_name(&l.name) && l.idents.iter().any(|i| i == name))
    }

    // -----------------------------------------------------------------
    // Findings.
    // -----------------------------------------------------------------

    fn findings(&self) -> FlowOutput {
        let mut out = FlowOutput::default();
        let mut seen: BTreeSet<(usize, usize, Rule, String)> = BTreeSet::new();

        for (fi, file) in self.files.iter().enumerate() {
            if self.is_test_file(fi) {
                continue;
            }
            let path = &file.model.path;
            let det = Config::matches(&self.cfg.det_markers, path);
            let hot = Config::matches(&self.cfg.hot_markers, path);
            let shared_ok = Config::matches(&self.cfg.shared_state_allowed, path);

            // R9: interior-mutable statics outside the executor.
            if !shared_ok {
                for s in &file.model.statics {
                    if s.in_test || !(s.is_mut || s.interior_mutable) {
                        continue;
                    }
                    let kind = if s.is_mut {
                        "static mut"
                    } else {
                        "interior-mutable static"
                    };
                    self.emit(
                        &mut out,
                        &mut seen,
                        fi,
                        s.line,
                        Rule::SharedState,
                        format!(
                            "{kind} `{}: {}` outside the executor crate; shared \
                             mutability belongs in cmap-exec where joins are \
                             index-ordered (or justify with a pragma)",
                            s.name, s.ty
                        ),
                    );
                }
            }

            for (fj, f) in file.model.fns.iter().enumerate() {
                if self.is_test_fn((fi, fj)) {
                    continue;
                }
                let wall = &self.wall_locals[fi][fj];
                let shared = &self.shared_locals[fi][fj];

                for (ci, c) in f.calls.iter().enumerate() {
                    let cands = self.cands((fi, fj), ci);

                    // R7a: deterministic scope must not call wall-clock
                    // tainted functions at all.
                    if det && !self.is_sanctioned(&c.callee) {
                        if let Some(&t) = cands
                            .iter()
                            .find(|&&t| self.summaries[t.0][t.1].taints_return)
                        {
                            self.emit(
                                &mut out,
                                &mut seen,
                                fi,
                                c.line,
                                Rule::DetTaint,
                                format!(
                                    "`{}` (defined at {}:{}) returns a wall-clock/\
                                     entropy-derived value; deterministic code must \
                                     take time from the simulated clock",
                                    c.callee,
                                    self.files[t.0].model.path,
                                    self.fn_model(t).line
                                ),
                            );
                        }
                    }

                    // R7b/R9b: tainted values into sinks (direct call).
                    if self.is_sink_name(&c.callee) {
                        for arg in c.args.iter().flatten() {
                            self.check_sink_arg(
                                &mut out, &mut seen, fi, c.line, &c.callee, arg, wall, shared,
                            );
                        }
                        if f.source_lines.contains(&c.line) {
                            self.emit(
                                &mut out,
                                &mut seen,
                                fi,
                                c.line,
                                Rule::DetTaint,
                                format!(
                                    "wall-clock expression passed directly to artifact \
                                     sink `{}`; only the sanctioned timing/profile \
                                     sections may carry wall time",
                                    c.callee
                                ),
                            );
                        }
                    }

                    // R7c/R9c: tainted values into a callee parameter that
                    // reaches a sink.
                    if !self.is_sanctioned(&c.callee) {
                        for (ak, arg) in c.args.iter().enumerate() {
                            let sinks = cands.iter().any(|&t| {
                                self.summaries[t.0][t.1]
                                    .param_sink
                                    .get(ak)
                                    .copied()
                                    .unwrap_or(false)
                            });
                            if !sinks {
                                continue;
                            }
                            for a in arg {
                                self.check_sink_arg(
                                    &mut out, &mut seen, fi, c.line, &c.callee, a, wall, shared,
                                );
                            }
                        }
                    }

                    // R10: hot path reaching a panic through a callee.
                    if hot {
                        for &t in cands {
                            if t == (fi, fj) || !self.summaries[t.0][t.1].may_panic {
                                continue;
                            }
                            // Callees inside hot scope get their own
                            // findings at their own boundary calls — unless
                            // they panic directly.
                            let callee_hot =
                                Config::matches(&self.cfg.hot_markers, &self.files[t.0].model.path);
                            if callee_hot && self.direct_panic(t).is_none() {
                                continue;
                            }
                            if let Some(chain) = self.panic_chain(t) {
                                self.emit(
                                    &mut out,
                                    &mut seen,
                                    fi,
                                    c.line,
                                    Rule::PanicReach,
                                    format!(
                                        "hot-path call can reach a panic: {chain}; \
                                         handle the case or document the invariant \
                                         in the callee with `.expect(\"...\")`",
                                    ),
                                );
                            }
                        }
                    }

                    // R8b: unit mismatch across the call boundary.
                    if det {
                        self.check_call_units(&mut out, &mut seen, fi, fj, c, cands);
                    }
                }

                // R7d/R9d: tainted values into sink struct literals.
                for l in &f.struct_lits {
                    if !self.is_sink_name(&l.name) {
                        continue;
                    }
                    if l.has_source {
                        self.emit(
                            &mut out,
                            &mut seen,
                            fi,
                            l.line,
                            Rule::DetTaint,
                            format!(
                                "wall-clock expression inside artifact sink literal \
                                 `{} {{ .. }}`; route wall time through the \
                                 sanctioned timing section instead",
                                l.name
                            ),
                        );
                    }
                    for i in &l.idents {
                        self.check_sink_arg(
                            &mut out, &mut seen, fi, l.line, &l.name, i, wall, shared,
                        );
                    }
                }

                // R8a: mixed-unit additive/comparison expressions.
                if det {
                    for b in &f.bin_ops {
                        self.check_bin_op(&mut out, &mut seen, fi, fj, b);
                    }
                    for c in &f.calls {
                        self.check_clamp_units(&mut out, &mut seen, fi, fj, c);
                    }
                }
            }
        }

        out.violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }

    /// One tainted identifier reaching a sink: emit under the right rule.
    #[allow(clippy::too_many_arguments)]
    fn check_sink_arg(
        &self,
        out: &mut FlowOutput,
        seen: &mut BTreeSet<(usize, usize, Rule, String)>,
        fi: usize,
        line: usize,
        sink: &str,
        arg: &str,
        wall: &BTreeSet<String>,
        shared: &BTreeSet<String>,
    ) {
        let arg_fn_taints = |kind: fn(&Summary) -> bool| {
            self.resolve_name(arg)
                .iter()
                .any(|&t| kind(&self.summaries[t.0][t.1]))
        };
        if wall.contains(arg) || arg_fn_taints(|s| s.taints_return) {
            self.emit(
                out,
                seen,
                fi,
                line,
                Rule::DetTaint,
                format!(
                    "wall-clock/entropy-derived value `{arg}` flows into artifact \
                     sink `{sink}`; only the sanctioned timing/profile sections may \
                     carry wall time"
                ),
            );
        }
        if shared.contains(arg) || arg_fn_taints(|s| s.shared_return) {
            self.emit(
                out,
                seen,
                fi,
                line,
                Rule::SharedState,
                format!(
                    "shared-state-derived value `{arg}` reaches artifact bytes via \
                     `{sink}`; sum per-worker results in join order instead (or \
                     baseline with a reason if the artifact is non-deterministic by \
                     design)"
                ),
            );
        }
    }

    /// Unit of one recorded operand, given the enclosing function.
    fn operand_unit(&self, fi: usize, fj: usize, op: &Operand) -> Option<Unit> {
        match op.kind {
            OperandKind::Ident => {
                ident_unit(&op.name).or_else(|| self.unit_locals[fi][fj].get(&op.name).copied())
            }
            OperandKind::Call => self.name_ret_unit(&op.name),
        }
    }

    /// dBm ± dB is the one sanctioned mixed-unit additive form (link
    /// budgets); everything else must match.
    fn units_compatible(op: &str, a: Unit, b: Unit) -> bool {
        if a == b {
            return true;
        }
        matches!(op, "+" | "-") && matches!((a, b), (Unit::Dbm, Unit::Db) | (Unit::Db, Unit::Dbm))
    }

    fn check_bin_op(
        &self,
        out: &mut FlowOutput,
        seen: &mut BTreeSet<(usize, usize, Rule, String)>,
        fi: usize,
        fj: usize,
        b: &BinOp,
    ) {
        let (Some(lu), Some(ru)) = (
            self.operand_unit(fi, fj, &b.left),
            self.operand_unit(fi, fj, &b.right),
        ) else {
            return;
        };
        if Self::units_compatible(&b.op, lu, ru) {
            return;
        }
        self.emit(
            out,
            seen,
            fi,
            b.line,
            Rule::UnitFlow,
            format!(
                "mixed units in `{} {} {}`: left is {} but right is {}; convert \
                 through phy::units / sim::time first",
                b.left.name,
                b.op,
                b.right.name,
                lu.token(),
                ru.token()
            ),
        );
    }

    /// `a_ns.min(b_us)`-style receiver/argument unit mismatch.
    fn check_clamp_units(
        &self,
        out: &mut FlowOutput,
        seen: &mut BTreeSet<(usize, usize, Rule, String)>,
        fi: usize,
        fj: usize,
        c: &CallSite,
    ) {
        if !c.is_method || !CLAMP_METHODS.contains(&c.callee.as_str()) {
            return;
        }
        let Some(recv) = &c.receiver else { return };
        let Some(ru) = ident_unit(recv).or_else(|| self.unit_locals[fi][fj].get(recv).copied())
        else {
            return;
        };
        let [arg] = c.args.as_slice() else { return };
        let [a] = arg.as_slice() else { return };
        let Some(au) = ident_unit(a).or_else(|| self.unit_locals[fi][fj].get(a).copied()) else {
            return;
        };
        if Self::units_compatible("+", ru, au) {
            return;
        }
        self.emit(
            out,
            seen,
            fi,
            c.line,
            Rule::UnitFlow,
            format!(
                "`{recv}.{}({a})` mixes units: receiver is {} but argument is {}; \
                 convert through phy::units / sim::time first",
                c.callee,
                ru.token(),
                au.token()
            ),
        );
    }

    /// Unit mismatch between a single-unit argument and every resolved
    /// definition's parameter-name unit.
    fn check_call_units(
        &self,
        out: &mut FlowOutput,
        seen: &mut BTreeSet<(usize, usize, Rule, String)>,
        fi: usize,
        fj: usize,
        c: &CallSite,
        cands: &[FnRef],
    ) {
        if cands.is_empty() {
            return;
        }
        for (k, arg) in c.args.iter().enumerate() {
            let arg_units: BTreeSet<Unit> = arg
                .iter()
                .filter_map(|a| ident_unit(a).or_else(|| self.unit_locals[fi][fj].get(a).copied()))
                .collect();
            if arg_units.len() != 1 {
                continue;
            }
            let au = *arg_units.iter().next().expect("len 1");
            // Flag only when every candidate disagrees with the argument;
            // one agreeing overload means the resolution is too fuzzy.
            let param_units: Vec<Option<Unit>> = cands
                .iter()
                .map(|&t| {
                    self.fn_model(t)
                        .params
                        .get(k)
                        .and_then(|p| ident_unit(&p.name))
                })
                .collect();
            let all_known_mismatch = param_units
                .iter()
                .all(|pu| pu.is_some_and(|pu| !Self::units_compatible("+", au, pu)));
            if !all_known_mismatch {
                continue;
            }
            let pu = param_units[0].expect("all known");
            let t = cands[0];
            self.emit(
                out,
                seen,
                fi,
                c.line,
                Rule::UnitFlow,
                format!(
                    "argument {} of `{}` carries {} but the parameter `{}` (defined \
                     at {}:{}) expects {}; convert before the call",
                    k + 1,
                    c.callee,
                    au.token(),
                    self.fn_model(t).params[k].name,
                    self.files[t.0].model.path,
                    self.fn_model(t).line,
                    pu.token()
                ),
            );
        }
    }

    /// A witness chain from `start` to a function that panics directly:
    /// `a → b → c (panic! at path:line)`.
    fn panic_chain(&self, start: FnRef) -> Option<String> {
        let mut parent: BTreeMap<FnRef, FnRef> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut target: Option<(FnRef, usize, String)> = None;
        let mut visited: BTreeSet<FnRef> = BTreeSet::from([start]);
        'bfs: while let Some(r) = queue.pop_front() {
            if let Some((line, tok)) = self.direct_panic(r) {
                target = Some((r, line, tok));
                break 'bfs;
            }
            if parent_depth(&parent, r) >= 8 {
                continue;
            }
            for ci in 0..self.fn_model(r).calls.len() {
                for &t in self.cands(r, ci) {
                    if self.summaries[t.0][t.1].may_panic && visited.insert(t) {
                        parent.insert(t, r);
                        queue.push_back(t);
                    }
                }
            }
        }
        let (end, line, tok) = target?;
        let mut names = vec![format!(
            "`{}` ({} at {}:{})",
            self.fn_model(end).name,
            tok,
            self.files[end.0].model.path,
            line
        )];
        let mut cur = end;
        while let Some(&p) = parent.get(&cur) {
            names.push(format!("`{}`", self.fn_model(p).name));
            cur = p;
        }
        names.reverse();
        Some(names.join(" → "))
    }

    /// Emit one finding unless a pragma covers it; dedup by
    /// (file, line, rule, message).
    fn emit(
        &self,
        out: &mut FlowOutput,
        seen: &mut BTreeSet<(usize, usize, Rule, String)>,
        fi: usize,
        line: usize,
        rule: Rule,
        message: String,
    ) {
        if !seen.insert((fi, line, rule, message.clone())) {
            return;
        }
        let file = &self.files[fi];
        if let Some(pragma_line) = file.scan.allows(line, rule) {
            out.pragma_uses.push((fi, pragma_line, rule));
            return;
        }
        out.violations.push(Violation {
            path: file.model.path.clone(),
            line,
            rule,
            message,
            snippet: file
                .raw
                .get(line.saturating_sub(1))
                .map_or("", |s| s.trim())
                .to_string(),
            fix: None,
        });
    }
}

fn parent_depth(parent: &BTreeMap<FnRef, FnRef>, mut r: FnRef) -> usize {
    let mut d = 0;
    while let Some(&p) = parent.get(&r) {
        d += 1;
        r = p;
        if d > 16 {
            break;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_model;
    use crate::scan_file;

    fn flow_one(path: &str, src: &str) -> Vec<Violation> {
        let cfg = Config::default();
        let model = build_model(path, src);
        let scan = scan_file(path, src, &cfg);
        let files = vec![FlowFile {
            model: &model,
            scan: &scan,
            raw: src.lines().collect(),
        }];
        run(&files, &cfg).violations
    }

    #[test]
    fn taint_through_helper_reaches_sink() {
        let src = "\
fn stamp_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
fn report() {
    let t = stamp_ns();
    metric(\"wall\", t);
}
fn metric(_k: &str, _v: u128) {}
";
        let v = flow_one("crates/obs/src/fixture.rs", src);
        assert!(
            v.iter().any(|v| v.rule == Rule::DetTaint && v.line == 7),
            "{v:#?}"
        );
    }

    #[test]
    fn unit_mismatch_through_locals() {
        let src = "\
fn dur_us() -> u64 {
    5
}
fn f(t_ns: u64) -> u64 {
    let d = dur_us();
    t_ns + d
}
";
        let v = flow_one("crates/sim/src/fixture.rs", src);
        assert!(
            v.iter()
                .any(|v| v.rule == Rule::UnitFlow && v.message.contains("mixed units")),
            "{v:#?}"
        );
    }

    #[test]
    fn dbm_plus_db_is_sanctioned() {
        let src = "\
fn link(p_dbm: f64, loss_db: f64) -> f64 {
    p_dbm - loss_db
}
";
        let v = flow_one("crates/phy/src/fixture.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::UnitFlow), "{v:#?}");
    }

    #[test]
    fn panic_reach_through_callee() {
        let src = "\
fn lookup(v: &[u32], i: usize) -> u32 {
    *v.get(i).unwrap()
}
fn hot_loop(v: &[u32]) -> u32 {
    lookup(v, 0)
}
";
        // File outside hot scope defines lookup; simulate by two files.
        let cfg = Config::default();
        let helper_src = "fn lookup(v: &[u32], i: usize) -> u32 {\n    *v.get(i).unwrap()\n}\n";
        let hot_src = "fn hot_loop(v: &[u32]) -> u32 {\n    lookup(v, 0)\n}\n";
        let helper_model = build_model("crates/topo/src/fixture.rs", helper_src);
        let hot_model = build_model("crates/sim/src/fixture.rs", hot_src);
        let helper_scan = scan_file("crates/topo/src/fixture.rs", helper_src, &cfg);
        let hot_scan = scan_file("crates/sim/src/fixture.rs", hot_src, &cfg);
        let files = vec![
            FlowFile {
                model: &helper_model,
                scan: &helper_scan,
                raw: helper_src.lines().collect(),
            },
            FlowFile {
                model: &hot_model,
                scan: &hot_scan,
                raw: hot_src.lines().collect(),
            },
        ];
        let v = run(&files, &cfg).violations;
        assert!(
            v.iter().any(|v| v.rule == Rule::PanicReach
                && v.path.contains("sim")
                && v.message.contains("lookup")),
            "{v:#?}"
        );
        let _ = src;
    }

    #[test]
    fn shared_static_outside_exec_flagged() {
        let src = "\
static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
fn totals() -> u64 {
    HITS.load(std::sync::atomic::Ordering::Relaxed)
}
fn report() {
    let h = totals();
    metric(\"hits\", h);
}
fn metric(_k: &str, _v: u64) {}
";
        let v = flow_one("crates/stats/src/fixture.rs", src);
        assert!(
            v.iter().any(|v| v.rule == Rule::SharedState && v.line == 1),
            "{v:#?}"
        );
        assert!(
            v.iter().any(|v| v.rule == Rule::SharedState && v.line == 7),
            "{v:#?}"
        );
    }
}
