//! `cmap-analyze`: workspace-aware determinism & unit-safety static
//! analysis for the CMAP workspace.
//!
//! The paper's evaluation (NSDI 2008, Figs 12–20) is only reproducible if
//! the same seed yields the same packet trace. This tool enforces the
//! source-level invariants that keep that true, in two layers.
//!
//! **Token layer** (this module): a per-file lexer enforcing six rules:
//!
//! * **R1 `hash-iter`** — iterating a `HashMap`/`HashSet` in a
//!   deterministic crate leaks nondeterministic order into results. Use
//!   `BTreeMap`/`BTreeSet`, sort explicitly, or justify with a pragma.
//! * **R2 `wall-clock`** — `Instant`/`SystemTime`, `thread_rng`,
//!   `from_entropy` and environment-derived seeds smuggle ambient state
//!   into a run. All randomness must come from the seeded stream RNGs.
//! * **R3 `float-cmp`** — `==`/`!=` against float literals, and NaN-prone
//!   `partial_cmp()` chains, in SINR/BER arithmetic. Use epsilon
//!   comparisons and `f64::total_cmp`.
//! * **R4 `panic-budget`** — bare `.unwrap()` in simulator hot paths
//!   (`core::mac`, `cmap-sim`). Handle the case, or use
//!   `.expect("<invariant>")` to document why it cannot fail.
//! * **R5 `unit-cast`** — raw `as u64`/`as f64` casts on time/power values
//!   outside the sanctioned conversion modules (`phy::units`, `phy::rate`,
//!   `sim::time`, `sim::event`). Route through the unit helpers.
//! * **R6 `thread-spawn`** — `thread::spawn`/`thread::scope`/
//!   `available_parallelism` outside the approved executor module
//!   (`crates/exec`). Ad-hoc threading sidesteps the executor's
//!   determinism argument (index-ordered joins, per-run isolation); fan
//!   work out through `cmap_exec::Pool` instead.
//!
//! **Symbol layer** (the [`model`] + [`flow`] modules, orchestrated by
//! [`analyze`]): the whole workspace is parsed into a lightweight
//! item/symbol model — functions, signatures, call edges by name
//! resolution, statics — and four flow-sensitive interprocedural rules run
//! on top:
//!
//! * **R7 `det-taint`** — wall-clock/entropy/parallelism-derived values may
//!   not flow (through locals, returns and call edges) into deterministic
//!   code or artifact-bearing sinks. The `timing` block and `LoopProfile`
//!   sinks are the sanctioned exceptions.
//! * **R8 `unit-flow`** — `ns`/`us`/`ms`/`slots`/`dBm`/`mW`-bearing values
//!   tracked through arithmetic and call boundaries; mixed-unit additive
//!   expressions and unit-mismatched arguments are flagged even when the
//!   units travel through helper returns R5's cast rule cannot see.
//! * **R9 `shared-state`** — `static` atomics / `static mut` /
//!   interior-mutable statics outside the executor crate, and any
//!   shared-state-derived value that can reach artifact bytes.
//! * **R10 `panic-reach`** — a call chain from an event-loop hot path into
//!   `panic!`/bare `.unwrap()` in a callee (which R4, being per-file,
//!   misses).
//!
//! A pragma that suppresses zero findings is itself reported
//! (**`stale-pragma`**) — dead suppressions rot the audit trail.
//!
//! A justified exception is written as a pragma comment on the offending
//! line (or on a comment line directly above it):
//!
//! ```text
//! // cmap-lint: allow(wall-clock) — progress reporting only, not simulation state
//! ```
//!
//! The reason text after the dash is mandatory; an allow without a reason
//! is itself a violation.
//!
//! The analysis is a line-level lexer, not a type checker: it strips
//! comments and string literals, tracks `#[cfg(test)] mod` regions by brace
//! depth, and resolves receivers of iteration calls against the set of
//! identifiers declared as hash containers in the same file. That is
//! deliberately conservative and cheap — it runs in milliseconds over the
//! workspace and needs no dependencies — at the cost of file-local
//! resolution only (a `HashMap` returned across a crate boundary and
//! iterated elsewhere is not caught; `clippy` and review cover that gap).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod analyze;
pub mod baseline;
pub mod cache;
pub mod flow;
pub mod jsonv;
pub mod model;
pub mod sarif;

/// The enforced invariants: six token-layer rules, four interprocedural
/// symbol-layer rules, and the pragma-hygiene rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: hash-ordered iteration in deterministic code.
    HashIter,
    /// R2: wall-clock time or ambient entropy.
    WallClock,
    /// R3: float equality / NaN-prone comparison chains.
    FloatCmp,
    /// R4: bare `.unwrap()` (or an empty `.expect("")`) in hot paths.
    PanicBudget,
    /// R5: raw unit-bearing casts outside conversion modules.
    UnitCast,
    /// R6: thread spawns / parallelism probes outside the executor module.
    ThreadSpawn,
    /// R7: wall-clock/entropy-derived values flowing into deterministic
    /// code or artifact sinks through call edges.
    DetTaint,
    /// R8: mixed-unit arithmetic or unit-mismatched call arguments.
    UnitFlow,
    /// R9: interior-mutable statics outside the executor, or shared-state
    /// values reaching artifact bytes.
    SharedState,
    /// R10: a hot-path call chain reaching `panic!`/bare `.unwrap()`.
    PanicReach,
    /// A justified pragma that suppresses zero findings.
    StalePragma,
}

impl Rule {
    /// All rules, in R1..R10 + stale-pragma order.
    pub const ALL: [Rule; 11] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::FloatCmp,
        Rule::PanicBudget,
        Rule::UnitCast,
        Rule::ThreadSpawn,
        Rule::DetTaint,
        Rule::UnitFlow,
        Rule::SharedState,
        Rule::PanicReach,
        Rule::StalePragma,
    ];

    /// The pragma / diagnostic code for the rule.
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatCmp => "float-cmp",
            Rule::PanicBudget => "panic-budget",
            Rule::UnitCast => "unit-cast",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::DetTaint => "det-taint",
            Rule::UnitFlow => "unit-flow",
            Rule::SharedState => "shared-state",
            Rule::PanicReach => "panic-reach",
            Rule::StalePragma => "stale-pragma",
        }
    }

    /// One-line rule description (SARIF rule metadata).
    pub fn description(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-ordered iteration leaks nondeterministic order",
            Rule::WallClock => "wall-clock time or ambient entropy in a run",
            Rule::FloatCmp => "exact float comparison or NaN-prone ordering",
            Rule::PanicBudget => "undocumented panic in a simulator hot path",
            Rule::UnitCast => "raw unit-bearing cast outside conversion modules",
            Rule::ThreadSpawn => "threading primitive outside the approved executor",
            Rule::DetTaint => "wall-clock/entropy-derived value flows into deterministic code or an artifact sink",
            Rule::UnitFlow => "mixed physical units across arithmetic or a call boundary",
            Rule::SharedState => "interior-mutable static outside the executor, or shared state reaching artifact bytes",
            Rule::PanicReach => "hot-path call chain reaches panic!/unwrap in a callee",
            Rule::StalePragma => "suppression pragma that silences zero findings",
        }
    }

    /// Parse a pragma code.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.code() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A machine-applicable suggested fix: replace the byte span
/// `[col_start, col_end)` (0-based, within the raw source line) with
/// `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// 0-based byte offset of the span start within the line.
    pub col_start: usize,
    /// 0-based byte offset one past the span end.
    pub col_end: usize,
    /// Replacement text (may contain `<placeholders>` for the author).
    pub replacement: String,
    /// What applying the fix does.
    pub description: String,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path as given on the command line.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Suggested fix span, when one is mechanical enough to propose.
    pub fix: Option<Fix>,
}

/// Scan scoping: which paths count as deterministic, hot, sanctioned or
/// skipped. All matching is by substring of the `/`-normalised path.
#[derive(Debug, Clone)]
pub struct Config {
    /// Paths whose code must be deterministic (R1/R3/R5 scope).
    pub det_markers: Vec<String>,
    /// Hot paths with a panic budget (R4 scope).
    pub hot_markers: Vec<String>,
    /// Sanctioned unit-conversion modules (R5 exempt).
    pub unit_cast_allowed: Vec<String>,
    /// The approved executor module(s): the only places allowed to spawn
    /// threads or probe machine parallelism (R6 exempt).
    pub thread_spawn_allowed: Vec<String>,
    /// Never scanned when reached by directory walking (still scanned when
    /// named explicitly as a root — how the fixture self-tests run).
    pub skip_markers: Vec<String>,
    /// Artifact-bearing sink names (function or struct-literal names):
    /// report writers, snapshot serializers, perf artifacts. A taint or
    /// shared-state value reaching one of these is an R7/R9 finding.
    pub taint_sinks: Vec<String>,
    /// Sanctioned exception sinks: wall-clock-derived values are allowed
    /// here by design (the `timing` block and the `LoopProfile` profiler).
    pub sanctioned_sinks: Vec<String>,
    /// Modules allowed to declare interior-mutable statics (R9 exempt):
    /// the executor's pool meters.
    pub shared_state_allowed: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        let v = |items: &[&str]| items.iter().map(|s| s.to_string()).collect();
        Config {
            det_markers: v(&[
                "crates/core/src",
                "crates/sim/src",
                "crates/phy/src",
                "crates/wire/src",
                "crates/topo/src",
                "crates/stats/src",
                "crates/mac80211/src",
                "crates/experiments/src",
                "crates/obs/src",
                "tests/fixtures",
            ]),
            hot_markers: v(&["crates/core/src/mac.rs", "crates/sim/src", "tests/fixtures"]),
            unit_cast_allowed: v(&[
                "crates/phy/src/units.rs",
                "crates/phy/src/rate.rs",
                "crates/sim/src/time.rs",
                "crates/sim/src/event.rs",
            ]),
            thread_spawn_allowed: v(&["crates/exec/src"]),
            skip_markers: v(&["/target/", "/vendor/", "crates/lint/tests/fixtures"]),
            taint_sinks: v(&[
                // Run/suite report writers and their metric entry point.
                "RunReport",
                "SuiteReport",
                "metric",
                // Deterministic snapshots compared byte-for-byte in tests.
                "snapshot",
                "Snapshot",
                // The tracked perf artifact (wall-clock flows into it need
                // an explicit baseline entry — the file is non-deterministic
                // by design, and the audit trail must say so).
                "FigurePerf",
                "PerfReport",
            ]),
            sanctioned_sinks: v(&[
                "TimingBlock",
                "LoopProfile",
                "set_pool",
                "record_slice",
                "profile_event_loop",
            ]),
            shared_state_allowed: v(&["crates/exec/src"]),
        }
    }
}

impl Config {
    fn matches(markers: &[String], path: &str) -> bool {
        markers.iter().any(|m| path.contains(m.as_str()))
    }
}

/// Result of scanning a set of roots.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, ordered by (path, line).
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Scan files and directories. Directories are walked recursively for
/// `.rs` files; `cfg.skip_markers` prune the walk but never an explicit
/// root argument.
pub fn scan_paths(roots: &[PathBuf], cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for root in roots {
        if root.is_dir() {
            collect_rs_files(root, cfg, &mut files)?;
        } else if root.is_file() {
            files.push(root.clone());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", root.display()),
            ));
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for file in &files {
        let display = file.display().to_string().replace('\\', "/");
        let source = fs::read_to_string(file)?;
        report
            .violations
            .extend(scan_source(&display, &source, cfg));
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let display = path.display().to_string().replace('\\', "/");
        if Config::matches(&cfg.skip_markers, &display) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, cfg, out)?;
        } else if display.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One pragma found in comments.
#[derive(Debug, Clone)]
struct Pragma {
    rules: Vec<Rule>,
    has_reason: bool,
    /// Whether the pragma's line has no code of its own (applies to the
    /// next code line instead).
    standalone: bool,
    line: usize,
}

/// A justified pragma, as seen by the symbol layer and the stale-pragma
/// check: which rules it allows, which line it sits on, and the lines it
/// silences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaSummary {
    /// 1-based line of the pragma comment.
    pub line: usize,
    /// Rules the pragma allows.
    pub rules: Vec<Rule>,
    /// The lines this pragma silences (its own line and, for standalone
    /// pragmas, the next code line).
    pub targets: Vec<usize>,
}

/// The token-layer scan of one file, with everything the symbol layer and
/// the stale-pragma audit need later.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// Token-layer findings, pragma suppression already applied.
    pub violations: Vec<Violation>,
    /// All justified pragmas in the file.
    pub pragmas: Vec<PragmaSummary>,
    /// `(pragma_line, rule)` pairs that suppressed at least one
    /// token-layer finding.
    pub used_pragmas: Vec<(usize, Rule)>,
}

impl FileScan {
    /// Whether a symbol-layer finding at `line` for `rule` is silenced by
    /// a pragma; records the use so the pragma is not reported stale.
    pub fn allows(&self, line: usize, rule: Rule) -> Option<usize> {
        for p in &self.pragmas {
            if p.rules.contains(&rule) && p.targets.contains(&line) {
                return Some(p.line);
            }
        }
        None
    }
}

/// Per-line lexed form of a file.
pub(crate) struct Lexed {
    /// Code with comments and literal contents blanked, one per line.
    pub(crate) code: Vec<String>,
    /// Comment text per line (for pragma parsing).
    pub(crate) comments: Vec<String>,
    /// Raw lines (for snippets).
    pub(crate) raw: Vec<String>,
}

/// Scan a single file's source text. `path` is used for scoping and for
/// the `path` field of the produced violations.
pub fn scan_source(path: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    scan_file(path, source, cfg).violations
}

/// Token-layer scan returning the full [`FileScan`] (findings plus pragma
/// bookkeeping for the symbol layer).
pub fn scan_file(path: &str, source: &str, cfg: &Config) -> FileScan {
    let lexed = lex(source);
    scan_lexed(path, &lexed, cfg)
}

fn scan_lexed(path: &str, lexed: &Lexed, cfg: &Config) -> FileScan {
    let in_test = test_regions(&lexed.code);
    let pragmas = collect_pragmas(lexed);
    let allow = resolve_pragma_targets(&pragmas, lexed);

    let det = Config::matches(&cfg.det_markers, path);
    let hot = Config::matches(&cfg.hot_markers, path);
    let unit_ok = Config::matches(&cfg.unit_cast_allowed, path);
    let spawn_ok = Config::matches(&cfg.thread_spawn_allowed, path);
    // Integration-test and bench targets are not simulation state; the
    // fixtures directory is exempt from this exemption so the self-tests
    // exercise every rule.
    let test_file =
        (path.contains("/tests/") || path.contains("/benches/")) && !path.contains("fixtures");

    let hash_names = collect_hash_names(&lexed.code);

    let mut out = Vec::new();

    // Pragmas without a reason are violations of the rule they try to
    // silence (reported regardless of scope: an unjustified allow is
    // always wrong).
    for p in &pragmas {
        if !p.has_reason {
            for &rule in &p.rules {
                out.push(Violation {
                    path: path.to_string(),
                    line: p.line,
                    rule,
                    message: format!(
                        "allow({}) pragma without a justification; write \
                         `// cmap-lint: allow({}) — <reason>`",
                        rule.code(),
                        rule.code()
                    ),
                    snippet: lexed.raw[p.line - 1].trim().to_string(),
                    fix: None,
                });
            }
        }
    }

    let mut used_pragmas: Vec<(usize, Rule)> = Vec::new();
    let mut emit = |line: usize, rule: Rule, message: String, fix: Option<Fix>, lexed: &Lexed| {
        if let Some(entries) = allow.get(&line) {
            if let Some(&(_, pragma_line)) = entries.iter().find(|&&(r, _)| r == rule) {
                used_pragmas.push((pragma_line, rule));
                return;
            }
        }
        out.push(Violation {
            path: path.to_string(),
            line,
            rule,
            message,
            snippet: lexed.raw[line - 1].trim().to_string(),
            fix,
        });
    };

    for (idx, code) in lexed.code.iter().enumerate() {
        let line = idx + 1;
        let is_test = in_test[idx] || test_file;

        // R1 hash-iter: deterministic scope, test code included (ordering
        // bugs in tests are flaky tests).
        if det {
            for name in iterated_receivers(&lexed.code, idx) {
                if hash_names.contains(&name) {
                    emit(
                        line,
                        Rule::HashIter,
                        format!(
                            "iteration over hash-ordered container `{name}` leaks \
                             nondeterministic order; use BTreeMap/BTreeSet or sort \
                             before iterating"
                        ),
                        None,
                        lexed,
                    );
                }
            }
        }

        // R2 wall-clock/entropy: everywhere, including bench binaries
        // (bench wall-clock use is legitimate but must carry a pragma so
        // the exception is visible and reviewed).
        if let Some(tok) = wall_clock_token(code, &lexed.raw[idx]) {
            emit(
                line,
                Rule::WallClock,
                format!(
                    "`{tok}` injects ambient state into a run; derive all \
                     randomness/time from the seeded simulation clock and \
                     stream RNGs"
                ),
                None,
                lexed,
            );
        }

        // R3 float discipline: deterministic scope, non-test code.
        if det && !is_test {
            if let Some(tok) = float_literal_eq(code) {
                emit(
                    line,
                    Rule::FloatCmp,
                    format!(
                        "exact float comparison against `{tok}`; use an epsilon \
                         or restructure the sentinel"
                    ),
                    None,
                    lexed,
                );
            }
            if code.contains(".partial_cmp(") && !code.contains("fn partial_cmp") {
                emit(
                    line,
                    Rule::FloatCmp,
                    "NaN-prone `partial_cmp` chain in simulation arithmetic; \
                     use `f64::total_cmp` (or handle the None)"
                        .to_string(),
                    None,
                    lexed,
                );
            }
        }

        // R4 panic budget: hot paths, non-test code. An `.expect` whose
        // invariant text is empty or whitespace-only is a laundered
        // unwrap: it satisfies the token search while documenting nothing,
        // so it gets the same treatment (mirroring the mandatory
        // pragma-reason rule).
        if hot && !is_test {
            if code.contains(".unwrap()") {
                let fix = code.find(".unwrap()").map(|at| Fix {
                    col_start: at,
                    col_end: at + ".unwrap()".len(),
                    replacement: ".expect(\"<why this cannot fail>\")".to_string(),
                    description: "document the invariant that makes the panic unreachable"
                        .to_string(),
                });
                emit(
                    line,
                    Rule::PanicBudget,
                    "bare `.unwrap()` in a simulator hot path; handle the case or \
                     document the invariant with `.expect(\"...\")`"
                        .to_string(),
                    fix,
                    lexed,
                );
            }
            if let Some((start, end)) = empty_expect_span(code, &lexed.raw[idx]) {
                emit(
                    line,
                    Rule::PanicBudget,
                    "`.expect(\"\")` with an empty/whitespace invariant string \
                     documents nothing; state why the panic is unreachable \
                     (reason text is mandatory, as for pragmas)"
                        .to_string(),
                    Some(Fix {
                        col_start: start,
                        col_end: end,
                        replacement: "\"<why this cannot fail>\"".to_string(),
                        description: "fill in the invariant text".to_string(),
                    }),
                    lexed,
                );
            }
        }

        // R5 unit casts: deterministic scope, non-test, outside the
        // sanctioned conversion modules.
        if det && !is_test && !unit_ok {
            if let Some((cast, unit)) = unit_cast(code) {
                emit(
                    line,
                    Rule::UnitCast,
                    format!(
                        "raw `{cast}` on unit-bearing value `{unit}`; route \
                         through phy::units / sim::time helpers (or use \
                         `u64::from` for widening)"
                    ),
                    None,
                    lexed,
                );
            }
        }

        // R6 thread-spawn: everywhere (tests included — a test that spawns
        // its own threads dodges the pool's ordered-join guarantee too),
        // outside the approved executor module.
        if !spawn_ok {
            if let Some(tok) = thread_spawn_token(code) {
                emit(
                    line,
                    Rule::ThreadSpawn,
                    format!(
                        "`{tok}` outside the approved executor; fan work out \
                         through `cmap_exec::Pool` so joins stay index-ordered \
                         and pool width never reaches artifact bytes"
                    ),
                    None,
                    lexed,
                );
            }
        }
    }

    let summaries = pragmas
        .iter()
        .filter(|p| p.has_reason)
        .map(|p| {
            let mut targets = vec![p.line];
            if p.standalone {
                for (j, code) in lexed.code.iter().enumerate().skip(p.line) {
                    if !code.trim().is_empty() {
                        targets.push(j + 1);
                        break;
                    }
                }
            }
            PragmaSummary {
                line: p.line,
                rules: p.rules.clone(),
                targets,
            }
        })
        .collect();

    FileScan {
        violations: out,
        pragmas: summaries,
        used_pragmas,
    }
}

/// The span of an `.expect("...")` whose string is empty or
/// whitespace-only, as `(col_start, col_end)` byte offsets of the string
/// literal (quotes included) within the raw line.
fn empty_expect_span(code: &str, raw: &str) -> Option<(usize, usize)> {
    let mut search = 0;
    while let Some(pos) = code[search..].find(".expect(") {
        let at = search + pos;
        search = at + ".expect(".len();
        // Columns line up between `code` and `raw` by construction: the
        // lexer blanks literal *contents* but preserves byte positions.
        let open = at + ".expect(".len();
        let rest = raw.get(open..)?;
        if !rest.starts_with('"') {
            continue;
        }
        let close_rel = rest[1..].find('"')?;
        let content = &rest[1..1 + close_rel];
        if content.trim().is_empty() && !content.contains('\\') {
            return Some((open, open + close_rel + 2));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Lexing: blank comments and literal contents, preserve line structure.
// ---------------------------------------------------------------------------

pub(crate) fn lex(source: &str) -> Lexed {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }

    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut raw_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut raw = String::new();
    let mut state = State::Code;

    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            raw_lines.push(std::mem::take(&mut raw));
            continue;
        }
        raw.push(c);
        match state {
            State::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    raw.push('/');
                    state = State::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    raw.push('*');
                    state = State::BlockComment(1);
                }
                '"' => {
                    code.push('"');
                    state = State::Str;
                }
                'r' if matches!(chars.peek(), Some('"') | Some('#')) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut lookahead = chars.clone();
                    while lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        hashes += 1;
                    }
                    if lookahead.peek() == Some(&'"') {
                        for _ in 0..hashes {
                            let h = chars.next().expect("lookahead saw it");
                            raw.push(h);
                        }
                        let q = chars.next().expect("lookahead saw it");
                        raw.push(q);
                        code.push('r');
                        code.push('"');
                        state = State::RawStr(hashes);
                    } else {
                        code.push('r');
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars; a lifetime is followed by an identifier
                    // and no closing quote.
                    let mut lookahead = chars.clone();
                    let mut is_char = false;
                    match lookahead.next() {
                        Some('\\') => is_char = true,
                        Some(_) if lookahead.next() == Some('\'') => is_char = true,
                        _ => {}
                    }
                    if is_char {
                        code.push('\'');
                        state = State::Char;
                    } else {
                        code.push('\'');
                    }
                }
                _ => code.push(c),
            },
            State::LineComment => comment.push(c),
            State::BlockComment(depth) => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    raw.push('/');
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    raw.push('*');
                    state = State::BlockComment(depth + 1);
                } else {
                    comment.push(c);
                }
            }
            State::Str => match c {
                '\\' => {
                    if let Some(&esc) = chars.peek() {
                        chars.next();
                        raw.push(esc);
                    }
                }
                '"' => {
                    code.push('"');
                    state = State::Code;
                }
                _ => code.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut lookahead = chars.clone();
                    let mut matched = 0u32;
                    while matched < hashes && lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        matched += 1;
                    }
                    if matched == hashes {
                        for _ in 0..hashes {
                            let h = chars.next().expect("lookahead saw it");
                            raw.push(h);
                        }
                        code.push('"');
                        state = State::Code;
                    } else {
                        code.push(' ');
                    }
                } else {
                    code.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    if let Some(&esc) = chars.peek() {
                        chars.next();
                        raw.push(esc);
                    }
                    code.push(' ');
                }
                '\'' => {
                    code.push('\'');
                    state = State::Code;
                }
                _ => code.push(' '),
            },
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    raw_lines.push(raw);

    Lexed {
        code: code_lines,
        comments: comment_lines,
        raw: raw_lines,
    }
}

// ---------------------------------------------------------------------------
// Test-region tracking.
// ---------------------------------------------------------------------------

/// `in_test[i]` is true when line `i+1` is inside a `#[cfg(test)] mod`
/// region (tracked by brace depth).
pub(crate) fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_depth: Option<i64> = None;

    for (i, line) in code.iter().enumerate() {
        let compact: String = line.split_whitespace().collect();
        if compact.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let starts_mod = test_depth.is_none()
            && pending_cfg_test
            && (compact.starts_with("mod") || compact.contains("]mod") || line.contains("mod "))
            && line.contains('{');
        if starts_mod {
            test_depth = Some(depth);
            pending_cfg_test = false;
        }
        if test_depth.is_some() {
            in_test[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth <= td {
                            test_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

// ---------------------------------------------------------------------------
// Pragmas.
// ---------------------------------------------------------------------------

fn collect_pragmas(lexed: &Lexed) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (i, comment) in lexed.comments.iter().enumerate() {
        // Doc comments (`///`, `//!`) are documentation, not directives —
        // a pragma quoted in rustdoc must not suppress (or count as stale).
        if comment.starts_with('/') || comment.starts_with('!') {
            continue;
        }
        // Both spellings are accepted: `cmap-lint:` predates the symbol
        // layer and appears throughout the workspace.
        let Some((pos, tag)) = ["cmap-lint:", "cmap-analyze:"]
            .into_iter()
            .find_map(|tag| comment.find(tag).map(|pos| (pos, tag)))
        else {
            continue;
        };
        let rest = &comment[pos + tag.len()..];
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<Rule> = rest[..close]
            .split(',')
            .filter_map(|s| Rule::parse(s.trim()))
            .collect();
        if rules.is_empty() {
            continue;
        }
        // Reason: anything substantive after the closing paren and a dash
        // or colon separator.
        let after = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim();
        let has_reason = after.len() >= 3;
        let standalone = lexed.code[i].trim().is_empty();
        out.push(Pragma {
            rules,
            has_reason,
            standalone,
            line: i + 1,
        });
    }
    out
}

/// Map each justified pragma to the lines it silences, keeping the
/// pragma's own line so suppressions can be attributed (stale detection).
fn resolve_pragma_targets(
    pragmas: &[Pragma],
    lexed: &Lexed,
) -> std::collections::BTreeMap<usize, Vec<(Rule, usize)>> {
    let mut allow: std::collections::BTreeMap<usize, Vec<(Rule, usize)>> =
        std::collections::BTreeMap::new();
    for p in pragmas {
        if !p.has_reason {
            continue;
        }
        let mut targets = vec![p.line];
        if p.standalone {
            // Applies to the next line with actual code.
            for (j, code) in lexed.code.iter().enumerate().skip(p.line) {
                if !code.trim().is_empty() {
                    targets.push(j + 1);
                    break;
                }
            }
        }
        for t in targets {
            allow
                .entry(t)
                .or_default()
                .extend(p.rules.iter().map(|&r| (r, p.line)));
        }
    }
    allow
}

// ---------------------------------------------------------------------------
// R1: hash container declarations and iteration receivers.
// ---------------------------------------------------------------------------

/// Identifiers declared with a `HashMap`/`HashSet` type in this file.
fn collect_hash_names(code: &[String]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for line in code {
        for marker in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(pos) = line[start..].find(marker) {
                let abs = start + pos;
                start = abs + marker.len();
                // Type annotation form: `name: HashMap<...>` (fields, lets,
                // fn params) or constructor form: `name = HashMap::new()`.
                let before = &line[..abs];
                // Reference/mut sigils between the name and the type
                // (`m: &HashMap<..>`, `m: &mut HashMap<..>`) don't change
                // ownership of the binding for our purposes.
                let sep = before
                    .trim_end()
                    .trim_end_matches("mut")
                    .trim_end()
                    .trim_end_matches('&')
                    .trim_end();
                let name = if let Some(pre) = sep.strip_suffix(':') {
                    last_ident(pre)
                } else if let Some(pre) = sep.strip_suffix('=') {
                    last_ident(pre)
                } else {
                    None
                };
                if let Some(n) = name {
                    names.insert(n);
                }
            }
        }
    }
    names
}

pub(crate) fn last_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |i| i + c_len(trimmed, i));
    let ident = &trimmed[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(ident.to_string())
    }
}

pub(crate) fn c_len(s: &str, i: usize) -> usize {
    s[i..].chars().next().map_or(1, |c| c.len_utf8())
}

/// Receivers of order-sensitive iteration calls on line `idx`, plus `for`
/// loop sources. A method call at the start of a line (builder-chain style)
/// resolves its receiver from the nearest preceding non-empty code line.
fn iterated_receivers(lines: &[String], idx: usize) -> Vec<String> {
    const METHODS: [&str; 10] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".retain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    let code = &lines[idx];
    let mut out = Vec::new();
    for m in METHODS {
        let mut start = 0;
        while let Some(pos) = code[start..].find(m) {
            let abs = start + pos;
            start = abs + m.len();
            if let Some(name) = last_ident(&code[..abs]) {
                out.push(name);
            } else if code[..abs].trim().is_empty() {
                // Chained call continuing the previous line.
                if let Some(prev) = lines[..idx].iter().rev().find(|l| !l.trim().is_empty()) {
                    if let Some(name) = last_ident(prev) {
                        out.push(name);
                    }
                }
            }
        }
    }
    // `for x in [&mut] [self.]name ... {`
    if let Some(for_pos) = find_word(code, "for") {
        if let Some(in_rel) = code[for_pos..].find(" in ") {
            let mut rest = code[for_pos + in_rel + 4..].trim_start();
            rest = rest
                .trim_start_matches("&mut ")
                .trim_start_matches('&')
                .trim_start();
            rest = rest.strip_prefix("self.").unwrap_or(rest);
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() {
                out.push(ident);
            }
        }
    }
    out
}

/// Position of `word` appearing as a standalone word.
pub(crate) fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        start = abs + word.len();
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[abs + word.len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R2: wall clock / entropy tokens.
// ---------------------------------------------------------------------------

pub(crate) fn wall_clock_token(code: &str, raw: &str) -> Option<&'static str> {
    const TOKENS: [&str; 6] = [
        "Instant::now",
        "std::time::Instant",
        "SystemTime",
        "thread_rng",
        "from_entropy",
        "rand::random",
    ];
    for t in TOKENS {
        if code.contains(t) {
            return Some(t);
        }
    }
    // The variable name usually lives in a (stripped) string literal, so
    // the seed heuristic reads the raw line.
    if code.contains("env::var") && raw.to_ascii_lowercase().contains("seed") {
        return Some("env::var(seed)");
    }
    None
}

// ---------------------------------------------------------------------------
// R6: thread spawns / parallelism probes.
// ---------------------------------------------------------------------------

fn thread_spawn_token(code: &str) -> Option<&'static str> {
    const TOKENS: [&str; 4] = [
        "thread::spawn",
        "thread::scope",
        "thread::Builder",
        "available_parallelism",
    ];
    TOKENS.into_iter().find(|t| code.contains(t))
}

// ---------------------------------------------------------------------------
// R3: float comparisons.
// ---------------------------------------------------------------------------

/// A float literal adjacent to `==`/`!=`, if any.
fn float_literal_eq(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        let is_eq = two == "==" || two == "!=";
        if is_eq {
            let prev = if i == 0 { b' ' } else { bytes[i - 1] };
            let next = if i + 2 < bytes.len() {
                bytes[i + 2]
            } else {
                b' '
            };
            // Skip <=, >=, ===-like runs, pattern arms (=>), and != vs =!=.
            if !matches!(prev, b'<' | b'>' | b'=' | b'!') && next != b'=' && next != b'>' {
                let left = operand_before(code, i);
                let right = operand_after(code, i + 2);
                for tok in [left, right].into_iter().flatten() {
                    if is_float_literal(&tok) {
                        return Some(tok);
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    None
}

fn operand_before(code: &str, op: usize) -> Option<String> {
    let text = code[..op].trim_end();
    let end = text.len();
    let start = text
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .map_or(0, |i| i + c_len(text, i));
    let tok = &text[start..end];
    (!tok.is_empty()).then(|| tok.to_string())
}

fn operand_after(code: &str, from: usize) -> Option<String> {
    let text = code[from..].trim_start();
    let tok: String = text
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.' || *c == '-')
        .collect();
    let tok = tok.trim_start_matches('-').to_string();
    (!tok.is_empty()).then_some(tok)
}

fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut has_digit = false;
    let mut has_dot = false;
    let mut has_exp = false;
    let mut prev_digit = false;
    for c in t.chars() {
        match c {
            '0'..='9' => {
                has_digit = true;
                prev_digit = true;
            }
            '.' => {
                if prev_digit {
                    has_dot = true;
                }
                prev_digit = false;
            }
            'e' | 'E' => {
                if prev_digit {
                    has_exp = true;
                }
                prev_digit = false;
            }
            '_' | '+' | '-' => prev_digit = false,
            _ => return false,
        }
    }
    has_digit && (has_dot || has_exp || tok.ends_with("f64") || tok.ends_with("f32"))
}

// ---------------------------------------------------------------------------
// R5: unit casts.
// ---------------------------------------------------------------------------

/// A raw numeric cast on a line that also mentions a unit-bearing
/// identifier: `(cast, unit_token)`.
fn unit_cast(code: &str) -> Option<(&'static str, String)> {
    const CASTS: [&str; 5] = [" as u64", " as u32", " as f64", " as f32", " as Time"];
    const UNIT_SUFFIXES: [&str; 8] = ["_ns", "_us", "_ms", "_mw", "_dbm", "_db", "_mbps", "_hz"];
    const UNIT_WORDS: [&str; 3] = ["airtime", "tx_time", "duration"];

    let cast = CASTS.into_iter().find(|c| {
        code.contains(c)
        // `as u64;`-style trailing or mid-expression both match; avoid
        // matching inside identifiers (the leading space handles it).
    })?;

    // Tokenise identifiers and look for a unit-bearing one.
    let mut ident = String::new();
    let mut idents = Vec::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            ident.push(c);
        } else if !ident.is_empty() {
            idents.push(std::mem::take(&mut ident));
        }
    }
    if !ident.is_empty() {
        idents.push(ident);
    }
    for id in idents {
        let lower = id.to_ascii_lowercase();
        if UNIT_SUFFIXES.iter().any(|s| lower.ends_with(s))
            || UNIT_WORDS.iter().any(|w| lower.contains(w))
        {
            return Some((cast.trim_start(), id));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Output rendering.
// ---------------------------------------------------------------------------

/// Render violations for humans.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.path, v.line, v.rule, v.message, v.snippet
        ));
    }
    out.push_str(&format!(
        "cmap-analyze: {} violation(s) in {} file(s) scanned\n",
        report.violations.len(),
        report.files_scanned
    ));
    out
}

/// Render violations as a JSON document.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(&v.path),
            v.line,
            v.rule,
            json_escape(&v.message),
            json_escape(&v.snippet)
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"violation_count\": {}\n}}\n",
        report.files_scanned,
        report.violations.len()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
