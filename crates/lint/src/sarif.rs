//! SARIF 2.1.0 output.
//!
//! One run, one driver (`cmap-analyze`), all eleven rules in the driver
//! metadata. Baseline-pinned findings are included as suppressed results
//! (`suppressions[].kind = "external"` with the pin reason as
//! justification) so SARIF viewers show the full audit trail. Suggested
//! fixes map to `fixes[].artifactChanges` with 1-based SARIF columns.
//! The document contains no timestamps or absolute paths — it is
//! byte-stable for a given analysis, which is what the golden snapshot
//! test pins.

use crate::jsonv::{int, obj, s, Val};
use crate::{Rule, Violation};

/// Render a SARIF 2.1.0 document from new and baseline-pinned findings.
pub fn render(new: &[Violation], pinned: &[(Violation, String)]) -> String {
    let rules: Vec<Val> = Rule::ALL
        .into_iter()
        .map(|r| {
            obj(vec![
                ("id", s(r.code())),
                ("shortDescription", obj(vec![("text", s(r.description()))])),
                ("defaultConfiguration", obj(vec![("level", s("error"))])),
            ])
        })
        .collect();

    let mut results: Vec<Val> = new.iter().map(|v| result(v, None)).collect();
    results.extend(pinned.iter().map(|(v, reason)| result(v, Some(reason))));

    let driver = obj(vec![
        ("name", s("cmap-analyze")),
        ("version", s(env!("CARGO_PKG_VERSION"))),
        (
            "informationUri",
            s("https://github.com/cmap-repro/cmap#static-analysis"),
        ),
        ("rules", Val::Arr(rules)),
    ]);

    obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Val::Arr(vec![obj(vec![
                ("tool", obj(vec![("driver", driver)])),
                ("columnKind", s("utf16CodeUnits")),
                ("results", Val::Arr(results)),
            ])]),
        ),
    ])
    .render_pretty()
}

fn result(v: &Violation, suppression_reason: Option<&str>) -> Val {
    let location = obj(vec![(
        "physicalLocation",
        obj(vec![
            ("artifactLocation", obj(vec![("uri", s(&v.path))])),
            (
                "region",
                obj(vec![
                    ("startLine", int(v.line)),
                    ("snippet", obj(vec![("text", s(&v.snippet))])),
                ]),
            ),
        ]),
    )]);

    let mut pairs = vec![
        ("ruleId", s(v.rule.code())),
        (
            "level",
            s(if suppression_reason.is_some() {
                "note"
            } else {
                "error"
            }),
        ),
        ("message", obj(vec![("text", s(&v.message))])),
        ("locations", Val::Arr(vec![location])),
    ];

    if let Some(fix) = &v.fix {
        pairs.push((
            "fixes",
            Val::Arr(vec![obj(vec![
                ("description", obj(vec![("text", s(&fix.description))])),
                (
                    "artifactChanges",
                    Val::Arr(vec![obj(vec![
                        ("artifactLocation", obj(vec![("uri", s(&v.path))])),
                        (
                            "replacements",
                            Val::Arr(vec![obj(vec![
                                (
                                    "deletedRegion",
                                    obj(vec![
                                        ("startLine", int(v.line)),
                                        // SARIF columns are 1-based.
                                        ("startColumn", int(fix.col_start + 1)),
                                        ("endColumn", int(fix.col_end + 1)),
                                    ]),
                                ),
                                ("insertedContent", obj(vec![("text", s(&fix.replacement))])),
                            ])]),
                        ),
                    ])]),
                ),
            ])]),
        ));
    }

    match suppression_reason {
        Some(reason) => pairs.push((
            "suppressions",
            Val::Arr(vec![obj(vec![
                ("kind", s("external")),
                ("justification", s(reason)),
            ])]),
        )),
        None => pairs.push(("suppressions", Val::Arr(Vec::new()))),
    }

    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv;
    use crate::Fix;

    #[test]
    fn valid_json_with_suppressions_and_fixes() {
        let v = Violation {
            path: "crates/sim/src/a.rs".to_string(),
            line: 7,
            rule: Rule::PanicBudget,
            message: "bare unwrap".to_string(),
            snippet: "x.unwrap()".to_string(),
            fix: Some(Fix {
                col_start: 1,
                col_end: 10,
                replacement: ".expect(\"why\")".to_string(),
                description: "document the invariant".to_string(),
            }),
        };
        let pinned = (
            Violation {
                path: "crates/bench/src/b.rs".to_string(),
                line: 3,
                rule: Rule::DetTaint,
                message: "wall clock into sink".to_string(),
                snippet: "let t = now();".to_string(),
                fix: None,
            },
            "perf artifact is non-deterministic by design".to_string(),
        );
        let doc = render(&[v], std::slice::from_ref(&pinned));
        let parsed = jsonv::parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("version").and_then(Val::as_str), Some("2.1.0"));
        let runs = parsed.get("runs").and_then(Val::as_arr).expect("runs");
        let results = runs[0]
            .get("results")
            .and_then(Val::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        // The pinned result carries its justification.
        let sup = results[1]
            .get("suppressions")
            .and_then(Val::as_arr)
            .expect("suppressions");
        assert_eq!(
            sup[0].get("justification").and_then(Val::as_str),
            Some(pinned.1.as_str())
        );
        // Fix columns are 1-based.
        let fixes = results[0]
            .get("fixes")
            .and_then(Val::as_arr)
            .expect("fixes");
        let region = fixes[0]
            .get("artifactChanges")
            .and_then(Val::as_arr)
            .and_then(|c| c[0].get("replacements"))
            .and_then(Val::as_arr)
            .and_then(|r| r[0].get("deletedRegion"))
            .cloned()
            .expect("region");
        assert_eq!(region.get("startColumn").and_then(Val::as_int), Some(2));
    }
}
