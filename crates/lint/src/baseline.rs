//! The checked-in suppression baseline.
//!
//! Pre-existing, justified findings are pinned in a JSON file
//! (`ANALYZE_baseline.json` at the repo root) so CI fails only on *new*
//! findings. Every entry carries a mandatory reason — an entry without one
//! fails the load, mirroring the mandatory pragma-reason rule — and
//! matching is by `(rule, path suffix, trimmed snippet)` rather than line
//! number, so unrelated edits above a finding don't unpin it.

use std::fs;
use std::path::Path;

use crate::jsonv::{self, obj, s, Val};
use crate::{Rule, Violation};

/// Baseline format tag.
pub const BASELINE_SCHEMA: &str = "cmap-analyze-baseline/v1";

/// One pinned finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule code.
    pub rule: Rule,
    /// Path (matched by suffix, so the baseline works from any cwd).
    pub path: String,
    /// Trimmed source snippet of the pinned line.
    pub snippet: String,
    /// Why this finding is accepted. Mandatory.
    pub reason: String,
}

impl BaselineEntry {
    /// Does this entry pin the given violation?
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && (v.path.ends_with(&self.path) || self.path.ends_with(&v.path))
            && self.snippet == v.snippet
    }
}

/// The parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All pinned findings.
    pub entries: Vec<BaselineEntry>,
}

/// The result of filtering a finding list through the baseline.
#[derive(Debug, Default)]
pub struct BaselineSplit {
    /// Findings not covered by any entry: these gate CI.
    pub new: Vec<Violation>,
    /// `(violation, reason)` for findings pinned by the baseline.
    pub pinned: Vec<(Violation, String)>,
    /// Entries that matched nothing — stale pins that should be removed.
    pub stale_entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Load a baseline file. Unlike the cache, a baseline that exists but
    /// does not parse — or carries an entry without a reason — is a hard
    /// error: a silently dropped suppression list would fail CI noisily,
    /// but a silently *accepted* malformed one would hide findings.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
    }

    /// Parse baseline JSON.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = jsonv::parse(text)?;
        if doc.get("schema").and_then(Val::as_str) != Some(BASELINE_SCHEMA) {
            return Err(format!("schema is not {BASELINE_SCHEMA}"));
        }
        let mut entries = Vec::new();
        for (i, e) in doc
            .get("entries")
            .and_then(Val::as_arr)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let rule = e
                .get("rule")
                .and_then(Val::as_str)
                .and_then(Rule::parse)
                .ok_or(format!("entry {i}: missing/unknown rule"))?;
            let path = e
                .get("path")
                .and_then(Val::as_str)
                .ok_or(format!("entry {i}: missing path"))?
                .to_string();
            let snippet = e
                .get("snippet")
                .and_then(Val::as_str)
                .ok_or(format!("entry {i}: missing snippet"))?
                .to_string();
            let reason = e
                .get("reason")
                .and_then(Val::as_str)
                .unwrap_or("")
                .trim()
                .to_string();
            if reason.len() < 3 {
                return Err(format!(
                    "entry {i} ({} {path}): reason is mandatory — say why this \
                     finding is accepted",
                    rule.code()
                ));
            }
            entries.push(BaselineEntry {
                rule,
                path,
                snippet,
                reason,
            });
        }
        Ok(Baseline { entries })
    }

    /// Split findings into new / pinned, and report unmatched entries.
    pub fn split(&self, violations: Vec<Violation>) -> BaselineSplit {
        let mut out = BaselineSplit::default();
        let mut matched = vec![false; self.entries.len()];
        for v in violations {
            match self.entries.iter().position(|e| e.matches(&v)) {
                Some(i) => {
                    matched[i] = true;
                    let reason = self.entries[i].reason.clone();
                    out.pinned.push((v, reason));
                }
                None => out.new.push(v),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !matched[i] {
                out.stale_entries.push(e.clone());
            }
        }
        out
    }

    /// Render a baseline that pins exactly the given findings (for
    /// `--write-baseline`); reasons are placeholders the author must fill.
    pub fn render_for(violations: &[Violation]) -> String {
        let entries: Vec<Val> = violations
            .iter()
            .map(|v| {
                obj(vec![
                    ("rule", s(v.rule.code())),
                    ("path", s(&v.path)),
                    ("snippet", s(&v.snippet)),
                    ("reason", s("TODO: say why this finding is accepted")),
                ])
            })
            .collect();
        obj(vec![
            ("schema", s(BASELINE_SCHEMA)),
            ("entries", Val::Arr(entries)),
        ])
        .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: Rule, path: &str, snippet: &str) -> Violation {
        Violation {
            path: path.to_string(),
            line: 10,
            rule,
            message: "m".to_string(),
            snippet: snippet.to_string(),
            fix: None,
        }
    }

    #[test]
    fn reasons_are_mandatory() {
        let text = r#"{"schema":"cmap-analyze-baseline/v1","entries":[
            {"rule":"det-taint","path":"a.rs","snippet":"x","reason":""}]}"#;
        let err = Baseline::parse(text).expect_err("empty reason rejected");
        assert!(err.contains("reason is mandatory"), "{err}");
    }

    #[test]
    fn split_pins_and_reports_stale() {
        let text = r#"{"schema":"cmap-analyze-baseline/v1","entries":[
            {"rule":"det-taint","path":"crates/bench/src/a.rs","snippet":"let t = now();","reason":"perf artifact is non-deterministic by design"},
            {"rule":"shared-state","path":"crates/gone.rs","snippet":"old","reason":"obsolete pin"}]}"#;
        let b = Baseline::parse(text).expect("parses");
        let split = b.split(vec![
            violation(
                Rule::DetTaint,
                "/repo/crates/bench/src/a.rs",
                "let t = now();",
            ),
            violation(Rule::UnitFlow, "/repo/crates/sim/src/b.rs", "t_ns + t_us"),
        ]);
        assert_eq!(split.pinned.len(), 1);
        assert_eq!(split.new.len(), 1);
        assert_eq!(split.new[0].rule, Rule::UnitFlow);
        assert_eq!(split.stale_entries.len(), 1);
        assert_eq!(split.stale_entries[0].path, "crates/gone.rs");
    }
}
