//! A minimal std-only JSON value type with a parser and renderer.
//!
//! Used by the incremental cache, the suppression baseline, and the SARIF
//! writer. Numbers are kept as `i64`/`f64`; object keys keep insertion
//! order (a `Vec` of pairs) so rendered output is deterministic and
//! diff-friendly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Non-integer number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Val>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content (ints only; floats are not coerced).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Bool content.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Val::Null => out.push_str("null"),
            Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Val::Float(f) => {
                // JSON has no NaN/Inf; clamp to null like serde_json does.
                if f.is_finite() {
                    // Exact integral check so whole floats render with a
                    // decimal point and round-trip as floats. This is a
                    // representation test, not arithmetic — an epsilon
                    // margin would mis-render values near integers.
                    #[allow(clippy::float_cmp)]
                    let integral = *f == f.trunc();
                    if integral && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Val::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Val::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Val::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Val, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        text,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'n') => self.literal("null", Val::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, word: &str, val: Val) -> Result<Val, String> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let tok = &self.text[start..self.pos];
        if float {
            tok.parse::<f64>()
                .map(Val::Float)
                .map_err(|e| format!("bad number `{tok}`: {e}"))
        } else {
            tok.parse::<i64>()
                .map(Val::Int)
                .map_err(|e| format!("bad number `{tok}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        // Fast path: scan to the terminator and slice once. Byte scanning
        // is UTF-8-safe because `"` and `\` never occur inside a
        // multi-byte sequence.
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    let s = self.text[start..self.pos].to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => break,
                Some(_) => self.pos += 1,
                None => return Err("unterminated string".to_string()),
            }
        }
        let mut out = String::from(&self.text[start..self.pos]);
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                let rest = &self.text[self.pos..];
                                if let Some(low_hex) =
                                    rest.strip_prefix("\\u").and_then(|r| r.get(..4))
                                {
                                    let low = u32::from_str_radix(low_hex, 16)
                                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Copy the whole UTF-8 scalar.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or("bad utf8 boundary")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.pos += 1; // {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Val::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected : at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(pairs));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }
}

/// Convenience constructors.
pub fn obj(pairs: Vec<(&str, Val)>) -> Val {
    Val::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// String value.
pub fn s(text: &str) -> Val {
    Val::Str(text.to_string())
}

/// Integer value.
pub fn int(i: usize) -> Val {
    Val::Int(i as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Val::as_int),
            Some(-3)
        );
        let rendered = v.render();
        let v2 = parse(&rendered).expect("reparses");
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
