//! Command-line front end for the cmap-analyze static analysis engine.
//!
//! ```text
//! cargo run -p cmap-analyze -- crates/ src/ tests/
//! cargo run -p cmap-analyze -- --baseline ANALYZE_baseline.json \
//!     --cache target/cmap-analyze/cache.json --sarif analyze.sarif crates/
//! ```
//!
//! Exit codes: 0 clean, 1 non-baselined findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cmap_analyze::analyze::{self, Options};
use cmap_analyze::{sarif, Config};

fn main() -> ExitCode {
    let mut json = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut stats_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut no_default_baseline = false;
    let mut roots: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| -> Result<PathBuf, ExitCode> {
            args.next().map(PathBuf::from).ok_or_else(|| {
                eprintln!("cmap-analyze: `{arg}` needs a path argument");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => match path_arg(&mut args) {
                Ok(p) => sarif_path = Some(p),
                Err(c) => return c,
            },
            "--stats-out" => match path_arg(&mut args) {
                Ok(p) => stats_path = Some(p),
                Err(c) => return c,
            },
            "--baseline" => match path_arg(&mut args) {
                Ok(p) => opts.baseline_path = Some(p),
                Err(c) => return c,
            },
            "--no-baseline" => no_default_baseline = true,
            "--write-baseline" => match path_arg(&mut args) {
                Ok(p) => write_baseline = Some(p),
                Err(c) => return c,
            },
            "--cache" => match path_arg(&mut args) {
                Ok(p) => opts.cache_path = Some(p),
                Err(c) => return c,
            },
            "--jobs" => match args.next().and_then(|j| j.parse::<usize>().ok()) {
                Some(j) => opts.jobs = j,
                None => {
                    eprintln!("cmap-analyze: `--jobs` needs a number");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("cmap-analyze: unknown option `{arg}`");
                print_usage();
                return ExitCode::from(2);
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("cmap-analyze: no paths given");
        print_usage();
        return ExitCode::from(2);
    }
    if opts.baseline_path.is_none() && !no_default_baseline {
        opts.baseline_path = analyze::default_baseline();
    }

    let cfg = Config::default();
    let report = match analyze::analyze(&roots, &cfg, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cmap-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(p) = &sarif_path {
        let doc = sarif::render(&report.violations, &report.pinned);
        if let Err(e) = std::fs::write(p, doc) {
            eprintln!("cmap-analyze: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &stats_path {
        if let Err(e) = std::fs::write(p, analyze::render_stats(&report)) {
            eprintln!("cmap-analyze: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    if let Some(p) = &write_baseline {
        let doc = cmap_analyze::baseline::Baseline::render_for(&report.violations);
        if let Err(e) = std::fs::write(p, doc) {
            eprintln!("cmap-analyze: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cmap-analyze: wrote {} entr{} to {} — fill in the reasons before \
             checking it in",
            report.violations.len(),
            if report.violations.len() == 1 {
                "y"
            } else {
                "ies"
            },
            p.display()
        );
    }

    if json {
        print!("{}", analyze::render_json(&report));
    } else {
        print!("{}", analyze::render_human(&report));
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    eprintln!(
        "usage: cmap-analyze [options] <path>...\n\
         \n\
         Workspace-aware determinism & unit-safety static analysis: a\n\
         per-file token layer (hash-iter, wall-clock, float-cmp,\n\
         panic-budget, unit-cast, thread-spawn) plus interprocedural flow\n\
         rules (det-taint, unit-flow, shared-state, panic-reach) and a\n\
         stale-pragma audit. See DESIGN.md §10.\n\
         \n\
         options:\n\
           --json                 JSON report on stdout\n\
           --sarif <path>         write a SARIF 2.1.0 document\n\
           --stats-out <path>     write scan counters + wall time (CI)\n\
           --baseline <path>      suppression baseline (default:\n\
                                  ANALYZE_baseline.json if present)\n\
           --no-baseline          ignore the default baseline\n\
           --write-baseline <p>   pin all current findings (fill reasons!)\n\
           --cache <path>         incremental cache keyed by content hash\n\
           --jobs <n>             parse fan-out width (default 1)"
    );
}
