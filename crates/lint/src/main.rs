//! Command-line front end for the determinism lint.
//!
//! ```text
//! cargo run -p cmap-lint -- crates/ src/
//! cargo run -p cmap-lint -- --json crates/
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("cmap-lint: unknown option `{arg}`");
                print_usage();
                return ExitCode::from(2);
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("cmap-lint: no paths given");
        print_usage();
        return ExitCode::from(2);
    }

    let cfg = cmap_lint::Config::default();
    let report = match cmap_lint::scan_paths(&roots, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cmap-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", cmap_lint::render_json(&report));
    } else {
        print!("{}", cmap_lint::render_human(&report));
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_usage() {
    eprintln!(
        "usage: cmap-lint [--json] <path>...\n\
         \n\
         Scans .rs files under the given paths for determinism and\n\
         unit-safety violations (rules: hash-iter, wall-clock, float-cmp,\n\
         panic-budget, unit-cast, thread-spawn). See DESIGN.md\n\
         \"Determinism invariants\"."
    );
}
