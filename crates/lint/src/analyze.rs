//! Workspace analysis orchestration.
//!
//! The pipeline: collect `.rs` files → hash contents (FNV-1a) → serve
//! unchanged files from the incremental cache, fan the rest through
//! `cmap_exec::Pool` for token-layer scan + symbol-model build → run the
//! interprocedural flow rules (always — whole-program, cheap) → audit
//! stale pragmas → filter through the suppression baseline.
//!
//! The analyzer itself is exempt from the determinism rules it enforces
//! on simulation code — its wall-clock metering (`wall_ns`) feeds only the
//! stats artifact CI uses to assert the warm-cache speedup, never a
//! simulation artifact.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{Baseline, BaselineEntry};
use crate::cache::{fnv1a, Cache, CacheEntry};
use crate::flow::{self, FlowFile};
use crate::model::{build_model, FileModel};
use crate::{collect_rs_files, Config, FileScan, Rule, Violation};

/// Analysis options beyond the rule [`Config`].
#[derive(Debug, Default)]
pub struct Options {
    /// Worker count for the parse fan-out (0 = serial).
    pub jobs: usize,
    /// Incremental cache location; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Suppression baseline; `None` means every finding gates.
    pub baseline_path: Option<PathBuf>,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct AnalyzeReport {
    /// Findings not pinned by the baseline, ordered by (path, line, rule).
    pub violations: Vec<Violation>,
    /// `(violation, reason)` pinned by the baseline.
    pub pinned: Vec<(Violation, String)>,
    /// Baseline entries that matched nothing (stale pins).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Files lexed+modelled this run.
    pub files_parsed: usize,
    /// Files served from the incremental cache.
    pub files_from_cache: usize,
    /// Wall time of the analysis (cache load → baseline filter). Metering
    /// only: feeds the CI stats artifact, never a simulation artifact.
    pub wall_ns: u128,
}

/// Analyze a set of roots.
pub fn analyze(roots: &[PathBuf], cfg: &Config, opts: &Options) -> io::Result<AnalyzeReport> {
    // cmap-lint: allow(wall-clock) — analyzer self-metering for the CI warm-cache assertion; never reaches simulation artifacts
    let t0 = std::time::Instant::now();

    // ---- collect ---------------------------------------------------------
    let mut files = Vec::new();
    for root in roots {
        if root.is_dir() {
            collect_rs_files(root, cfg, &mut files)?;
        } else if root.is_file() {
            files.push(root.clone());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", root.display()),
            ));
        }
    }
    files.sort();
    files.dedup();

    // ---- read + hash -----------------------------------------------------
    let mut sources: Vec<(String, String, u64)> = Vec::with_capacity(files.len());
    for file in &files {
        let display = file.display().to_string().replace('\\', "/");
        let text = fs::read_to_string(file)?;
        let hash = fnv1a(text.as_bytes());
        sources.push((display, text, hash));
    }

    // ---- cache partition -------------------------------------------------
    let pool = cmap_exec::Pool::new(opts.jobs.max(1));
    let mut cache = match &opts.cache_path {
        Some(p) => Cache::load(p, &pool),
        None => Cache::default(),
    };
    let mut parsed: Vec<Option<(FileScan, FileModel)>> = vec![None; sources.len()];
    let mut to_parse: Vec<usize> = Vec::new();
    let mut files_from_cache = 0;
    for (i, (path, _, hash)) in sources.iter().enumerate() {
        match cache.entries.get(path) {
            Some(e) if e.hash == *hash => {
                parsed[i] = Some((e.scan.clone(), e.model.clone()));
                files_from_cache += 1;
            }
            _ => to_parse.push(i),
        }
    }

    // ---- parallel parse --------------------------------------------------
    let files_parsed = to_parse.len();
    let fresh: Vec<(FileScan, FileModel)> = pool.map(&to_parse, |&i| {
        let (path, text, _) = &sources[i];
        let scan = crate::scan_file(path, text, cfg);
        let model = build_model(path, text);
        (scan, model)
    });
    for (&i, product) in to_parse.iter().zip(fresh) {
        parsed[i] = Some(product);
    }

    // ---- flow rules ------------------------------------------------------
    let products: Vec<&(FileScan, FileModel)> = parsed
        .iter()
        .map(|p| p.as_ref().expect("every file parsed or cached"))
        .collect();
    let flow_files: Vec<FlowFile> = products
        .iter()
        .zip(&sources)
        .map(|(p, (_, text, _))| FlowFile {
            model: &p.1,
            scan: &p.0,
            raw: text.lines().collect(),
        })
        .collect();
    let flow_out = flow::run(&flow_files, cfg);

    // ---- stale pragmas ---------------------------------------------------
    let mut violations: Vec<Violation> = Vec::new();
    for p in &products {
        violations.extend(p.0.violations.iter().cloned());
    }
    violations.extend(flow_out.violations);

    let mut used: std::collections::BTreeSet<(usize, usize, Rule)> =
        std::collections::BTreeSet::new();
    for (i, p) in products.iter().enumerate() {
        for &(line, rule) in &p.0.used_pragmas {
            used.insert((i, line, rule));
        }
    }
    for (i, line, rule) in flow_out.pragma_uses {
        used.insert((i, line, rule));
    }
    for (i, p) in products.iter().enumerate() {
        for pragma in &p.0.pragmas {
            for &rule in &pragma.rules {
                if rule == Rule::StalePragma || used.contains(&(i, pragma.line, rule)) {
                    continue;
                }
                let (path, text, _) = &sources[i];
                violations.push(Violation {
                    path: path.clone(),
                    line: pragma.line,
                    rule: Rule::StalePragma,
                    message: format!(
                        "allow({}) suppresses zero findings; remove the stale \
                         pragma (dead suppressions rot the audit trail)",
                        rule.code()
                    ),
                    snippet: text
                        .lines()
                        .nth(pragma.line - 1)
                        .map_or("", str::trim)
                        .to_string(),
                    fix: None,
                });
            }
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    // ---- baseline --------------------------------------------------------
    let mut report = AnalyzeReport {
        files_scanned: sources.len(),
        files_parsed,
        files_from_cache,
        ..AnalyzeReport::default()
    };
    match &opts.baseline_path {
        Some(p) if p.exists() => {
            let baseline = Baseline::load(p).map_err(io::Error::other)?;
            let split = baseline.split(violations);
            report.violations = split.new;
            report.pinned = split.pinned;
            report.stale_baseline = split.stale_entries;
        }
        _ => report.violations = violations,
    }

    // ---- store cache -----------------------------------------------------
    if let Some(p) = &opts.cache_path {
        // Drop entries for files no longer on disk so the cache does not
        // grow without bound.
        let live: std::collections::BTreeSet<&String> = sources.iter().map(|(p, _, _)| p).collect();
        let before = cache.entries.len();
        cache.entries.retain(|path, _| live.contains(path));
        let dropped = before - cache.entries.len();
        // A fully-warm run leaves the cache byte-identical; skip the
        // serialize+write so warm wall time stays well under cold.
        if files_parsed > 0 || dropped > 0 {
            for (i, (path, _, hash)) in sources.iter().enumerate() {
                let (scan, model) = parsed[i].as_ref().expect("parsed");
                cache.entries.insert(
                    path.clone(),
                    CacheEntry {
                        hash: *hash,
                        scan: scan.clone(),
                        model: model.clone(),
                    },
                );
            }
            cache.store(p)?;
        }
    }

    report.wall_ns = t0.elapsed().as_nanos();
    Ok(report)
}

/// Stats document for `--stats-out` (CI asserts warm < cold/2 on
/// `wall_ns`, and exact parse/cache counts in the incremental test).
pub fn render_stats(report: &AnalyzeReport) -> String {
    use crate::jsonv::{int, obj, Val};
    obj(vec![
        ("files_scanned", int(report.files_scanned)),
        ("files_parsed", int(report.files_parsed)),
        ("files_from_cache", int(report.files_from_cache)),
        ("new_findings", int(report.violations.len())),
        ("pinned_findings", int(report.pinned.len())),
        ("stale_baseline_entries", int(report.stale_baseline.len())),
        (
            "wall_ns",
            Val::Int(i64::try_from(report.wall_ns).unwrap_or(i64::MAX)),
        ),
    ])
    .render_pretty()
}

/// Render the analyze report for humans.
pub fn render_human(report: &AnalyzeReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.path, v.line, v.rule, v.message, v.snippet
        ));
        if let Some(fix) = &v.fix {
            out.push_str(&format!(
                "    fix: replace cols {}..{} with `{}` ({})\n",
                fix.col_start, fix.col_end, fix.replacement, fix.description
            ));
        }
    }
    for e in &report.stale_baseline {
        out.push_str(&format!(
            "warning: stale baseline entry [{}] {} `{}` matches nothing — remove it\n",
            e.rule.code(),
            e.path,
            e.snippet
        ));
    }
    out.push_str(&format!(
        "cmap-analyze: {} new finding(s), {} baselined, {} file(s) scanned \
         ({} parsed, {} from cache)\n",
        report.violations.len(),
        report.pinned.len(),
        report.files_scanned,
        report.files_parsed,
        report.files_from_cache
    ));
    out
}

/// Render the analyze report as JSON (violations plus counters).
pub fn render_json(report: &AnalyzeReport) -> String {
    use crate::cache::violation_to_val;
    use crate::jsonv::{int, obj, s, Val};
    obj(vec![
        (
            "violations",
            Val::Arr(report.violations.iter().map(violation_to_val).collect()),
        ),
        (
            "baselined",
            Val::Arr(
                report
                    .pinned
                    .iter()
                    .map(|(v, reason)| {
                        let mut val = violation_to_val(v);
                        if let Val::Obj(pairs) = &mut val {
                            pairs.push(("reason".to_string(), s(reason)));
                        }
                        val
                    })
                    .collect(),
            ),
        ),
        ("files_scanned", int(report.files_scanned)),
        ("files_parsed", int(report.files_parsed)),
        ("files_from_cache", int(report.files_from_cache)),
        ("violation_count", int(report.violations.len())),
    ])
    .render_pretty()
}

/// Resolve the default baseline path: `ANALYZE_baseline.json` next to the
/// first root's enclosing repo (cwd), if present.
pub fn default_baseline() -> Option<PathBuf> {
    let p = Path::new("ANALYZE_baseline.json");
    p.exists().then(|| p.to_path_buf())
}
