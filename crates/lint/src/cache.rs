//! The incremental analysis cache.
//!
//! Keyed by FNV-1a 64 content hash per file: a warm run deserializes the
//! token-layer scan and the symbol model instead of re-lexing and
//! re-parsing, which is where the cold run spends its time (the flow
//! fixpoint always re-runs — it is whole-program and cheap). A one-byte
//! edit changes exactly one file's hash and invalidates exactly that
//! entry.
//!
//! The cache schema is versioned; any rule or model change bumps
//! [`CACHE_SCHEMA`] and silently discards old caches (a stale cache must
//! never mask a finding).

use std::fs;
use std::io;
use std::path::Path;

use crate::jsonv::{self, int, obj, s, Val};
use crate::model::{
    Assign, BinOp, CallSite, FileModel, FnModel, Operand, OperandKind, Param, StaticDecl, StructLit,
};
use crate::{FileScan, Fix, PragmaSummary, Rule, Violation};

/// Cache format tag; bump on any rule/model change.
/// v2: the cache load dominates warm-run wall time, so the format is
/// built for parse speed — positional arrays for the symbol model (no
/// repeated object keys), and one entry per line so a header line plus
/// independent entry lines can be parsed through the worker pool.
pub const CACHE_SCHEMA: &str = "cmap-analyze-cache/v2";

/// FNV-1a 64-bit content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached per-file analysis product.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Content hash the products were computed from.
    pub hash: u64,
    /// Token-layer scan (violations + pragma bookkeeping).
    pub scan: FileScan,
    /// Symbol model.
    pub model: FileModel,
}

/// The on-disk cache: path → entry.
#[derive(Debug, Default)]
pub struct Cache {
    /// Entries by `/`-normalised path.
    pub entries: std::collections::BTreeMap<String, CacheEntry>,
}

impl Cache {
    /// Load a cache file; a missing, unreadable, or schema-mismatched
    /// cache is an empty cache, never an error (the analysis simply runs
    /// cold). Entry lines are independent, so they fan out through the
    /// given worker pool.
    pub fn load(path: &Path, pool: &cmap_exec::Pool) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(|h| jsonv::parse(h).ok())
            .and_then(|h| h.get("schema").and_then(Val::as_str).map(str::to_string))
            .is_some_and(|schema| schema == CACHE_SCHEMA);
        if !header_ok {
            return Cache::default();
        }
        let entry_lines: Vec<&str> = lines.filter(|l| !l.trim().is_empty()).collect();
        let parsed: Vec<Option<(String, CacheEntry)>> = pool.map(&entry_lines, |line| {
            // One corrupt entry poisons nothing else.
            jsonv::parse(line).ok().as_ref().and_then(entry_from_val)
        });
        let mut cache = Cache::default();
        for (path, entry) in parsed.into_iter().flatten() {
            cache.entries.insert(path, entry);
        }
        cache
    }

    /// Persist the cache: a schema header line, then one entry per line.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = obj(vec![("schema", s(CACHE_SCHEMA))]).render();
        for (p, e) in &self.entries {
            out.push('\n');
            out.push_str(
                &obj(vec![
                    ("path", s(p)),
                    ("hash", s(&format!("{:016x}", e.hash))),
                    ("scan", scan_to_val(&e.scan)),
                    ("model", model_to_val(&e.model)),
                ])
                .render(),
            );
        }
        out.push('\n');
        fs::write(path, out)
    }
}

// ---------------------------------------------------------------------------
// Serialization: analysis products ⇄ jsonv::Val.
// ---------------------------------------------------------------------------

fn str_arr(items: &[String]) -> Val {
    Val::Arr(items.iter().map(|i| s(i)).collect())
}

fn usize_arr(items: &[usize]) -> Val {
    Val::Arr(items.iter().map(|&i| int(i)).collect())
}

fn opt_str(o: &Option<String>) -> Val {
    match o {
        Some(v) => s(v),
        None => Val::Null,
    }
}

fn val_str(v: &Val) -> Option<String> {
    v.as_str().map(|s| s.to_string())
}

fn val_usize(v: &Val) -> Option<usize> {
    v.as_int().and_then(|i| usize::try_from(i).ok())
}

fn val_str_vec(v: Option<&Val>) -> Vec<String> {
    v.and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(val_str).collect())
        .unwrap_or_default()
}

fn val_usize_vec(v: Option<&Val>) -> Vec<usize> {
    v.and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(val_usize).collect())
        .unwrap_or_default()
}

/// Serialize a violation (shared with the JSON render path).
pub fn violation_to_val(v: &Violation) -> Val {
    let mut pairs = vec![
        ("path", s(&v.path)),
        ("line", int(v.line)),
        ("rule", s(v.rule.code())),
        ("message", s(&v.message)),
        ("snippet", s(&v.snippet)),
    ];
    if let Some(fix) = &v.fix {
        pairs.push((
            "fix",
            obj(vec![
                ("col_start", int(fix.col_start)),
                ("col_end", int(fix.col_end)),
                ("replacement", s(&fix.replacement)),
                ("description", s(&fix.description)),
            ]),
        ));
    }
    obj(pairs)
}

fn violation_from_val(v: &Val) -> Option<Violation> {
    let fix = v.get("fix").and_then(|f| {
        Some(Fix {
            col_start: val_usize(f.get("col_start")?)?,
            col_end: val_usize(f.get("col_end")?)?,
            replacement: val_str(f.get("replacement")?)?,
            description: val_str(f.get("description")?)?,
        })
    });
    Some(Violation {
        path: val_str(v.get("path")?)?,
        line: val_usize(v.get("line")?)?,
        rule: Rule::parse(v.get("rule")?.as_str()?)?,
        message: val_str(v.get("message")?)?,
        snippet: val_str(v.get("snippet")?)?,
        fix,
    })
}

fn scan_to_val(scan: &FileScan) -> Val {
    obj(vec![
        (
            "violations",
            Val::Arr(scan.violations.iter().map(violation_to_val).collect()),
        ),
        (
            "pragmas",
            Val::Arr(
                scan.pragmas
                    .iter()
                    .map(|p| {
                        Val::Arr(vec![
                            int(p.line),
                            Val::Arr(p.rules.iter().map(|r| s(r.code())).collect()),
                            usize_arr(&p.targets),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "used",
            Val::Arr(
                scan.used_pragmas
                    .iter()
                    .map(|(l, r)| Val::Arr(vec![int(*l), s(r.code())]))
                    .collect(),
            ),
        ),
    ])
}

fn scan_from_val(v: &Val) -> Option<FileScan> {
    let violations = v
        .get("violations")?
        .as_arr()?
        .iter()
        .map(violation_from_val)
        .collect::<Option<Vec<_>>>()?;
    let pragmas = v
        .get("pragmas")?
        .as_arr()?
        .iter()
        .map(|p| {
            let parts = p.as_arr()?;
            Some(PragmaSummary {
                line: val_usize(parts.first()?)?,
                rules: parts
                    .get(1)?
                    .as_arr()?
                    .iter()
                    .map(|r| Rule::parse(r.as_str()?))
                    .collect::<Option<Vec<_>>>()?,
                targets: val_usize_vec(parts.get(2)),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let used_pragmas = v
        .get("used")?
        .as_arr()?
        .iter()
        .map(|u| {
            let pair = u.as_arr()?;
            Some((
                val_usize(pair.first()?)?,
                Rule::parse(pair.get(1)?.as_str()?)?,
            ))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FileScan {
        violations,
        pragmas,
        used_pragmas,
    })
}

fn operand_to_val(o: &Operand) -> Val {
    Val::Arr(vec![
        s(&o.name),
        s(match o.kind {
            OperandKind::Ident => "i",
            OperandKind::Call => "c",
        }),
    ])
}

fn operand_from_val(v: &Val) -> Option<Operand> {
    let pair = v.as_arr()?;
    Some(Operand {
        name: val_str(pair.first()?)?,
        kind: match pair.get(1)?.as_str()? {
            "i" => OperandKind::Ident,
            "c" => OperandKind::Call,
            _ => return None,
        },
    })
}

// The symbol model is encoded positionally: `FnModel` and its children
// are arrays with fixed slots, not objects. Field order here and in the
// matching `*_from_val` is the format — reordering is a schema change.

fn call_to_val(c: &CallSite) -> Val {
    Val::Arr(vec![
        s(&c.callee),
        opt_str(&c.qual),
        Val::Bool(c.is_method),
        opt_str(&c.receiver),
        int(c.line),
        Val::Arr(c.args.iter().map(|a| str_arr(a)).collect()),
        opt_str(&c.assigned_to),
    ])
}

fn call_from_val(v: &Val) -> Option<CallSite> {
    let p = v.as_arr()?;
    Some(CallSite {
        callee: val_str(p.first()?)?,
        qual: p.get(1).and_then(val_str),
        is_method: p.get(2)?.as_bool()?,
        receiver: p.get(3).and_then(val_str),
        line: val_usize(p.get(4)?)?,
        args: p
            .get(5)?
            .as_arr()?
            .iter()
            .map(|a| Some(val_str_vec(Some(a))))
            .collect::<Option<Vec<_>>>()?,
        assigned_to: p.get(6).and_then(val_str),
    })
}

fn fn_to_val(f: &FnModel) -> Val {
    Val::Arr(vec![
        s(&f.name),
        opt_str(&f.qual),
        Val::Arr(f.params.iter().map(|p| s(&p.name)).collect()),
        Val::Bool(f.has_self),
        Val::Bool(f.returns_value),
        int(f.line),
        int(f.end_line),
        Val::Bool(f.in_test),
        Val::Arr(f.calls.iter().map(call_to_val).collect()),
        Val::Arr(
            f.assigns
                .iter()
                .map(|a| {
                    Val::Arr(vec![
                        s(&a.lhs),
                        str_arr(&a.rhs_idents),
                        str_arr(&a.rhs_calls),
                        int(a.line),
                    ])
                })
                .collect(),
        ),
        usize_arr(&f.source_lines),
        Val::Arr(
            f.panic_lines
                .iter()
                .map(|(l, t)| Val::Arr(vec![int(*l), s(t)]))
                .collect(),
        ),
        usize_arr(&f.shared_reads),
        str_arr(&f.return_idents),
        str_arr(&f.return_calls),
        usize_arr(&f.return_lines),
        Val::Arr(
            f.struct_lits
                .iter()
                .map(|l| {
                    Val::Arr(vec![
                        s(&l.name),
                        int(l.line),
                        str_arr(&l.idents),
                        Val::Bool(l.has_source),
                    ])
                })
                .collect(),
        ),
        Val::Arr(
            f.bin_ops
                .iter()
                .map(|b| {
                    Val::Arr(vec![
                        int(b.line),
                        s(&b.op),
                        operand_to_val(&b.left),
                        operand_to_val(&b.right),
                    ])
                })
                .collect(),
        ),
    ])
}

fn fn_from_val(v: &Val) -> Option<FnModel> {
    let p = v.as_arr()?;
    Some(FnModel {
        name: val_str(p.first()?)?,
        qual: p.get(1).and_then(val_str),
        params: val_str_vec(p.get(2))
            .into_iter()
            .map(|name| Param { name })
            .collect(),
        has_self: p.get(3)?.as_bool()?,
        returns_value: p.get(4)?.as_bool()?,
        line: val_usize(p.get(5)?)?,
        end_line: val_usize(p.get(6)?)?,
        in_test: p.get(7)?.as_bool()?,
        calls: p
            .get(8)?
            .as_arr()?
            .iter()
            .map(call_from_val)
            .collect::<Option<Vec<_>>>()?,
        assigns: p
            .get(9)?
            .as_arr()?
            .iter()
            .map(|a| {
                let q = a.as_arr()?;
                Some(Assign {
                    lhs: val_str(q.first()?)?,
                    rhs_idents: val_str_vec(q.get(1)),
                    rhs_calls: val_str_vec(q.get(2)),
                    line: val_usize(q.get(3)?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        source_lines: val_usize_vec(p.get(10)),
        panic_lines: p
            .get(11)?
            .as_arr()?
            .iter()
            .map(|pl| {
                let pair = pl.as_arr()?;
                Some((val_usize(pair.first()?)?, val_str(pair.get(1)?)?))
            })
            .collect::<Option<Vec<_>>>()?,
        shared_reads: val_usize_vec(p.get(12)),
        return_idents: val_str_vec(p.get(13)),
        return_calls: val_str_vec(p.get(14)),
        return_lines: val_usize_vec(p.get(15)),
        struct_lits: p
            .get(16)?
            .as_arr()?
            .iter()
            .map(|l| {
                let q = l.as_arr()?;
                Some(StructLit {
                    name: val_str(q.first()?)?,
                    line: val_usize(q.get(1)?)?,
                    idents: val_str_vec(q.get(2)),
                    has_source: q.get(3)?.as_bool()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        bin_ops: p
            .get(17)?
            .as_arr()?
            .iter()
            .map(|b| {
                let parts = b.as_arr()?;
                Some(BinOp {
                    line: val_usize(parts.first()?)?,
                    op: val_str(parts.get(1)?)?,
                    left: operand_from_val(parts.get(2)?)?,
                    right: operand_from_val(parts.get(3)?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn model_to_val(m: &FileModel) -> Val {
    obj(vec![
        ("path", s(&m.path)),
        ("fns", Val::Arr(m.fns.iter().map(fn_to_val).collect())),
        (
            "statics",
            Val::Arr(
                m.statics
                    .iter()
                    .map(|st| {
                        Val::Arr(vec![
                            s(&st.name),
                            int(st.line),
                            Val::Bool(st.is_mut),
                            Val::Bool(st.interior_mutable),
                            s(&st.ty),
                            Val::Bool(st.in_test),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn model_from_val(v: &Val) -> Option<FileModel> {
    Some(FileModel {
        path: val_str(v.get("path")?)?,
        fns: v
            .get("fns")?
            .as_arr()?
            .iter()
            .map(fn_from_val)
            .collect::<Option<Vec<_>>>()?,
        statics: v
            .get("statics")?
            .as_arr()?
            .iter()
            .map(|st| {
                let p = st.as_arr()?;
                Some(StaticDecl {
                    name: val_str(p.first()?)?,
                    line: val_usize(p.get(1)?)?,
                    is_mut: p.get(2)?.as_bool()?,
                    interior_mutable: p.get(3)?.as_bool()?,
                    ty: val_str(p.get(4)?)?,
                    in_test: p.get(5)?.as_bool()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn entry_from_val(v: &Val) -> Option<(String, CacheEntry)> {
    let path = val_str(v.get("path")?)?;
    let hash = u64::from_str_radix(v.get("hash")?.as_str()?, 16).ok()?;
    let scan = scan_from_val(v.get("scan")?)?;
    let model = model_from_val(v.get("model")?)?;
    Some((path, CacheEntry { hash, scan, model }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build_model;
    use crate::{scan_file, Config};

    #[test]
    fn roundtrip_preserves_scan_and_model() {
        let src = "\
fn stamp_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
";
        let cfg = Config::default();
        let path = "crates/sim/src/fixture.rs";
        let scan = scan_file(path, src, &cfg);
        let model = build_model(path, src);
        let entry = CacheEntry {
            hash: fnv1a(src.as_bytes()),
            scan: scan.clone(),
            model: model.clone(),
        };

        let mut cache = Cache::default();
        cache.entries.insert(path.to_string(), entry);
        let dir = std::env::temp_dir().join(format!("cmap-analyze-cache-{}", std::process::id()));
        let file = dir.join("cache.json");
        cache.store(&file).expect("store");
        let loaded = Cache::load(&file, &cmap_exec::Pool::new(1));
        std::fs::remove_dir_all(&dir).ok();

        let e = loaded.entries.get(path).expect("entry round-trips");
        assert_eq!(e.hash, fnv1a(src.as_bytes()));
        assert_eq!(e.model, model);
        assert_eq!(e.scan.pragmas, scan.pragmas);
        assert_eq!(e.scan.violations.len(), scan.violations.len());
        for (a, b) in e.scan.violations.iter().zip(&scan.violations) {
            assert_eq!((a.line, a.rule, &a.message), (b.line, b.rule, &b.message));
        }
    }

    #[test]
    fn schema_mismatch_discards() {
        let dir =
            std::env::temp_dir().join(format!("cmap-analyze-badcache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("cache.json");
        std::fs::write(&file, r#"{"schema":"other/v9","entries":[]}"#).expect("write");
        assert!(Cache::load(&file, &cmap_exec::Pool::new(1))
            .entries
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
