//! R10 clean twin: the helper returns `Option` and the hot path handles
//! the miss instead of panicking.

fn pick(values: &[u64], idx: usize) -> Option<u64> {
    values.get(idx).copied()
}

fn service(values: &[u64]) -> u64 {
    pick(values, 3).unwrap_or(0)
}
