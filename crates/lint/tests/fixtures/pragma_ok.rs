//! Pragma fixture: justified exceptions are silent.

pub fn noted() -> bool {
    // cmap-lint: allow(wall-clock) — fixture: standalone pragma covers the next code line
    let clock = std::time::SystemTime::UNIX_EPOCH;
    format!("{clock:?}").is_empty()
}

pub fn trailing(x: f64) -> bool {
    x == 0.5 // cmap-lint: allow(float-cmp) — fixture: exact sentinel comparison is intended
}
