//! R4 fixture: `.expect("")` and whitespace-only messages satisfy a
//! naive `.unwrap()` search while documenting no invariant at all.

fn first(values: &[u64]) -> u64 {
    *values.first().expect("")
}

fn second(values: &[u64]) -> u64 {
    *values.get(1).expect("   ")
}
