//! R3 fixture: float equality and NaN-prone comparisons.

pub fn is_zero(sigma: f64) -> bool {
    sigma == 0.0
}

pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn not_one(x: f64) -> bool {
    x != 1.0f64
}
