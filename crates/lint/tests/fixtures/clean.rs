//! Clean fixture: determinism-safe idioms produce no findings.

use std::collections::BTreeMap;

pub fn sum(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum()
}

pub fn compare(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub fn near(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

// Strings and comments must not trip token matching:
// "Instant::now" in a comment, and below in a string literal.
pub fn doc() -> &'static str {
    "call Instant::now and x == 0.0 and map.iter() for details"
}
