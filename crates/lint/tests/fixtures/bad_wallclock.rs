//! R2 fixture: ambient time and entropy.

pub fn elapsed_ms() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}

pub fn stamp() -> &'static str {
    use std::time::SystemTime;
    "stamped"
}

pub fn seed_from_env() -> u64 {
    std::env::var("CMAP_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}
