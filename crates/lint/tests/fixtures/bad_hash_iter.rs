//! R1 fixture: iteration over hash-ordered containers.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    pub activity: HashMap<u32, u64>,
    pub members: HashSet<u32>,
}

impl Tracker {
    pub fn sum(&self) -> u64 {
        self.activity.values().sum()
    }

    pub fn chained(&self) -> Vec<u32> {
        self.activity
            .keys()
            .copied()
            .collect()
    }

    pub fn drop_old(&mut self) {
        self.activity.retain(|_, v| *v > 0);
    }

    pub fn looped(&self) -> u64 {
        let mut total = 0;
        for m in &self.members {
            total += u64::from(*m);
        }
        total
    }
}
