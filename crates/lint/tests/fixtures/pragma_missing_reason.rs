//! Pragma without a justification is itself a violation, and silences
//! nothing.

pub fn bad(x: f64) -> bool {
    // cmap-lint: allow(float-cmp)
    x == 0.1
}
