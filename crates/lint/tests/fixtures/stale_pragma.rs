//! Stale-pragma fixture: a well-formed, reasoned allow that suppresses
//! nothing. Dead suppressions rot the audit trail, so the analyzer
//! reports the pragma itself.

// cmap-lint: allow(hash-iter) — fixture: claims a suppression the code below never needs
fn tidy(values: &[u64]) -> u64 {
    values.iter().sum()
}
