//! R7 clean twin: same call shape as `bad_det_taint.rs`, but the helper
//! derives its value from simulation time (slots), not the wall clock.

fn ticks(slots: u64) -> u64 {
    slots * 9
}

fn emit(run_id: u64) {
    let started = ticks(run_id);
    metric("run_started_slots", started + run_id);
}

fn metric(_name: &str, _value: u64) {}
