//! R9 fixture: an interior-mutable static outside the executor crate,
//! whose value also reaches a metric sink through a helper. The token
//! layer has no static-item rule, so both findings require the symbol
//! layer.

use std::sync::atomic::{AtomicU64, Ordering};

static DROPS: AtomicU64 = AtomicU64::new(0);

fn drained() -> u64 {
    DROPS.load(Ordering::Relaxed)
}

fn publish() {
    let drops = drained();
    metric("drops", drops);
}

fn metric(_name: &str, _value: u64) {}
