//! R8 fixture: a microsecond quantity crosses a call boundary into a
//! nanosecond sum. No single line mixes two unit suffixes and there is no
//! cast, so the token layer (R5) cannot see it — the mismatch only appears
//! when `wait` inherits `Us` from `backoff_us`'s return.

fn backoff_us(attempt: u64) -> u64 {
    attempt * 50
}

fn deadline(now_ns: u64, attempt: u64) -> u64 {
    let wait = backoff_us(attempt);
    now_ns + wait
}
