//! R6 fixture: ad-hoc threading outside the approved executor.

pub fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn fan_out() {
    let h = std::thread::spawn(|| ());
    h.join().ok();
    std::thread::scope(|_s| {});
    let _b = std::thread::Builder::new();
}
