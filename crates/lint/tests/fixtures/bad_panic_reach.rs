//! R10 fixture: a hot-path function calls a helper that panics. The
//! token layer only sees `.unwrap()`/`.expect("")` on the caller's own
//! lines — the `panic!` lives in the callee, so only the call graph
//! connects `service` to it.

fn pick(values: &[u64], idx: usize) -> u64 {
    if idx >= values.len() {
        panic!("index out of range");
    }
    values[idx]
}

fn service(values: &[u64]) -> u64 {
    pick(values, 3)
}
