//! R9 clean twin: the drop count is threaded through parameters instead
//! of a process-wide static, so worker join order cannot reorder it.

fn drained(drops: u64) -> u64 {
    drops
}

fn publish(drops: u64) {
    let total = drained(drops);
    metric("drops", total);
}

fn metric(_name: &str, _value: u64) {}
