//! R4 fixture: bare unwrap in hot paths.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parsed(s: &str) -> u32 {
    s.parse::<u32>().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
