//! R8 clean twin: the same backoff flow, converted through an explicit
//! `us_to_ns` helper before the nanosecond sum.

fn backoff_us(attempt: u64) -> u64 {
    attempt * 50
}

fn us_to_ns(us: u64) -> u64 {
    us * 1_000
}

fn deadline(now_ns: u64, attempt: u64) -> u64 {
    let wait_us = backoff_us(attempt);
    let wait_ns = us_to_ns(wait_us);
    now_ns + wait_ns
}
