//! R5 fixture: raw unit casts.

pub fn widen(tx_time_us: u32) -> u64 {
    tx_time_us as u64
}

pub fn to_float(airtime_ns: u64) -> f64 {
    airtime_ns as f64
}

pub fn no_unit(count: u32) -> u64 {
    count as u64
}
