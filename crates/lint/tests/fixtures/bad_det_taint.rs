//! R7 fixture: wall time laundered through a helper into a metric sink.
//! The only wall-clock token is pragma-justified, so the per-file token
//! layer reports nothing — catching the flow requires interprocedural
//! taint through `stamp`'s return value and the `started` local.

fn stamp() -> u64 {
    // cmap-lint: allow(wall-clock) — fixture: justified at the source, the value is still tainted downstream
    std::time::Instant::now().elapsed().as_secs()
}

fn emit(run_id: u64) {
    let started = stamp();
    metric("run_started_secs", started + run_id);
}

fn metric(_name: &str, _value: u64) {}
