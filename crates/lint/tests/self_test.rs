//! Fixture-based self-tests for the determinism lint, plus the
//! keep-the-tree-clean gate: scanning the real workspace must produce zero
//! findings, so `cargo test` fails the moment a violation lands.

use std::path::PathBuf;

use cmap_analyze::{scan_paths, Config, Rule};

/// Scan one fixture and return its `(rule, line)` pairs, sorted.
fn findings(fixture: &str) -> Vec<(Rule, usize)> {
    let root = PathBuf::from(format!("tests/fixtures/{fixture}"));
    let report = scan_paths(&[root], &Config::default()).expect("fixture readable");
    let mut v: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    v.sort();
    v
}

#[test]
fn hash_iter_fixture() {
    assert_eq!(
        findings("bad_hash_iter.rs"),
        vec![
            (Rule::HashIter, 12), // self.activity.values()
            (Rule::HashIter, 17), // chained .keys() (receiver on prev line)
            (Rule::HashIter, 23), // retain
            (Rule::HashIter, 28), // for _ in &self.members
        ]
    );
}

#[test]
fn wallclock_fixture() {
    assert_eq!(
        findings("bad_wallclock.rs"),
        vec![
            (Rule::WallClock, 4),  // Instant::now
            (Rule::WallClock, 9),  // SystemTime
            (Rule::WallClock, 14), // env-derived seed
        ]
    );
}

#[test]
fn float_cmp_fixture() {
    assert_eq!(
        findings("bad_float_cmp.rs"),
        vec![
            (Rule::FloatCmp, 4),  // == 0.0
            (Rule::FloatCmp, 8),  // partial_cmp chain
            (Rule::FloatCmp, 12), // != 1.0f64
        ]
    );
}

#[test]
fn unwrap_fixture() {
    // Lines 4 and 8 are hot-path unwraps; line 15 is inside #[cfg(test)]
    // and exempt.
    assert_eq!(
        findings("bad_unwrap.rs"),
        vec![(Rule::PanicBudget, 4), (Rule::PanicBudget, 8)]
    );
}

#[test]
fn unit_cast_fixture() {
    // `count as u64` on line 12 has no unit-bearing identifier: clean.
    assert_eq!(
        findings("bad_unit_cast.rs"),
        vec![(Rule::UnitCast, 4), (Rule::UnitCast, 8)]
    );
}

#[test]
fn thread_spawn_fixture() {
    assert_eq!(
        findings("bad_thread_spawn.rs"),
        vec![
            (Rule::ThreadSpawn, 4),  // available_parallelism
            (Rule::ThreadSpawn, 8),  // thread::spawn
            (Rule::ThreadSpawn, 10), // thread::scope
            (Rule::ThreadSpawn, 11), // thread::Builder
        ]
    );
}

/// The executor crate is the one sanctioned home for threads; the same
/// line is a violation anywhere else.
#[test]
fn executor_module_may_spawn() {
    let src = "pub fn go() {\n    std::thread::scope(|_s| {});\n}\n";
    let cfg = Config::default();
    let inside = cmap_analyze::scan_source("crates/exec/src/lib.rs", src, &cfg);
    assert!(inside.is_empty(), "executor path should be exempt");
    let outside = cmap_analyze::scan_source("crates/sim/src/world.rs", src, &cfg);
    assert_eq!(outside.len(), 1);
    assert_eq!(outside[0].rule, Rule::ThreadSpawn);
    assert_eq!(outside[0].line, 2);
}

#[test]
fn clean_fixture_has_no_findings() {
    assert_eq!(findings("clean.rs"), vec![]);
}

#[test]
fn justified_pragmas_silence_findings() {
    assert_eq!(findings("pragma_ok.rs"), vec![]);
}

#[test]
fn pragma_without_reason_is_flagged_and_silences_nothing() {
    assert_eq!(
        findings("pragma_missing_reason.rs"),
        vec![
            (Rule::FloatCmp, 5), // the reason-less pragma itself
            (Rule::FloatCmp, 6), // the comparison it failed to justify
        ]
    );
}

#[test]
fn diagnostics_carry_file_and_line() {
    let root = PathBuf::from("tests/fixtures/bad_wallclock.rs");
    let report = scan_paths(&[root], &Config::default()).expect("fixture readable");
    let human = cmap_analyze::render_human(&report);
    assert!(human.contains("tests/fixtures/bad_wallclock.rs:4: [wall-clock]"));
    let json = cmap_analyze::render_json(&report);
    assert!(json.contains("\"line\": 4"));
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"violation_count\": 3"));
}

/// The real tree must stay clean. Integration tests run with the crate
/// directory as cwd, so the workspace roots are two levels up.
#[test]
fn workspace_is_clean() {
    let roots = [
        PathBuf::from("../../crates"),
        PathBuf::from("../../src"),
        PathBuf::from("../../tests"),
    ];
    let report = scan_paths(&roots, &Config::default()).expect("workspace readable");
    let human = cmap_analyze::render_human(&report);
    assert!(
        report.violations.is_empty(),
        "determinism lint found violations in the workspace:\n{human}"
    );
    assert!(report.files_scanned > 50, "walk looks truncated: {human}");
}
