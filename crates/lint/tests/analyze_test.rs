//! Self-tests for the symbol layer: interprocedural rules R7–R10 (each
//! with a bad fixture the token layer provably cannot catch and a clean
//! twin), the stale-pragma audit, the golden SARIF snapshot, the
//! incremental cache, and the analyze-clean workspace gate.

use std::path::PathBuf;

use cmap_analyze::analyze::{analyze, Options};
use cmap_analyze::baseline::Baseline;
use cmap_analyze::{sarif, scan_paths, Config, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(format!("tests/fixtures/{name}"))
}

/// Full-engine `(rule, line)` pairs for one fixture, sorted.
fn flow_findings(name: &str) -> Vec<(Rule, usize)> {
    let report = analyze(&[fixture(name)], &Config::default(), &Options::default())
        .expect("fixture analyzes");
    let mut v: Vec<(Rule, usize)> = report.violations.iter().map(|f| (f.rule, f.line)).collect();
    v.sort();
    v
}

/// Token-layer-only findings for the same fixture. The bad R7–R10
/// fixtures must come back empty here: that is the proof the flow layer
/// sees something the per-file lexer cannot.
fn token_findings(name: &str) -> Vec<(Rule, usize)> {
    let report = scan_paths(&[fixture(name)], &Config::default()).expect("fixture readable");
    report.violations.iter().map(|f| (f.rule, f.line)).collect()
}

// ---------------------------------------------------------------------------
// R7 det-taint
// ---------------------------------------------------------------------------

#[test]
fn det_taint_flows_through_helper() {
    // The wall-clock source line is pragma-justified, so the token layer
    // is silent — only call-graph taint connects `stamp` to the sink.
    assert_eq!(token_findings("bad_det_taint.rs"), vec![]);
    assert_eq!(
        flow_findings("bad_det_taint.rs"),
        vec![
            (Rule::DetTaint, 12), // let started = stamp();
            (Rule::DetTaint, 13), // metric("run_started_secs", started + run_id)
        ]
    );
}

#[test]
fn det_taint_clean_twin_is_quiet() {
    assert_eq!(flow_findings("clean_det_taint.rs"), vec![]);
}

// ---------------------------------------------------------------------------
// R8 unit-flow
// ---------------------------------------------------------------------------

#[test]
fn unit_mismatch_crosses_call_boundary() {
    // No cast, no line with two unit suffixes: R5 has nothing to see.
    assert_eq!(token_findings("bad_unit_flow.rs"), vec![]);
    assert_eq!(
        flow_findings("bad_unit_flow.rs"),
        vec![(Rule::UnitFlow, 12)] // now_ns + wait (wait is us via backoff_us)
    );
}

#[test]
fn unit_flow_clean_twin_converts_first() {
    assert_eq!(flow_findings("clean_unit_flow.rs"), vec![]);
}

// ---------------------------------------------------------------------------
// R9 shared-state
// ---------------------------------------------------------------------------

#[test]
fn shared_static_and_its_flow_into_sink() {
    // The token layer has no rule for static items at all.
    assert_eq!(token_findings("bad_shared_state.rs"), vec![]);
    assert_eq!(
        flow_findings("bad_shared_state.rs"),
        vec![
            (Rule::SharedState, 8),  // static DROPS: AtomicU64
            (Rule::SharedState, 16), // metric("drops", drops) via drained()
        ]
    );
}

#[test]
fn shared_state_clean_twin_threads_params() {
    assert_eq!(flow_findings("clean_shared_state.rs"), vec![]);
}

// ---------------------------------------------------------------------------
// R10 panic-reach
// ---------------------------------------------------------------------------

#[test]
fn panic_in_callee_reaches_hot_caller() {
    // The `panic!` lives in the callee; the caller's own lines are clean,
    // so R4's per-line token search cannot connect them.
    assert_eq!(token_findings("bad_panic_reach.rs"), vec![]);
    assert_eq!(
        flow_findings("bad_panic_reach.rs"),
        vec![(Rule::PanicReach, 14)] // pick(values, 3)
    );
}

#[test]
fn panic_reach_clean_twin_handles_none() {
    assert_eq!(flow_findings("clean_panic_reach.rs"), vec![]);
}

// ---------------------------------------------------------------------------
// Stale pragmas and the R4 empty-expect gap
// ---------------------------------------------------------------------------

#[test]
fn pragma_suppressing_nothing_is_reported() {
    assert_eq!(
        flow_findings("stale_pragma.rs"),
        vec![(Rule::StalePragma, 5)] // allow(hash-iter) over hash-free code
    );
}

#[test]
fn justified_pragma_that_suppresses_is_not_stale() {
    // bad_det_taint.rs carries a justified allow(wall-clock) that silences
    // a real token finding — it must not appear as stale.
    let stale: Vec<(Rule, usize)> = flow_findings("bad_det_taint.rs")
        .into_iter()
        .filter(|(r, _)| *r == Rule::StalePragma)
        .collect();
    assert_eq!(stale, vec![]);
}

#[test]
fn empty_and_whitespace_expect_are_flagged() {
    assert_eq!(
        token_findings("bad_empty_expect.rs"),
        vec![(Rule::PanicBudget, 5), (Rule::PanicBudget, 9)]
    );
}

// ---------------------------------------------------------------------------
// Golden SARIF snapshot
// ---------------------------------------------------------------------------

/// The SARIF document must be byte-stable: no timestamps, no absolute
/// paths, deterministic ordering. Regenerate the snapshot with
/// `UPDATE_GOLDEN=1 cargo test -p cmap-analyze golden_sarif` after an
/// intentional format change.
#[test]
fn golden_sarif_snapshot() {
    let report = analyze(
        &[fixture("bad_unit_flow.rs"), fixture("bad_empty_expect.rs")],
        &Config::default(),
        &Options::default(),
    )
    .expect("fixtures analyze");
    let baseline = Baseline::parse(
        r#"{"schema":"cmap-analyze-baseline/v1","entries":[
            {"rule":"unit-flow","path":"tests/fixtures/bad_unit_flow.rs",
             "snippet":"now_ns + wait",
             "reason":"fixture pin exercising SARIF suppressions"}]}"#,
    )
    .expect("baseline parses");
    let split = baseline.split(report.violations);
    assert_eq!(split.new.len(), 2, "two empty-expect findings stay new");
    assert_eq!(split.pinned.len(), 1, "the unit-flow finding is pinned");
    let doc = sarif::render(&split.new, &split.pinned);

    let golden_path = PathBuf::from("tests/golden/analyze.sarif");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("golden dir");
        std::fs::write(&golden_path, &doc).expect("golden written");
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "golden snapshot missing — run UPDATE_GOLDEN=1 cargo test -p cmap-analyze golden_sarif",
    );
    assert_eq!(
        doc, golden,
        "SARIF output drifted from tests/golden/analyze.sarif"
    );
}

// ---------------------------------------------------------------------------
// Incremental cache
// ---------------------------------------------------------------------------

#[test]
fn warm_cache_skips_unchanged_and_one_byte_edit_invalidates_one_file() {
    // Keep the `tests/fixtures` marker in the copied paths so the copies
    // stay inside the det/hot rule scope, like the originals.
    let tmp = std::env::temp_dir()
        .join(format!("cmap-analyze-cache-{}", std::process::id()))
        .join("tests/fixtures");
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let a = tmp.join("bad_unit_flow.rs");
    let b = tmp.join("clean_unit_flow.rs");
    std::fs::copy(fixture("bad_unit_flow.rs"), &a).expect("copy a");
    std::fs::copy(fixture("clean_unit_flow.rs"), &b).expect("copy b");
    let opts = Options {
        jobs: 2,
        cache_path: Some(tmp.join("cache.json")),
        baseline_path: None,
    };
    let cfg = Config::default();
    let roots = [a.clone(), b.clone()];

    let cold = analyze(&roots, &cfg, &opts).expect("cold run");
    assert_eq!(cold.files_parsed, 2);
    assert_eq!(cold.files_from_cache, 0);
    assert_eq!(cold.violations.len(), 1, "bad fixture still found cold");

    let warm = analyze(&roots, &cfg, &opts).expect("warm run");
    assert_eq!(warm.files_parsed, 0, "warm run reparses nothing");
    assert_eq!(warm.files_from_cache, 2);
    assert_eq!(
        warm.violations.len(),
        1,
        "flow rules still fire on cached models"
    );

    // A one-byte edit to one file invalidates exactly that file.
    let mut text = std::fs::read_to_string(&b).expect("read b");
    text.push(' ');
    std::fs::write(&b, text).expect("touch b");
    let edited = analyze(&roots, &cfg, &opts).expect("edited run");
    assert_eq!(edited.files_parsed, 1, "only the edited file reparses");
    assert_eq!(edited.files_from_cache, 1);

    std::fs::remove_dir_all(&tmp).ok();
}

// ---------------------------------------------------------------------------
// The workspace gate
// ---------------------------------------------------------------------------

/// The real tree must stay analyze-clean: token rules, flow rules, and the
/// stale-pragma audit together, filtered only through the checked-in
/// baseline (whose every entry must also still match something).
#[test]
fn workspace_is_analyze_clean() {
    let roots = [
        PathBuf::from("../../crates"),
        PathBuf::from("../../src"),
        PathBuf::from("../../tests"),
    ];
    let opts = Options {
        jobs: 2,
        cache_path: None,
        baseline_path: Some(PathBuf::from("../../ANALYZE_baseline.json")),
    };
    let report = analyze(&roots, &Config::default(), &opts).expect("workspace analyzes");
    let human = cmap_analyze::analyze::render_human(&report);
    assert!(
        report.violations.is_empty(),
        "cmap-analyze found non-baselined findings:\n{human}"
    );
    assert!(
        report.stale_baseline.is_empty(),
        "baseline pins findings that no longer exist:\n{human}"
    );
    assert!(
        !report.pinned.is_empty(),
        "baseline should pin the perf-sidecar flows"
    );
    assert!(report.files_scanned > 50, "walk looks truncated: {human}");
}
