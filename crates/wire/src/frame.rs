//! Top-level frame demultiplexing.
//!
//! Every frame starts with a one-byte [`FrameKind`] tag and ends with a
//! CRC-32 over everything before it. [`Frame::parse`] validates the CRC,
//! dispatches on the tag and returns a typed frame; [`Frame::emit`] is the
//! exact inverse. `parse(emit(f)) == f` for every representable frame — the
//! property tests in `tests/wire_roundtrip.rs` pin this down.

use crate::addr::MacAddr;
use crate::cmap;
use crate::cursor::Reader;
use crate::dot11;

/// Decode error for received frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The trailing CRC-32 does not match the frame contents.
    BadCrc,
    /// The frame-kind tag byte is not one we know.
    UnknownKind(u8),
    /// A field holds a value outside its legal range (e.g. a bad rate code
    /// or an interferer-list count that disagrees with the frame length).
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadCrc => write!(f, "bad frame CRC"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Malformed => write!(f, "malformed frame field"),
        }
    }
}

impl std::error::Error for WireError {}

/// The one-byte tag that starts every frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// CMAP virtual-packet header announcement.
    CmapHeader = 1,
    /// CMAP virtual-packet trailer announcement.
    CmapTrailer = 2,
    /// CMAP data packet (one of `N_vpkt` within a virtual packet).
    CmapData = 3,
    /// CMAP cumulative windowed ACK.
    CmapAck = 4,
    /// CMAP interferer-list broadcast.
    CmapInterfererList = 5,
    /// 802.11 baseline data frame.
    Dot11Data = 6,
    /// 802.11 baseline ACK frame.
    Dot11Ack = 7,
}

impl FrameKind {
    /// Parse a tag byte.
    pub fn from_u8(v: u8) -> Result<FrameKind, WireError> {
        Ok(match v {
            1 => FrameKind::CmapHeader,
            2 => FrameKind::CmapTrailer,
            3 => FrameKind::CmapData,
            4 => FrameKind::CmapAck,
            5 => FrameKind::CmapInterfererList,
            6 => FrameKind::Dot11Data,
            7 => FrameKind::Dot11Ack,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// Any frame the reproduction can put on the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// CMAP virtual-packet header (kind tag distinguishes header/trailer).
    CmapHeader(cmap::HeaderTrailer),
    /// CMAP virtual-packet trailer.
    CmapTrailer(cmap::HeaderTrailer),
    /// CMAP data packet.
    CmapData(cmap::Data),
    /// CMAP cumulative ACK.
    CmapAck(cmap::Ack),
    /// CMAP interferer-list broadcast.
    CmapInterfererList(cmap::InterfererList),
    /// 802.11 baseline data frame.
    Dot11Data(dot11::Data),
    /// 802.11 baseline ACK.
    Dot11Ack(dot11::Ack),
}

impl Frame {
    /// Parse a frame from raw received bytes, validating the trailing CRC.
    pub fn parse(buf: &[u8]) -> Result<Frame, WireError> {
        if buf.len() < 5 {
            return Err(WireError::Truncated);
        }
        if !crate::crc::verify_trailing_crc(buf) {
            return Err(WireError::BadCrc);
        }
        let body = &buf[..buf.len() - 4];
        let mut r = Reader::new(body);
        let kind = FrameKind::from_u8(r.u8()?)?;
        let frame = match kind {
            FrameKind::CmapHeader => Frame::CmapHeader(cmap::HeaderTrailer::parse_body(&mut r)?),
            FrameKind::CmapTrailer => Frame::CmapTrailer(cmap::HeaderTrailer::parse_body(&mut r)?),
            FrameKind::CmapData => Frame::CmapData(cmap::Data::parse_body(&mut r)?),
            FrameKind::CmapAck => Frame::CmapAck(cmap::Ack::parse_body(&mut r)?),
            FrameKind::CmapInterfererList => {
                Frame::CmapInterfererList(cmap::InterfererList::parse_body(&mut r)?)
            }
            FrameKind::Dot11Data => Frame::Dot11Data(dot11::Data::parse_body(&mut r)?),
            FrameKind::Dot11Ack => Frame::Dot11Ack(dot11::Ack::parse_body(&mut r)?),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed);
        }
        Ok(frame)
    }

    /// Serialise the frame, appending its CRC-32.
    pub fn emit(&self) -> Vec<u8> {
        match self {
            Frame::CmapHeader(h) => h.emit(FrameKind::CmapHeader),
            Frame::CmapTrailer(t) => t.emit(FrameKind::CmapTrailer),
            Frame::CmapData(d) => d.emit(),
            Frame::CmapAck(a) => a.emit(),
            Frame::CmapInterfererList(il) => il.emit(),
            Frame::Dot11Data(d) => d.emit(),
            Frame::Dot11Ack(a) => a.emit(),
        }
    }

    /// The tag of this frame.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::CmapHeader(_) => FrameKind::CmapHeader,
            Frame::CmapTrailer(_) => FrameKind::CmapTrailer,
            Frame::CmapData(_) => FrameKind::CmapData,
            Frame::CmapAck(_) => FrameKind::CmapAck,
            Frame::CmapInterfererList(_) => FrameKind::CmapInterfererList,
            Frame::Dot11Data(_) => FrameKind::Dot11Data,
            Frame::Dot11Ack(_) => FrameKind::Dot11Ack,
        }
    }

    /// Transmitting station, where the frame carries one.
    ///
    /// 802.11 ACKs carry only a receiver address, like the real thing.
    pub fn src(&self) -> Option<MacAddr> {
        Some(match self {
            Frame::CmapHeader(h) | Frame::CmapTrailer(h) => h.src,
            Frame::CmapData(d) => d.src,
            Frame::CmapAck(a) => a.src,
            Frame::CmapInterfererList(il) => il.src,
            Frame::Dot11Data(d) => d.src,
            Frame::Dot11Ack(_) => return None,
        })
    }

    /// Intended receiver.
    pub fn dst(&self) -> MacAddr {
        match self {
            Frame::CmapHeader(h) | Frame::CmapTrailer(h) => h.dst,
            Frame::CmapData(d) => d.dst,
            Frame::CmapAck(a) => a.dst,
            Frame::CmapInterfererList(_) => MacAddr::BROADCAST,
            Frame::Dot11Data(d) => d.dst,
            Frame::Dot11Ack(a) => a.dst,
        }
    }

    /// Serialised length in bytes (PSDU length for airtime computation),
    /// without re-serialising.
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::CmapHeader(_) | Frame::CmapTrailer(_) => cmap::HeaderTrailer::WIRE_LEN,
            Frame::CmapData(d) => d.wire_len(),
            Frame::CmapAck(a) => a.wire_len(),
            Frame::CmapInterfererList(il) => il.wire_len(),
            Frame::Dot11Data(d) => d.wire_len(),
            Frame::Dot11Ack(_) => dot11::Ack::WIRE_LEN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = vec![0x7Fu8, 1, 2, 3];
        crate::crc::append_crc(&mut buf);
        assert_eq!(Frame::parse(&buf), Err(WireError::UnknownKind(0x7F)));
    }

    #[test]
    fn bad_crc_rejected_before_kind() {
        // Even an unknown kind must first fail on CRC if the CRC is wrong.
        let buf = vec![0x7Fu8, 1, 2, 3, 0, 0, 0, 0];
        assert_eq!(Frame::parse(&buf), Err(WireError::BadCrc));
    }

    #[test]
    fn tiny_buffers_are_truncated() {
        assert_eq!(Frame::parse(&[]), Err(WireError::Truncated));
        assert_eq!(Frame::parse(&[1, 2, 3, 4]), Err(WireError::Truncated));
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in [1u8, 2, 3, 4, 5, 6, 7] {
            assert_eq!(FrameKind::from_u8(k).unwrap() as u8, k);
        }
        assert!(FrameKind::from_u8(0).is_err());
        assert!(FrameKind::from_u8(8).is_err());
    }
}
