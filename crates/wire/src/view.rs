//! Zero-copy typed frame views and in-place composition.
//!
//! [`Frame::parse`] materialises an owned frame — heap-allocating payloads
//! and entry lists — which is pure overhead on the simulator's hot path
//! where a received frame is inspected once and dropped. A [`FrameView`]
//! instead borrows the raw wire bytes and reads each field in place at its
//! fixed offset; nothing is copied until a caller explicitly asks
//! (e.g. [`FrameView::to_frame`]).
//!
//! Two entry points:
//! * [`FrameView::parse`] — the *trusted* structural parse for frames the
//!   engine itself composed: every bounds and validity rule of
//!   [`Frame::parse`] is enforced, but the trailing CRC is **not**
//!   recomputed (the simulator models corruption at the PHY grading layer,
//!   not by flipping bits, so internally-composed frames always carry a
//!   valid CRC).
//! * [`FrameView::parse_checked`] — the full mirror of [`Frame::parse`]
//!   including CRC verification, byte-for-byte equivalent in both accepted
//!   inputs and error classification. The property tests at the bottom of
//!   this module pin the equivalence per frame kind.
//!
//! The [`compose`] module is the write-side twin: each function builds a
//! complete frame — tag, body, trailing CRC — into a caller-supplied
//! `Vec<u8>` that is cleared and reused, so steady-state transmission paths
//! never allocate. `compose::x(..)` produces exactly the bytes
//! `Frame::X(..).emit()` would.

use cmap_phy::Rate;

use crate::addr::MacAddr;
use crate::cmap::{self, InterfererEntry};
use crate::dot11;
use crate::frame::{Frame, FrameKind, WireError};

// ---- field readers ------------------------------------------------------

#[inline]
fn u16_at(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

#[inline]
fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

#[inline]
fn mac_at(buf: &[u8], off: usize) -> MacAddr {
    MacAddr::from_bytes(&buf[off..off + 6])
}

/// Validate one 13-byte interferer entry run (`count` entries starting at
/// `pos`), replicating the reader's error order: a short entry is
/// [`WireError::Truncated`], a bad rate byte [`WireError::Malformed`].
/// `body_end` is the first byte past the CRC-less body.
fn check_entries(buf: &[u8], mut pos: usize, count: usize, body_end: usize) -> Result<usize, WireError> {
    for _ in 0..count {
        if body_end < pos + cmap::InterfererList::ENTRY_LEN {
            return Err(WireError::Truncated);
        }
        if Rate::from_u8(buf[pos + 12]).is_none() {
            return Err(WireError::Malformed);
        }
        pos += cmap::InterfererList::ENTRY_LEN;
    }
    Ok(pos)
}

#[inline]
fn entry_at(buf: &[u8], pos: usize) -> InterfererEntry {
    InterfererEntry {
        source: mac_at(buf, pos),
        interferer: mac_at(buf, pos + 6),
        source_rate: Rate::from_u8(buf[pos + 12]).expect("validated at parse"),
    }
}

// ---- per-kind views -----------------------------------------------------

/// View over a CMAP header/trailer frame (fixed 27 bytes).
#[derive(Debug, Clone, Copy)]
pub struct HeaderTrailerView<'a> {
    buf: &'a [u8],
}

impl<'a> HeaderTrailerView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        // Body (between tag and CRC) is 22 bytes: 6+6+4+4+1+1, so it ends
        // at offset 23. Reads are gated individually to reproduce the
        // reference reader's Truncated/Malformed ordering exactly.
        let body_end = buf.len() - 4;
        if body_end < 22 {
            return Err(WireError::Truncated);
        }
        if buf[21] as usize > cmap::MAX_VPKT_DATA {
            return Err(WireError::Malformed);
        }
        if body_end < 23 {
            return Err(WireError::Truncated);
        }
        if Rate::from_u8(buf[22]).is_none() {
            return Err(WireError::Malformed);
        }
        if body_end != 23 {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Transmitting node.
    pub fn src(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }

    /// Intended receiver of the virtual packet.
    pub fn dst(&self) -> MacAddr {
        mac_at(self.buf, 7)
    }

    /// Estimated transmission time in microseconds.
    pub fn tx_time_us(&self) -> u32 {
        u32_at(self.buf, 13)
    }

    /// Link-layer sequence number of the virtual packet.
    pub fn vpkt_seq(&self) -> u32 {
        u32_at(self.buf, 17)
    }

    /// Number of data packets in this virtual packet.
    pub fn pkt_count(&self) -> u8 {
        self.buf[21]
    }

    /// Bit-rate of the virtual packet's data packets.
    pub fn data_rate(&self) -> Rate {
        Rate::from_u8(self.buf[22]).expect("validated at parse")
    }

    /// Materialise the owned body (it is `Copy`-sized; this is cheap and
    /// lets existing handlers keep taking `&cmap::HeaderTrailer`).
    pub fn to_body(&self) -> cmap::HeaderTrailer {
        cmap::HeaderTrailer {
            src: self.src(),
            dst: self.dst(),
            tx_time_us: self.tx_time_us(),
            vpkt_seq: self.vpkt_seq(),
            pkt_count: self.pkt_count(),
            data_rate: self.data_rate(),
        }
    }
}

/// View over a CMAP data frame.
#[derive(Debug, Clone, Copy)]
pub struct CmapDataView<'a> {
    buf: &'a [u8],
}

impl<'a> CmapDataView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        let body_end = buf.len() - 4;
        // Fixed fields through the payload-length word end at offset 26.
        if body_end < 18 {
            return Err(WireError::Truncated);
        }
        if buf[17] as usize >= cmap::MAX_VPKT_DATA {
            return Err(WireError::Malformed);
        }
        if body_end < 26 {
            return Err(WireError::Truncated);
        }
        let len = u16_at(buf, 24) as usize;
        if body_end < 26 + len {
            return Err(WireError::Truncated);
        }
        if body_end != 26 + len {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Transmitting node.
    pub fn src(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }

    /// Intended receiver.
    pub fn dst(&self) -> MacAddr {
        mac_at(self.buf, 7)
    }

    /// Virtual packet this data packet travels in.
    pub fn vpkt_seq(&self) -> u32 {
        u32_at(self.buf, 13)
    }

    /// Position within the virtual packet (`0..N_vpkt`).
    pub fn index(&self) -> u8 {
        self.buf[17]
    }

    /// Higher-layer flow identifier.
    pub fn flow(&self) -> u16 {
        u16_at(self.buf, 18)
    }

    /// End-to-end sequence number within the flow.
    pub fn flow_seq(&self) -> u32 {
        u32_at(self.buf, 20)
    }

    /// Application payload, borrowed from the wire bytes.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[26..self.buf.len() - 4]
    }
}

/// View over a CMAP cumulative ACK frame.
#[derive(Debug, Clone, Copy)]
pub struct CmapAckView<'a> {
    buf: &'a [u8],
}

impl<'a> CmapAckView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        let body_end = buf.len() - 4;
        if body_end < 18 {
            return Err(WireError::Truncated);
        }
        let count = buf[17] as usize;
        if count > cmap::MAX_ACK_WINDOW {
            return Err(WireError::Malformed);
        }
        // Bitmaps, loss byte, interferer count.
        if body_end < 18 + 4 * count + 2 {
            return Err(WireError::Truncated);
        }
        let il_count = buf[19 + 4 * count] as usize;
        if il_count > cmap::Ack::MAX_IL_ENTRIES {
            return Err(WireError::Malformed);
        }
        let pos = check_entries(buf, 20 + 4 * count, il_count, body_end)?;
        if body_end != pos {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// The receiver sending the ACK.
    pub fn src(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }

    /// The data sender being acknowledged.
    pub fn dst(&self) -> MacAddr {
        mac_at(self.buf, 7)
    }

    /// First virtual-packet sequence number covered by the bitmaps.
    pub fn base_vpkt_seq(&self) -> u32 {
        u32_at(self.buf, 13)
    }

    /// Number of per-virtual-packet bitmaps (≤ [`cmap::MAX_ACK_WINDOW`]).
    pub fn bitmap_count(&self) -> usize {
        self.buf[17] as usize
    }

    /// Reception bitmap for virtual packet `base_vpkt_seq + i`.
    pub fn bitmap(&self, i: usize) -> u32 {
        debug_assert!(i < self.bitmap_count());
        u32_at(self.buf, 18 + 4 * i)
    }

    /// Observed loss rate, scaled so 255 = 100%.
    pub fn loss_rate(&self) -> u8 {
        self.buf[18 + 4 * self.bitmap_count()]
    }

    /// Loss rate as a fraction in `[0, 1]`.
    pub fn loss_rate_fraction(&self) -> f64 {
        f64::from(self.loss_rate()) / 255.0
    }

    /// Number of piggybacked interferer-list entries.
    pub fn il_count(&self) -> usize {
        self.buf[19 + 4 * self.bitmap_count()] as usize
    }

    /// Iterate the piggybacked interferer-list entries in place.
    pub fn il_entries(&self) -> impl Iterator<Item = InterfererEntry> + 'a {
        let buf = self.buf;
        let base = 20 + 4 * self.bitmap_count();
        (0..self.il_count()).map(move |i| entry_at(buf, base + cmap::InterfererList::ENTRY_LEN * i))
    }
}

/// View over a CMAP interferer-list broadcast.
#[derive(Debug, Clone, Copy)]
pub struct CmapIlView<'a> {
    buf: &'a [u8],
}

impl<'a> CmapIlView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        let body_end = buf.len() - 4;
        if body_end < 8 {
            return Err(WireError::Truncated);
        }
        let pos = check_entries(buf, 8, buf[7] as usize, body_end)?;
        if body_end != pos {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// The receiver broadcasting its list.
    pub fn src(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }

    /// Number of conflict-pair entries.
    pub fn count(&self) -> usize {
        self.buf[7] as usize
    }

    /// Iterate the conflict-pair entries in place.
    pub fn entries(&self) -> impl Iterator<Item = InterfererEntry> + 'a {
        let buf = self.buf;
        (0..self.count()).map(move |i| entry_at(buf, 8 + cmap::InterfererList::ENTRY_LEN * i))
    }
}

/// View over an 802.11 baseline data frame.
#[derive(Debug, Clone, Copy)]
pub struct Dot11DataView<'a> {
    buf: &'a [u8],
}

impl<'a> Dot11DataView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        let body_end = buf.len() - 4;
        if body_end < 16 {
            return Err(WireError::Truncated);
        }
        if buf[15] > 1 {
            return Err(WireError::Malformed);
        }
        if body_end < 28 {
            return Err(WireError::Truncated);
        }
        let len = u16_at(buf, 26) as usize;
        if body_end < 28 + len {
            return Err(WireError::Truncated);
        }
        if body_end != 28 + len {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Transmitter address.
    pub fn src(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }

    /// Receiver address.
    pub fn dst(&self) -> MacAddr {
        mac_at(self.buf, 7)
    }

    /// MAC sequence number.
    pub fn seq(&self) -> u16 {
        u16_at(self.buf, 13)
    }

    /// Retry flag.
    pub fn retry(&self) -> bool {
        self.buf[15] == 1
    }

    /// NAV duration in nanoseconds.
    pub fn duration_ns(&self) -> u32 {
        u32_at(self.buf, 16)
    }

    /// Higher-layer flow identifier.
    pub fn flow(&self) -> u16 {
        u16_at(self.buf, 20)
    }

    /// End-to-end sequence number within the flow.
    pub fn flow_seq(&self) -> u32 {
        u32_at(self.buf, 22)
    }

    /// Application payload, borrowed from the wire bytes.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[28..self.buf.len() - 4]
    }
}

/// View over an 802.11 ACK control frame (fixed 14 bytes).
#[derive(Debug, Clone, Copy)]
pub struct Dot11AckView<'a> {
    buf: &'a [u8],
}

impl<'a> Dot11AckView<'a> {
    fn check(buf: &[u8]) -> Result<(), WireError> {
        let body_end = buf.len() - 4;
        if body_end < 10 {
            return Err(WireError::Truncated);
        }
        if buf[7..10] != [0, 0, 0] {
            return Err(WireError::Malformed);
        }
        if body_end != 10 {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// The station being acknowledged.
    pub fn dst(&self) -> MacAddr {
        mac_at(self.buf, 1)
    }
}

// ---- the dispatching view ----------------------------------------------

/// A typed, zero-copy view over one complete frame (tag through CRC).
///
/// `Copy`: a view is one fat pointer per variant, so the engine can hand
/// the same view to multiple handlers (e.g. duplicate-delivery faults)
/// without cloning frame contents.
#[derive(Debug, Clone, Copy)]
pub enum FrameView<'a> {
    /// CMAP virtual-packet header.
    CmapHeader(HeaderTrailerView<'a>),
    /// CMAP virtual-packet trailer.
    CmapTrailer(HeaderTrailerView<'a>),
    /// CMAP data packet.
    CmapData(CmapDataView<'a>),
    /// CMAP cumulative ACK.
    CmapAck(CmapAckView<'a>),
    /// CMAP interferer-list broadcast.
    CmapInterfererList(CmapIlView<'a>),
    /// 802.11 baseline data frame.
    Dot11Data(Dot11DataView<'a>),
    /// 802.11 baseline ACK.
    Dot11Ack(Dot11AckView<'a>),
}

impl<'a> FrameView<'a> {
    /// Trusted structural parse: every bounds/validity rule of
    /// [`Frame::parse`] except CRC verification. Use on frames the engine
    /// composed itself; for untrusted bytes use
    /// [`FrameView::parse_checked`].
    pub fn parse(buf: &'a [u8]) -> Result<FrameView<'a>, WireError> {
        if buf.len() < 5 {
            return Err(WireError::Truncated);
        }
        let kind = FrameKind::from_u8(buf[0])?;
        Ok(match kind {
            FrameKind::CmapHeader => {
                HeaderTrailerView::check(buf)?;
                FrameView::CmapHeader(HeaderTrailerView { buf })
            }
            FrameKind::CmapTrailer => {
                HeaderTrailerView::check(buf)?;
                FrameView::CmapTrailer(HeaderTrailerView { buf })
            }
            FrameKind::CmapData => {
                CmapDataView::check(buf)?;
                FrameView::CmapData(CmapDataView { buf })
            }
            FrameKind::CmapAck => {
                CmapAckView::check(buf)?;
                FrameView::CmapAck(CmapAckView { buf })
            }
            FrameKind::CmapInterfererList => {
                CmapIlView::check(buf)?;
                FrameView::CmapInterfererList(CmapIlView { buf })
            }
            FrameKind::Dot11Data => {
                Dot11DataView::check(buf)?;
                FrameView::Dot11Data(Dot11DataView { buf })
            }
            FrameKind::Dot11Ack => {
                Dot11AckView::check(buf)?;
                FrameView::Dot11Ack(Dot11AckView { buf })
            }
        })
    }

    /// Full mirror of [`Frame::parse`]: CRC verified before anything else
    /// is inspected, then the same structural checks as
    /// [`FrameView::parse`]. Accepts exactly the inputs `Frame::parse`
    /// accepts and fails with the same [`WireError`] otherwise.
    pub fn parse_checked(buf: &'a [u8]) -> Result<FrameView<'a>, WireError> {
        if buf.len() < 5 {
            return Err(WireError::Truncated);
        }
        if !crate::crc::verify_trailing_crc(buf) {
            return Err(WireError::BadCrc);
        }
        FrameView::parse(buf)
    }

    /// The tag of this frame.
    pub fn kind(&self) -> FrameKind {
        match self {
            FrameView::CmapHeader(_) => FrameKind::CmapHeader,
            FrameView::CmapTrailer(_) => FrameKind::CmapTrailer,
            FrameView::CmapData(_) => FrameKind::CmapData,
            FrameView::CmapAck(_) => FrameKind::CmapAck,
            FrameView::CmapInterfererList(_) => FrameKind::CmapInterfererList,
            FrameView::Dot11Data(_) => FrameKind::Dot11Data,
            FrameView::Dot11Ack(_) => FrameKind::Dot11Ack,
        }
    }

    /// The underlying wire bytes (tag through CRC).
    pub fn bytes(&self) -> &'a [u8] {
        match self {
            FrameView::CmapHeader(v) | FrameView::CmapTrailer(v) => v.buf,
            FrameView::CmapData(v) => v.buf,
            FrameView::CmapAck(v) => v.buf,
            FrameView::CmapInterfererList(v) => v.buf,
            FrameView::Dot11Data(v) => v.buf,
            FrameView::Dot11Ack(v) => v.buf,
        }
    }

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes().len()
    }

    /// Transmitting station, where the frame carries one (802.11 ACKs
    /// carry only a receiver address).
    pub fn src(&self) -> Option<MacAddr> {
        Some(match self {
            FrameView::CmapHeader(v) | FrameView::CmapTrailer(v) => v.src(),
            FrameView::CmapData(v) => v.src(),
            FrameView::CmapAck(v) => v.src(),
            FrameView::CmapInterfererList(v) => v.src(),
            FrameView::Dot11Data(v) => v.src(),
            FrameView::Dot11Ack(_) => return None,
        })
    }

    /// Intended receiver.
    pub fn dst(&self) -> MacAddr {
        match self {
            FrameView::CmapHeader(v) | FrameView::CmapTrailer(v) => v.dst(),
            FrameView::CmapData(v) => v.dst(),
            FrameView::CmapAck(v) => v.dst(),
            FrameView::CmapInterfererList(_) => MacAddr::BROADCAST,
            FrameView::Dot11Data(v) => v.dst(),
            FrameView::Dot11Ack(v) => v.dst(),
        }
    }

    /// Materialise the owned [`Frame`] (slow path: tests, checkpoints,
    /// diagnostics).
    pub fn to_frame(&self) -> Frame {
        match self {
            FrameView::CmapHeader(v) => Frame::CmapHeader(v.to_body()),
            FrameView::CmapTrailer(v) => Frame::CmapTrailer(v.to_body()),
            FrameView::CmapData(v) => Frame::CmapData(cmap::Data {
                src: v.src(),
                dst: v.dst(),
                vpkt_seq: v.vpkt_seq(),
                index: v.index(),
                flow: v.flow(),
                flow_seq: v.flow_seq(),
                payload: v.payload().to_vec(),
            }),
            FrameView::CmapAck(v) => Frame::CmapAck(cmap::Ack {
                src: v.src(),
                dst: v.dst(),
                base_vpkt_seq: v.base_vpkt_seq(),
                bitmaps: (0..v.bitmap_count()).map(|i| v.bitmap(i)).collect(),
                loss_rate: v.loss_rate(),
                il_entries: v.il_entries().collect(),
            }),
            FrameView::CmapInterfererList(v) => Frame::CmapInterfererList(cmap::InterfererList {
                src: v.src(),
                entries: v.entries().collect(),
            }),
            FrameView::Dot11Data(v) => Frame::Dot11Data(dot11::Data {
                src: v.src(),
                dst: v.dst(),
                seq: v.seq(),
                retry: v.retry(),
                duration_ns: v.duration_ns(),
                flow: v.flow(),
                flow_seq: v.flow_seq(),
                payload: v.payload().to_vec(),
            }),
            FrameView::Dot11Ack(v) => Frame::Dot11Ack(dot11::Ack { dst: v.dst() }),
        }
    }
}

// ---- in-place composition ----------------------------------------------

/// Build complete frames — tag, body, trailing CRC — into a reusable
/// buffer. Each function clears `buf` first; the buffer's capacity is
/// retained across frames, so a steady-state transmit path composes
/// without allocating. Output is byte-for-byte what [`Frame::emit`] on the
/// equivalent owned frame produces.
pub mod compose {
    use super::*;

    #[inline]
    fn put_mac(buf: &mut Vec<u8>, a: MacAddr) {
        buf.extend_from_slice(a.as_bytes());
    }

    #[inline]
    fn put_u16(buf: &mut Vec<u8>, v: u16) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_entries(buf: &mut Vec<u8>, entries: &[InterfererEntry]) {
        for e in entries {
            put_mac(buf, e.source);
            put_mac(buf, e.interferer);
            buf.push(e.source_rate.to_u8());
        }
    }

    /// A CMAP header or trailer announcement (`kind` selects which).
    #[allow(clippy::too_many_arguments)]
    pub fn header_trailer(
        buf: &mut Vec<u8>,
        kind: FrameKind,
        src: MacAddr,
        dst: MacAddr,
        tx_time_us: u32,
        vpkt_seq: u32,
        pkt_count: u8,
        data_rate: Rate,
    ) {
        debug_assert!(matches!(
            kind,
            FrameKind::CmapHeader | FrameKind::CmapTrailer
        ));
        debug_assert!(pkt_count as usize <= cmap::MAX_VPKT_DATA);
        buf.clear();
        buf.push(kind as u8);
        put_mac(buf, src);
        put_mac(buf, dst);
        put_u32(buf, tx_time_us);
        put_u32(buf, vpkt_seq);
        buf.push(pkt_count);
        buf.push(data_rate.to_u8());
        crate::crc::append_crc(buf);
    }

    /// A CMAP data packet with a `payload_len`-byte payload of `fill`
    /// bytes (the simulator carries no real payload contents).
    #[allow(clippy::too_many_arguments)]
    pub fn cmap_data(
        buf: &mut Vec<u8>,
        src: MacAddr,
        dst: MacAddr,
        vpkt_seq: u32,
        index: u8,
        flow: u16,
        flow_seq: u32,
        payload_len: usize,
        fill: u8,
    ) {
        debug_assert!((index as usize) < cmap::MAX_VPKT_DATA);
        buf.clear();
        buf.push(FrameKind::CmapData as u8);
        put_mac(buf, src);
        put_mac(buf, dst);
        put_u32(buf, vpkt_seq);
        buf.push(index);
        put_u16(buf, flow);
        put_u32(buf, flow_seq);
        put_u16(buf, payload_len as u16);
        crate::crc::append_fill_and_crc(buf, fill, payload_len);
    }

    /// A CMAP cumulative ACK with piggybacked interferer entries.
    #[allow(clippy::too_many_arguments)]
    pub fn cmap_ack(
        buf: &mut Vec<u8>,
        src: MacAddr,
        dst: MacAddr,
        base_vpkt_seq: u32,
        bitmaps: &[u32],
        loss_rate: u8,
        il_entries: &[InterfererEntry],
    ) {
        assert!(bitmaps.len() <= cmap::MAX_ACK_WINDOW);
        assert!(il_entries.len() <= cmap::Ack::MAX_IL_ENTRIES);
        buf.clear();
        buf.push(FrameKind::CmapAck as u8);
        put_mac(buf, src);
        put_mac(buf, dst);
        put_u32(buf, base_vpkt_seq);
        buf.push(bitmaps.len() as u8);
        for &bm in bitmaps {
            put_u32(buf, bm);
        }
        buf.push(loss_rate);
        buf.push(il_entries.len() as u8);
        put_entries(buf, il_entries);
        crate::crc::append_crc(buf);
    }

    /// A CMAP interferer-list broadcast.
    pub fn interferer_list(buf: &mut Vec<u8>, src: MacAddr, entries: &[InterfererEntry]) {
        assert!(entries.len() <= cmap::InterfererList::MAX_ENTRIES);
        buf.clear();
        buf.push(FrameKind::CmapInterfererList as u8);
        put_mac(buf, src);
        buf.push(entries.len() as u8);
        put_entries(buf, entries);
        crate::crc::append_crc(buf);
    }

    /// An 802.11 baseline data frame with a `payload_len`-byte payload of
    /// `fill` bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn dot11_data(
        buf: &mut Vec<u8>,
        src: MacAddr,
        dst: MacAddr,
        seq: u16,
        retry: bool,
        duration_ns: u32,
        flow: u16,
        flow_seq: u32,
        payload_len: usize,
        fill: u8,
    ) {
        buf.clear();
        buf.push(FrameKind::Dot11Data as u8);
        put_mac(buf, src);
        put_mac(buf, dst);
        put_u16(buf, seq);
        buf.push(u8::from(retry));
        put_u32(buf, duration_ns);
        put_u16(buf, flow);
        put_u32(buf, flow_seq);
        put_u16(buf, payload_len as u16);
        crate::crc::append_fill_and_crc(buf, fill, payload_len);
    }

    /// An 802.11 ACK control frame.
    pub fn dot11_ack(buf: &mut Vec<u8>, dst: MacAddr) {
        buf.clear();
        buf.push(FrameKind::Dot11Ack as u8);
        put_mac(buf, dst);
        buf.extend_from_slice(&[0u8; 3]);
        crate::crc::append_crc(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    fn sample_frames() -> Vec<Frame> {
        let ht = cmap::HeaderTrailer {
            src: addr(1),
            dst: addr(2),
            tx_time_us: 61_234,
            vpkt_seq: 99,
            pkt_count: 32,
            data_rate: Rate::R18,
        };
        vec![
            Frame::CmapHeader(ht),
            Frame::CmapTrailer(ht),
            Frame::CmapData(cmap::Data {
                src: addr(3),
                dst: addr(4),
                vpkt_seq: 7,
                index: 31,
                flow: 2,
                flow_seq: 123_456,
                payload: (0..=254u8).collect(),
            }),
            Frame::CmapAck(cmap::Ack {
                src: addr(4),
                dst: addr(3),
                base_vpkt_seq: 40,
                bitmaps: vec![u32::MAX, 0, 0xDEAD_BEEF, 1],
                loss_rate: 100,
                il_entries: vec![InterfererEntry {
                    source: addr(3),
                    interferer: addr(9),
                    source_rate: Rate::R12,
                }],
            }),
            Frame::CmapAck(cmap::Ack {
                src: addr(4),
                dst: addr(3),
                base_vpkt_seq: 0,
                bitmaps: vec![],
                loss_rate: 0,
                il_entries: vec![],
            }),
            Frame::CmapInterfererList(cmap::InterfererList {
                src: addr(9),
                entries: vec![
                    InterfererEntry {
                        source: addr(1),
                        interferer: addr(2),
                        source_rate: Rate::R6,
                    },
                    InterfererEntry {
                        source: addr(1),
                        interferer: addr(5),
                        source_rate: Rate::R54,
                    },
                ],
            }),
            Frame::Dot11Data(dot11::Data {
                src: addr(1),
                dst: addr(2),
                seq: 4095,
                retry: true,
                duration_ns: 55_000,
                flow: 1,
                flow_seq: 777,
                payload: vec![0xAA; 1400],
            }),
            Frame::Dot11Ack(dot11::Ack { dst: addr(1) }),
        ]
    }

    #[test]
    fn view_parse_matches_frame_parse_on_valid_frames() {
        for frame in sample_frames() {
            let bytes = frame.emit();
            let view = FrameView::parse_checked(&bytes).expect("valid frame");
            assert_eq!(view.to_frame(), frame);
            assert_eq!(view.kind(), frame.kind());
            assert_eq!(view.src(), frame.src());
            assert_eq!(view.dst(), frame.dst());
            assert_eq!(view.wire_len(), frame.wire_len());
            // Trusted parse accepts the same frames.
            assert_eq!(FrameView::parse(&bytes).unwrap().to_frame(), frame);
        }
    }

    #[test]
    fn compose_matches_emit_per_kind() {
        let mut buf = Vec::new();
        compose::header_trailer(
            &mut buf,
            FrameKind::CmapHeader,
            addr(1),
            addr(2),
            61_234,
            99,
            32,
            Rate::R18,
        );
        assert_eq!(buf, sample_frames()[0].emit());
        compose::header_trailer(
            &mut buf,
            FrameKind::CmapTrailer,
            addr(1),
            addr(2),
            61_234,
            99,
            32,
            Rate::R18,
        );
        assert_eq!(buf, sample_frames()[1].emit());

        let d = cmap::Data {
            src: addr(3),
            dst: addr(4),
            vpkt_seq: 7,
            index: 31,
            flow: 2,
            flow_seq: 123_456,
            payload: vec![0xC5; 300],
        };
        compose::cmap_data(&mut buf, d.src, d.dst, d.vpkt_seq, d.index, d.flow, d.flow_seq, 300, 0xC5);
        assert_eq!(buf, Frame::CmapData(d).emit());

        let a = cmap::Ack {
            src: addr(4),
            dst: addr(3),
            base_vpkt_seq: 40,
            bitmaps: vec![u32::MAX, 0, 0xDEAD_BEEF, 1],
            loss_rate: 100,
            il_entries: vec![InterfererEntry {
                source: addr(3),
                interferer: addr(9),
                source_rate: Rate::R12,
            }],
        };
        compose::cmap_ack(
            &mut buf,
            a.src,
            a.dst,
            a.base_vpkt_seq,
            &a.bitmaps,
            a.loss_rate,
            &a.il_entries,
        );
        assert_eq!(buf, Frame::CmapAck(a).emit());

        let il = cmap::InterfererList {
            src: addr(9),
            entries: vec![InterfererEntry {
                source: addr(1),
                interferer: addr(2),
                source_rate: Rate::R6,
            }],
        };
        compose::interferer_list(&mut buf, il.src, &il.entries);
        assert_eq!(buf, Frame::CmapInterfererList(il).emit());

        let dd = dot11::Data {
            src: addr(1),
            dst: addr(2),
            seq: 9,
            retry: false,
            duration_ns: 44_000,
            flow: 3,
            flow_seq: 17,
            payload: vec![0xC5; 1400],
        };
        compose::dot11_data(
            &mut buf, dd.src, dd.dst, dd.seq, dd.retry, dd.duration_ns, dd.flow, dd.flow_seq,
            1400, 0xC5,
        );
        assert_eq!(buf, Frame::Dot11Data(dd).emit());

        compose::dot11_ack(&mut buf, addr(1));
        assert_eq!(buf, Frame::Dot11Ack(dot11::Ack { dst: addr(1) }).emit());
    }

    #[test]
    fn compose_reuses_capacity() {
        let mut buf = Vec::new();
        compose::dot11_data(&mut buf, addr(0), addr(1), 0, false, 0, 0, 0, 1400, 0xC5);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for seq in 1..50u16 {
            compose::dot11_data(&mut buf, addr(0), addr(1), seq, false, 0, 0, 0, 1400, 0xC5);
        }
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn parse_checked_rejects_what_frame_parse_rejects() {
        // Corrupt every byte position of every sample frame in turn; the
        // view must agree with the reference parser on accept/reject *and*
        // on the error kind.
        for frame in sample_frames() {
            let bytes = frame.emit();
            for i in 0..bytes.len() {
                for delta in [1u8, 0x80] {
                    let mut mutated = bytes.clone();
                    mutated[i] ^= delta;
                    assert_eq!(
                        FrameView::parse_checked(&mutated).map(|v| v.to_frame()),
                        Frame::parse(&mutated),
                        "kind {:?}, byte {i}, delta {delta:#x}",
                        frame.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn parse_checked_rejects_truncations_like_frame_parse() {
        for frame in sample_frames() {
            let bytes = frame.emit();
            for cut in 0..bytes.len() {
                // Re-CRC the truncated body so the structural checks (not
                // just the CRC) are what's exercised.
                let mut t = bytes[..cut].to_vec();
                if cut >= 1 {
                    crate::crc::append_crc(&mut t);
                }
                assert_eq!(
                    FrameView::parse_checked(&t).map(|v| v.to_frame()),
                    Frame::parse(&t),
                    "kind {:?}, cut {cut}",
                    frame.kind()
                );
            }
        }
    }

    #[test]
    fn trusted_parse_skips_crc_only() {
        let bytes = sample_frames()[0].emit();
        let mut bad_crc = bytes.clone();
        let n = bad_crc.len();
        bad_crc[n - 1] ^= 0xFF;
        // parse_checked mirrors Frame::parse (CRC error)...
        assert_eq!(
            FrameView::parse_checked(&bad_crc).err(),
            Some(WireError::BadCrc)
        );
        assert_eq!(Frame::parse(&bad_crc), Err(WireError::BadCrc));
        // ...while the trusted parse still reads the structure.
        assert!(FrameView::parse(&bad_crc).is_ok());
    }
}
