//! # cmap-wire — packet formats for the CMAP link layer and 802.11 baselines
//!
//! Byte-exact, allocation-light encode/decode of every frame the CMAP
//! reproduction puts on the air, in the style of `smoltcp`'s wire module:
//! explicit layouts, defensive parsing (truncation, bad CRC, bad tags all
//! yield typed errors, never panics), and round-trip tested.
//!
//! The CMAP prototype (NSDI 2008, §4.1) transmits *virtual packets*: a small
//! **header packet**, a burst of data packets, and a small **trailer packet**,
//! each an independent PHY frame with its own CRC. Figure 3 of the paper
//! gives the header/trailer fields — source (6), destination (6), estimated
//! transmission time (4), sequence number (4), CRC (4) — which
//! [`cmap::HeaderTrailer`] reproduces, preceded by a one-byte frame tag that
//! stands in for the Ethertype-style demux a real deployment would use.
//!
//! Frame inventory:
//! * [`cmap::HeaderTrailer`] — virtual-packet header/trailer announcement
//! * [`cmap::Data`] — one data packet inside a virtual packet
//! * [`cmap::Ack`] — cumulative windowed ACK with per-packet bitmap and the
//!   receiver-reported loss rate that drives CMAP's backoff (§3.4)
//! * [`cmap::InterfererList`] — the periodic broadcast that populates defer
//!   tables (§3.1), annotated with bit-rates (§3.5)
//! * [`dot11::Data`] / [`dot11::Ack`] — the 802.11 DCF baseline's frames
//!
//! The [`view`] module provides zero-copy typed accessors over raw frame
//! bytes plus in-place composition into reusable buffers — the hot-path
//! twins of [`Frame::parse`] / [`Frame::emit`], which remain the reference
//! implementation.

pub mod addr;
pub mod cmap;
pub mod crc;
pub mod cursor;
pub mod dot11;
pub mod frame;
pub mod view;

pub use addr::MacAddr;
pub use frame::{Frame, FrameKind, WireError};
pub use view::FrameView;
