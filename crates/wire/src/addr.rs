//! Link-layer addresses.

use core::fmt;

/// A 48-bit IEEE MAC address.
///
/// The simulator assigns node `i` the locally administered address
/// `02:4d:41:50:hi:lo` (`"MAP"` in the middle octets) via
/// [`MacAddr::from_node_index`]; the inverse mapping is used by stats
/// collectors to attribute frames back to simulated nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Number of bytes in an address.
    pub const LEN: usize = 6;

    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic address for simulated node `index`.
    pub fn from_node_index(index: u16) -> MacAddr {
        let [hi, lo] = index.to_be_bytes();
        MacAddr([0x02, 0x4d, 0x41, 0x50, hi, lo])
    }

    /// Recover the node index from an address produced by
    /// [`MacAddr::from_node_index`], or `None` for foreign addresses.
    pub fn node_index(&self) -> Option<u16> {
        if self.0[..4] == [0x02, 0x4d, 0x41, 0x50] {
            Some(u16::from_be_bytes([self.0[4], self.0[5]]))
        } else {
            None
        }
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// True if the multicast (group) bit is set — includes broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Parse from a byte slice of exactly [`MacAddr::LEN`] bytes.
    pub fn from_bytes(bytes: &[u8]) -> MacAddr {
        let mut addr = [0u8; 6];
        addr.copy_from_slice(bytes);
        MacAddr(addr)
    }

    /// The raw octets.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    // Reuse `Display`: addresses appear constantly in trace output and the
    // derived form is too noisy.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_index_roundtrip() {
        for i in [0u16, 1, 49, 255, 65535] {
            let a = MacAddr::from_node_index(i);
            assert_eq!(a.node_index(), Some(i));
            assert!(!a.is_broadcast());
            assert!(!a.is_multicast());
        }
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert_eq!(MacAddr::BROADCAST.node_index(), None);
    }

    #[test]
    fn display_format() {
        let a = MacAddr::from_node_index(7);
        assert_eq!(a.to_string(), "02:4d:41:50:00:07");
    }

    #[test]
    fn from_bytes_roundtrip() {
        let a = MacAddr::from_node_index(300);
        assert_eq!(MacAddr::from_bytes(a.as_bytes()), a);
    }
}
