//! CRC-32 (IEEE 802.3 polynomial) used by every frame trailer.
//!
//! The CMAP header and trailer each carry "a separate CRC covering the entire
//! header or trailer" (§3) so that they can be validated independently of the
//! (possibly corrupted) data packets around them. We use the standard
//! reflected CRC-32 with polynomial `0xEDB88320`, table-driven.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    // cmap-analyze: allow(shared-state) — write-once memo of a pure function; every init races to identical bytes
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Verify that `frame` ends with the CRC-32 of everything before it.
///
/// Returns `false` for frames shorter than the 4-byte CRC itself.
pub fn verify_trailing_crc(frame: &[u8]) -> bool {
    if frame.len() < 4 {
        return false;
    }
    let (body, tail) = frame.split_at(frame.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    crc32(body) == stored
}

/// Append the CRC-32 of the current contents of `buf` to it.
pub fn append_crc(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn append_then_verify() {
        let mut buf = b"hello cmap".to_vec();
        append_crc(&mut buf);
        assert!(verify_trailing_crc(&buf));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = b"payload bytes".to_vec();
        append_crc(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(!verify_trailing_crc(&bad), "flip at {i} undetected");
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(!verify_trailing_crc(&[]));
        assert!(!verify_trailing_crc(&[1, 2, 3]));
    }
}
