//! CRC-32 (IEEE 802.3 polynomial) used by every frame trailer.
//!
//! The CMAP header and trailer each carry "a separate CRC covering the entire
//! header or trailer" (§3) so that they can be validated independently of the
//! (possibly corrupted) data packets around them. We use the standard
//! reflected CRC-32 with polynomial `0xEDB88320`, table-driven.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    // cmap-analyze: allow(shared-state) — write-once memo of a pure function; every init races to identical bytes
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Verify that `frame` ends with the CRC-32 of everything before it.
///
/// Returns `false` for frames shorter than the 4-byte CRC itself.
pub fn verify_trailing_crc(frame: &[u8]) -> bool {
    if frame.len() < 4 {
        return false;
    }
    let (body, tail) = frame.split_at(frame.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    crc32(body) == stored
}

/// Append the CRC-32 of the current contents of `buf` to it.
pub fn append_crc(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Pre-inversion CRC state over `data` (the `crc32` loop without the final
/// complement), so the state can be advanced further before finalizing.
fn raw_state(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    crc
}

/// One CRC step with a zero input byte — the *linear* part of any step,
/// since the table is GF(2)-linear (`T[a ^ b] = T[a] ^ T[b]`), making a
/// step with byte `c` the affine map `s ↦ L(s) ^ T[c]`.
#[inline]
fn step_linear(s: u32, table: &[u32; 256]) -> u32 {
    (s >> 8) ^ table[(s & 0xff) as usize]
}

/// The affine map advancing a raw CRC state through `n` copies of one
/// constant byte: `s ↦ M·s ^ v`, with the linear part `M` stored as the
/// images of the 32 basis vectors.
#[derive(Clone, Copy)]
struct ConstTail {
    m: [u32; 32],
    v: u32,
}

impl ConstTail {
    /// Compose `n` single-byte steps with value `fill`. O(n) scalar work,
    /// done once per distinct `(fill, n)` and memoized.
    fn build(fill: u8, n: usize) -> ConstTail {
        let table = table();
        let d = table[fill as usize];
        let mut m = [0u32; 32];
        for (i, col) in m.iter_mut().enumerate() {
            *col = 1u32 << i;
        }
        let mut v = 0u32;
        for _ in 0..n {
            for col in m.iter_mut() {
                *col = step_linear(*col, table);
            }
            v = step_linear(v, table) ^ d;
        }
        ConstTail { m, v }
    }

    #[inline]
    fn apply(&self, s: u32) -> u32 {
        let mut y = self.v;
        for (i, &col) in self.m.iter().enumerate() {
            y ^= col & 0u32.wrapping_sub((s >> i) & 1);
        }
        y
    }
}

/// Extend `buf` with `n` copies of `fill`, then append the CRC-32 of the
/// whole buffer — byte-identical to `resize(.., fill)` + [`append_crc`],
/// but the constant tail advances the CRC state through a memoized affine
/// map instead of `n` table steps. This is the frame composers' fast path:
/// synthetic payloads are a repeated fill byte, so per-frame CRC cost
/// stays proportional to the (small) header, not the payload.
pub fn append_fill_and_crc(buf: &mut Vec<u8>, fill: u8, n: usize) {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    thread_local! {
        // cmap-analyze: allow(shared-state) — per-thread memo of a pure function of the key; never observable in artifacts
        static TAILS: RefCell<BTreeMap<(u8, usize), ConstTail>> = RefCell::new(BTreeMap::new());
    }
    let s = raw_state(buf);
    let tail = TAILS.with(|t| {
        *t.borrow_mut()
            .entry((fill, n))
            .or_insert_with(|| ConstTail::build(fill, n))
    });
    buf.resize(buf.len() + n, fill);
    buf.extend_from_slice(&(!tail.apply(s)).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn append_then_verify() {
        let mut buf = b"hello cmap".to_vec();
        append_crc(&mut buf);
        assert!(verify_trailing_crc(&buf));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = b"payload bytes".to_vec();
        append_crc(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(!verify_trailing_crc(&bad), "flip at {i} undetected");
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(!verify_trailing_crc(&[]));
        assert!(!verify_trailing_crc(&[1, 2, 3]));
    }

    #[test]
    fn const_tail_matches_bytewise_crc() {
        for &(fill, n) in &[
            (0xC5u8, 0usize),
            (0xC5, 1),
            (0xC5, 7),
            (0x00, 64),
            (0xFF, 255),
            (0xC5, 1400),
            (0xA7, 2048),
        ] {
            let header: Vec<u8> = (0..37u8).map(|b| b.wrapping_mul(13) ^ 0x5A).collect();
            let mut fast = header.clone();
            append_fill_and_crc(&mut fast, fill, n);
            let mut slow = header;
            slow.resize(slow.len() + n, fill);
            append_crc(&mut slow);
            assert_eq!(fast, slow, "fill={fill:#x} n={n}");
            assert!(verify_trailing_crc(&fast));
        }
    }
}
