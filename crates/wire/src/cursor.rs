//! Bounds-checked read/write cursors shared by all frame codecs.
//!
//! Parsing never panics: every read is checked and surfaces
//! [`WireError::Truncated`](crate::frame::WireError) on overrun.

use crate::addr::MacAddr;
use crate::frame::WireError;

/// A reading cursor over a received frame's bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("length checked")))
    }

    /// Read a MAC address.
    pub fn mac(&mut self) -> Result<MacAddr, WireError> {
        Ok(MacAddr::from_bytes(self.take(MacAddr::LEN)?))
    }
}

/// A writing cursor building up a frame.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a frame with a capacity hint.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a MAC address.
    pub fn mac(&mut self, addr: MacAddr) {
        self.buf.extend_from_slice(addr.as_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append the CRC-32 of everything written so far and return the frame.
    pub fn finish_with_crc(mut self) -> Vec<u8> {
        crate::crc::append_crc(&mut self.buf);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = Writer::with_capacity(64);
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.mac(MacAddr::from_node_index(3));
        w.bytes(&[9, 9, 9]);
        let buf = w.finish_with_crc();

        assert!(crate::crc::verify_trailing_crc(&buf));
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.mac().unwrap(), MacAddr::from_node_index(3));
        assert_eq!(r.take(3).unwrap(), &[9, 9, 9]);
        assert_eq!(r.remaining(), 4); // the CRC
    }

    #[test]
    fn truncation_surfaces_as_error() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // Failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }
}
