//! CMAP frame bodies: header/trailer, data, cumulative ACK, interferer list.
//!
//! Layouts follow Figure 3 of the paper for the header/trailer (src 6,
//! dst 6, transmission time 4, sequence number 4, CRC 4) plus a one-byte
//! frame tag and a one-byte bit-rate annotation (the §3.5 multi-rate
//! extension). All multi-byte fields are little-endian.

use cmap_phy::Rate;

use crate::addr::MacAddr;
use crate::cursor::{Reader, Writer};
use crate::frame::{Frame, FrameKind, WireError};

/// Maximum number of data packets a virtual packet may carry; bounded by the
/// `u32` per-virtual-packet ACK bitmap. The paper's prototype uses 32.
pub const MAX_VPKT_DATA: usize = 32;

/// Maximum number of virtual packets covered by one cumulative ACK.
pub const MAX_ACK_WINDOW: usize = 16;

/// Virtual-packet header or trailer announcement (Fig 3).
///
/// The same body serves both roles; the [`FrameKind`] tag distinguishes them.
/// `tx_time_us` is the *estimated transmission time* field: for a header it
/// is the time from the end of the header frame until the end of the virtual
/// packet (how long an overhearer should defer, §3.2); for a trailer it is
/// the total duration of the virtual packet that just ended, letting
/// receivers reconstruct the interval the transmission occupied when
/// attributing collisions (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderTrailer {
    /// Transmitting node.
    pub src: MacAddr,
    /// Intended receiver of the virtual packet.
    pub dst: MacAddr,
    /// Estimated transmission time in microseconds (see type docs).
    pub tx_time_us: u32,
    /// Link-layer sequence number of the virtual packet (per sender →
    /// destination pair).
    pub vpkt_seq: u32,
    /// Number of data packets in this virtual packet (receivers use it to
    /// count losses; implied by `tx_time_us` in the paper's format).
    pub pkt_count: u8,
    /// Bit-rate of the *data packets* of this virtual packet (§3.5
    /// annotation; the header/trailer itself is always sent at the base
    /// rate).
    pub data_rate: Rate,
}

impl HeaderTrailer {
    /// Serialised length including tag and CRC: 1+6+6+4+4+1+1+4.
    pub const WIRE_LEN: usize = 27;

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<HeaderTrailer, WireError> {
        let src = r.mac()?;
        let dst = r.mac()?;
        let tx_time_us = r.u32()?;
        let vpkt_seq = r.u32()?;
        let pkt_count = r.u8()?;
        if pkt_count as usize > MAX_VPKT_DATA {
            return Err(WireError::Malformed);
        }
        let data_rate = Rate::from_u8(r.u8()?).ok_or(WireError::Malformed)?;
        Ok(HeaderTrailer {
            src,
            dst,
            tx_time_us,
            vpkt_seq,
            pkt_count,
            data_rate,
        })
    }

    pub(crate) fn emit(&self, kind: FrameKind) -> Vec<u8> {
        debug_assert!(matches!(
            kind,
            FrameKind::CmapHeader | FrameKind::CmapTrailer
        ));
        let mut w = Writer::with_capacity(Self::WIRE_LEN);
        w.u8(kind as u8);
        w.mac(self.src);
        w.mac(self.dst);
        w.u32(self.tx_time_us);
        w.u32(self.vpkt_seq);
        w.u8(self.pkt_count);
        w.u8(self.data_rate.to_u8());
        w.finish_with_crc()
    }
}

/// One data packet within a virtual packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data {
    /// Transmitting node.
    pub src: MacAddr,
    /// Intended receiver.
    pub dst: MacAddr,
    /// Virtual packet this data packet currently travels in. Retransmitted
    /// packets are *repacked* into fresh virtual packets, so this changes
    /// across retransmissions while `flow_seq` does not.
    pub vpkt_seq: u32,
    /// Position within the virtual packet (`0..N_vpkt`), indexing the ACK
    /// bitmap bit for this packet.
    pub index: u8,
    /// Higher-layer flow identifier (stands in for the IP 5-tuple).
    pub flow: u16,
    /// End-to-end sequence number within the flow; receivers use it for
    /// duplicate suppression and loss-rate estimation.
    pub flow_seq: u32,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Data {
    /// Fixed overhead: tag 1 + src 6 + dst 6 + vpkt 4 + idx 1 + flow 2 +
    /// flow_seq 4 + len 2 + CRC 4.
    pub const OVERHEAD: usize = 30;

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        Self::OVERHEAD + self.payload.len()
    }

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<Data, WireError> {
        let src = r.mac()?;
        let dst = r.mac()?;
        let vpkt_seq = r.u32()?;
        let index = r.u8()?;
        if index as usize >= MAX_VPKT_DATA {
            return Err(WireError::Malformed);
        }
        let flow = r.u16()?;
        let flow_seq = r.u32()?;
        let len = r.u16()? as usize;
        let payload = r.take(len)?.to_vec();
        Ok(Data {
            src,
            dst,
            vpkt_seq,
            index,
            flow,
            flow_seq,
            payload,
        })
    }

    pub(crate) fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_len());
        w.u8(FrameKind::CmapData as u8);
        w.mac(self.src);
        w.mac(self.dst);
        w.u32(self.vpkt_seq);
        w.u8(self.index);
        w.u16(self.flow);
        w.u32(self.flow_seq);
        w.u16(self.payload.len() as u16);
        w.bytes(&self.payload);
        w.finish_with_crc()
    }
}

/// Cumulative windowed ACK (§3.3).
///
/// Sent by the receiver after each virtual-packet trailer. Covers the
/// `bitmaps.len()` consecutive virtual packets starting at `base_vpkt_seq`;
/// bit `i` of `bitmaps[k]` reports data packet `i` of virtual packet
/// `base_vpkt_seq + k`. The `loss_rate` byte carries the packet loss rate
/// the receiver observed over the previous window of packets, scaled to
/// 0..=255 — this is the feedback that drives the sender's backoff (§3.4).
///
/// ACKs may also piggyback the receiver's current interferer list
/// (`il_entries`). §3.1 allows interferer lists to ride on "routing beacons
/// or other control messages"; in this standalone link layer the ACK is the
/// natural carrier — crucially, it arrives during the sender's `t_ackwait`,
/// one of the few moments a saturated sender is actually listening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// The receiver sending the ACK.
    pub src: MacAddr,
    /// The data sender being acknowledged.
    pub dst: MacAddr,
    /// First virtual-packet sequence number covered by `bitmaps`.
    pub base_vpkt_seq: u32,
    /// Per-virtual-packet reception bitmaps (bit set = data packet received).
    pub bitmaps: Vec<u32>,
    /// Observed loss rate over the previous window, scaled so 255 = 100%.
    pub loss_rate: u8,
    /// Piggybacked interferer-list entries (may be empty).
    pub il_entries: Vec<InterfererEntry>,
}

impl Ack {
    /// Fixed overhead: tag 1 + src 6 + dst 6 + base 4 + bitmap count 1 +
    /// loss 1 + il count 1 + CRC 4.
    pub const OVERHEAD: usize = 24;

    /// Cap on piggybacked interferer entries.
    pub const MAX_IL_ENTRIES: usize = 32;

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        Self::OVERHEAD + 4 * self.bitmaps.len() + InterfererList::ENTRY_LEN * self.il_entries.len()
    }

    /// Loss rate as a fraction in `[0, 1]`.
    pub fn loss_rate_fraction(&self) -> f64 {
        f64::from(self.loss_rate) / 255.0
    }

    /// Scale a fractional loss rate into the wire byte (saturating).
    pub fn scale_loss_rate(fraction: f64) -> u8 {
        (fraction.clamp(0.0, 1.0) * 255.0).round() as u8
    }

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<Ack, WireError> {
        let src = r.mac()?;
        let dst = r.mac()?;
        let base_vpkt_seq = r.u32()?;
        let count = r.u8()? as usize;
        if count > MAX_ACK_WINDOW {
            return Err(WireError::Malformed);
        }
        let mut bitmaps = Vec::with_capacity(count);
        for _ in 0..count {
            bitmaps.push(r.u32()?);
        }
        let loss_rate = r.u8()?;
        let il_count = r.u8()? as usize;
        if il_count > Self::MAX_IL_ENTRIES {
            return Err(WireError::Malformed);
        }
        let mut il_entries = Vec::with_capacity(il_count);
        for _ in 0..il_count {
            let source = r.mac()?;
            let interferer = r.mac()?;
            let source_rate = Rate::from_u8(r.u8()?).ok_or(WireError::Malformed)?;
            il_entries.push(InterfererEntry {
                source,
                interferer,
                source_rate,
            });
        }
        Ok(Ack {
            src,
            dst,
            base_vpkt_seq,
            bitmaps,
            loss_rate,
            il_entries,
        })
    }

    pub(crate) fn emit(&self) -> Vec<u8> {
        assert!(self.bitmaps.len() <= MAX_ACK_WINDOW);
        let mut w = Writer::with_capacity(self.wire_len());
        w.u8(FrameKind::CmapAck as u8);
        w.mac(self.src);
        w.mac(self.dst);
        w.u32(self.base_vpkt_seq);
        w.u8(self.bitmaps.len() as u8);
        for &bm in &self.bitmaps {
            w.u32(bm);
        }
        w.u8(self.loss_rate);
        assert!(self.il_entries.len() <= Self::MAX_IL_ENTRIES);
        w.u8(self.il_entries.len() as u8);
        for e in &self.il_entries {
            w.mac(e.source);
            w.mac(e.interferer);
            w.u8(e.source_rate.to_u8());
        }
        w.finish_with_crc()
    }
}

/// One `(source, interferer)` entry of an interferer list (§3.1): the
/// transmission `source → me` suffers loss rate above `l_interf` whenever
/// `interferer → *` is concurrent. Annotated with the bit-rate the source
/// was using when the interference was observed (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfererEntry {
    /// The sender whose packets to the broadcasting receiver are being lost.
    pub source: MacAddr,
    /// The node whose concurrent transmissions destroy them.
    pub interferer: MacAddr,
    /// Bit-rate of `source`'s data packets when the conflict was observed.
    pub source_rate: Rate,
}

/// Periodic interferer-list broadcast from a receiver to its one-hop
/// neighbourhood (§3.1). Senders apply update rules 1 and 2 to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfererList {
    /// The receiver broadcasting its list.
    pub src: MacAddr,
    /// The `(source, interferer)` conflict pairs observed at `src`.
    pub entries: Vec<InterfererEntry>,
}

impl InterfererList {
    /// Fixed overhead: tag 1 + src 6 + count 1 + CRC 4.
    pub const OVERHEAD: usize = 12;

    /// Bytes per entry: source 6 + interferer 6 + rate 1.
    pub const ENTRY_LEN: usize = 13;

    /// Largest entry count that fits the one-byte count field.
    pub const MAX_ENTRIES: usize = 255;

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        Self::OVERHEAD + Self::ENTRY_LEN * self.entries.len()
    }

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<InterfererList, WireError> {
        let src = r.mac()?;
        let count = r.u8()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let source = r.mac()?;
            let interferer = r.mac()?;
            let source_rate = Rate::from_u8(r.u8()?).ok_or(WireError::Malformed)?;
            entries.push(InterfererEntry {
                source,
                interferer,
                source_rate,
            });
        }
        Ok(InterfererList { src, entries })
    }

    pub(crate) fn emit(&self) -> Vec<u8> {
        assert!(self.entries.len() <= Self::MAX_ENTRIES);
        let mut w = Writer::with_capacity(self.wire_len());
        w.u8(FrameKind::CmapInterfererList as u8);
        w.mac(self.src);
        w.u8(self.entries.len() as u8);
        for e in &self.entries {
            w.mac(e.source);
            w.mac(e.interferer);
            w.u8(e.source_rate.to_u8());
        }
        w.finish_with_crc()
    }
}

/// Convenience constructors wrapping bodies into [`Frame`]s.
impl From<Data> for Frame {
    fn from(d: Data) -> Frame {
        Frame::CmapData(d)
    }
}

impl From<Ack> for Frame {
    fn from(a: Ack) -> Frame {
        Frame::CmapAck(a)
    }
}

impl From<InterfererList> for Frame {
    fn from(il: InterfererList) -> Frame {
        Frame::CmapInterfererList(il)
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn addr(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    #[test]
    fn header_trailer_roundtrip_and_len() {
        let h = HeaderTrailer {
            src: addr(1),
            dst: addr(2),
            tx_time_us: 61_234,
            vpkt_seq: 99,
            pkt_count: 32,
            data_rate: Rate::R18,
        };
        for kind in [FrameKind::CmapHeader, FrameKind::CmapTrailer] {
            let frame = match kind {
                FrameKind::CmapHeader => Frame::CmapHeader(h),
                _ => Frame::CmapTrailer(h),
            };
            let bytes = frame.emit();
            assert_eq!(bytes.len(), HeaderTrailer::WIRE_LEN);
            assert_eq!(bytes.len(), frame.wire_len());
            assert_eq!(Frame::parse(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn header_matches_paper_field_budget() {
        // Fig 3: 6+6+4+4+4 = 24 bytes of protocol fields; we add 1 tag byte,
        // 1 packet-count byte, and 1 rate byte for the §3.5 extension.
        assert_eq!(HeaderTrailer::WIRE_LEN, 24 + 3);
    }

    #[test]
    fn data_roundtrip() {
        let d = Data {
            src: addr(3),
            dst: addr(4),
            vpkt_seq: 7,
            index: 31,
            flow: 2,
            flow_seq: 123_456,
            payload: (0..255u8).collect(),
        };
        let frame = Frame::CmapData(d.clone());
        let bytes = frame.emit();
        assert_eq!(bytes.len(), d.wire_len());
        assert_eq!(Frame::parse(&bytes).unwrap(), frame);
    }

    #[test]
    fn data_index_bound_enforced() {
        let d = Data {
            src: addr(3),
            dst: addr(4),
            vpkt_seq: 7,
            index: 31,
            flow: 0,
            flow_seq: 0,
            payload: vec![],
        };
        let mut bytes = Frame::CmapData(d).emit();
        // Patch index to 32 (out of range) and fix the CRC.
        bytes[17] = 32;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len);
        crate::crc::append_crc(&mut bytes);
        assert_eq!(Frame::parse(&bytes), Err(WireError::Malformed));
    }

    #[test]
    fn ack_roundtrip_and_loss_scaling() {
        let a = Ack {
            src: addr(4),
            dst: addr(3),
            base_vpkt_seq: 40,
            bitmaps: vec![u32::MAX, 0, 0xDEAD_BEEF, 1],
            loss_rate: Ack::scale_loss_rate(0.5),
            il_entries: vec![InterfererEntry {
                source: addr(3),
                interferer: addr(9),
                source_rate: Rate::R12,
            }],
        };
        let frame = Frame::CmapAck(a.clone());
        let bytes = frame.emit();
        assert_eq!(bytes.len(), a.wire_len());
        let parsed = Frame::parse(&bytes).unwrap();
        assert_eq!(parsed, frame);
        if let Frame::CmapAck(pa) = parsed {
            assert!((pa.loss_rate_fraction() - 0.5).abs() < 0.01);
        }
    }

    #[test]
    fn loss_rate_scaling_saturates() {
        assert_eq!(Ack::scale_loss_rate(-0.5), 0);
        assert_eq!(Ack::scale_loss_rate(0.0), 0);
        assert_eq!(Ack::scale_loss_rate(1.0), 255);
        assert_eq!(Ack::scale_loss_rate(7.0), 255);
    }

    #[test]
    fn ack_window_bound_enforced() {
        let a = Ack {
            src: addr(1),
            dst: addr(2),
            base_vpkt_seq: 0,
            bitmaps: vec![0; MAX_ACK_WINDOW],
            loss_rate: 0,
            il_entries: vec![],
        };
        // At the bound it round-trips...
        let bytes = Frame::CmapAck(a).emit();
        assert!(Frame::parse(&bytes).is_ok());
        // ...but a forged count above the bound is rejected.
        let mut bytes2 = bytes.clone();
        bytes2[17] = (MAX_ACK_WINDOW + 1) as u8;
        let body_len = bytes2.len() - 4;
        bytes2.truncate(body_len);
        crate::crc::append_crc(&mut bytes2);
        assert_eq!(Frame::parse(&bytes2), Err(WireError::Malformed));
    }

    #[test]
    fn interferer_list_roundtrip() {
        let il = InterfererList {
            src: addr(9),
            entries: vec![
                InterfererEntry {
                    source: addr(1),
                    interferer: addr(2),
                    source_rate: Rate::R6,
                },
                InterfererEntry {
                    source: addr(1),
                    interferer: addr(5),
                    source_rate: Rate::R54,
                },
            ],
        };
        let frame = Frame::CmapInterfererList(il.clone());
        let bytes = frame.emit();
        assert_eq!(bytes.len(), il.wire_len());
        assert_eq!(Frame::parse(&bytes).unwrap(), frame);
        assert!(frame.dst().is_broadcast());
    }

    #[test]
    fn empty_interferer_list_is_valid() {
        let il = InterfererList {
            src: addr(9),
            entries: vec![],
        };
        let bytes = Frame::CmapInterfererList(il).emit();
        assert_eq!(bytes.len(), InterfererList::OVERHEAD);
        assert!(Frame::parse(&bytes).is_ok());
    }

    #[test]
    fn truncated_interferer_list_rejected() {
        let il = InterfererList {
            src: addr(9),
            entries: vec![InterfererEntry {
                source: addr(1),
                interferer: addr(2),
                source_rate: Rate::R6,
            }],
        };
        let mut bytes = Frame::CmapInterfererList(il).emit();
        // Claim two entries but provide one.
        bytes[7] = 2;
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len);
        crate::crc::append_crc(&mut bytes);
        assert_eq!(Frame::parse(&bytes), Err(WireError::Truncated));
    }
}
