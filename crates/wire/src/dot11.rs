//! 802.11 DCF baseline frames.
//!
//! The paper compares CMAP against "the status quo": 802.11 with carrier
//! sense and stop-and-wait link-layer ACKs (and against variants with
//! carrier sense and/or ACKs disabled). These are the frames that baseline
//! puts on the air. The layouts are simplified 802.11 (we don't model the
//! full three-address header) but keep the fields the MAC logic actually
//! uses — including the NAV `duration` field that protects the SIFS+ACK
//! exchange — and the real 14-byte ACK length.

use crate::addr::MacAddr;
use crate::cursor::{Reader, Writer};
use crate::frame::{Frame, FrameKind, WireError};

/// 802.11 baseline unicast data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Data {
    /// Transmitter address.
    pub src: MacAddr,
    /// Receiver address.
    pub dst: MacAddr,
    /// MAC sequence number (for duplicate detection on retransmissions,
    /// mirroring the 802.11 sequence-control field).
    pub seq: u16,
    /// Retry flag: set on retransmissions.
    pub retry: bool,
    /// NAV duration in nanoseconds: time the medium remains reserved after
    /// this frame ends (SIFS + ACK for unicast data).
    pub duration_ns: u32,
    /// Higher-layer flow identifier.
    pub flow: u16,
    /// End-to-end sequence number within the flow.
    pub flow_seq: u32,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Data {
    /// Fixed overhead: tag 1 + src 6 + dst 6 + seq 2 + retry 1 + dur 4 +
    /// flow 2 + flow_seq 4 + len 2 + CRC 4.
    pub const OVERHEAD: usize = 32;

    /// Serialised length in bytes.
    pub fn wire_len(&self) -> usize {
        Self::OVERHEAD + self.payload.len()
    }

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<Data, WireError> {
        let src = r.mac()?;
        let dst = r.mac()?;
        let seq = r.u16()?;
        let retry = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed),
        };
        let duration_ns = r.u32()?;
        let flow = r.u16()?;
        let flow_seq = r.u32()?;
        let len = r.u16()? as usize;
        let payload = r.take(len)?.to_vec();
        Ok(Data {
            src,
            dst,
            seq,
            retry,
            duration_ns,
            flow,
            flow_seq,
            payload,
        })
    }

    pub(crate) fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_len());
        w.u8(FrameKind::Dot11Data as u8);
        w.mac(self.src);
        w.mac(self.dst);
        w.u16(self.seq);
        w.u8(u8::from(self.retry));
        w.u32(self.duration_ns);
        w.u16(self.flow);
        w.u32(self.flow_seq);
        w.u16(self.payload.len() as u16);
        w.bytes(&self.payload);
        w.finish_with_crc()
    }
}

/// 802.11 ACK control frame: receiver address only, padded to the real
/// 14-byte control-frame length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The station being acknowledged (the data frame's transmitter).
    pub dst: MacAddr,
}

impl Ack {
    /// 14 bytes like a real 802.11 ACK: tag 1 + dst 6 + pad 3 + CRC 4.
    pub const WIRE_LEN: usize = 14;
    const PAD: [u8; 3] = [0; 3];

    pub(crate) fn parse_body(r: &mut Reader<'_>) -> Result<Ack, WireError> {
        let dst = r.mac()?;
        if r.take(Self::PAD.len())? != Self::PAD {
            return Err(WireError::Malformed);
        }
        Ok(Ack { dst })
    }

    pub(crate) fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(Self::WIRE_LEN);
        w.u8(FrameKind::Dot11Ack as u8);
        w.mac(self.dst);
        w.bytes(&Self::PAD);
        w.finish_with_crc()
    }
}

impl From<Data> for Frame {
    fn from(d: Data) -> Frame {
        Frame::Dot11Data(d)
    }
}

impl From<Ack> for Frame {
    fn from(a: Ack) -> Frame {
        Frame::Dot11Ack(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    #[test]
    fn data_roundtrip() {
        let d = Data {
            src: addr(1),
            dst: addr(2),
            seq: 4095,
            retry: true,
            duration_ns: 55_000,
            flow: 1,
            flow_seq: 777,
            payload: vec![0xAA; 1400],
        };
        let frame = Frame::Dot11Data(d.clone());
        let bytes = frame.emit();
        assert_eq!(bytes.len(), d.wire_len());
        assert_eq!(bytes.len(), 1400 + Data::OVERHEAD);
        assert_eq!(Frame::parse(&bytes).unwrap(), frame);
    }

    #[test]
    fn ack_is_14_bytes() {
        let a = Ack { dst: addr(1) };
        let bytes = Frame::Dot11Ack(a).emit();
        assert_eq!(bytes.len(), Ack::WIRE_LEN);
        assert_eq!(Frame::parse(&bytes).unwrap(), Frame::Dot11Ack(a));
    }

    #[test]
    fn ack_has_no_src() {
        let a = Frame::Dot11Ack(Ack { dst: addr(1) });
        assert_eq!(a.src(), None);
        assert_eq!(a.dst(), addr(1));
    }

    #[test]
    fn bad_retry_flag_rejected() {
        let d = Data {
            src: addr(1),
            dst: addr(2),
            seq: 0,
            retry: false,
            duration_ns: 0,
            flow: 0,
            flow_seq: 0,
            payload: vec![],
        };
        let mut bytes = Frame::Dot11Data(d).emit();
        bytes[15] = 2; // retry byte
        let body_len = bytes.len() - 4;
        bytes.truncate(body_len);
        crate::crc::append_crc(&mut bytes);
        assert_eq!(Frame::parse(&bytes), Err(WireError::Malformed));
    }
}
