//! Access-point topologies: Fig 17 and Fig 18 (§5.6).
//!
//! The floor is divided into six regions; one AP per region (mutually out
//! of range), one random client per AP, random transfer direction. The
//! paper sweeps N = 3..6 concurrent cells with 10 experiments per N: CMAP
//! improves aggregate throughput by 21–47% and median per-sender
//! throughput by 1.8× over the status quo.

use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_topo::select;

use crate::protocol::Protocol;
use crate::runner::{parallel_map, run_links, testbed_ctx, Spec};

/// Results of the AP sweep.
#[derive(Debug, Clone)]
pub struct ApOutput {
    /// `(N, protocol label, aggregate Mbit/s per experiment)` — Fig 17's
    /// bars are the means of the sample vectors.
    pub aggregates: Vec<(usize, String, Vec<f64>)>,
    /// `(protocol label, per-sender Mbit/s pooled over all experiments)` —
    /// Fig 18's CDFs.
    pub per_sender: Vec<(String, Vec<f64>)>,
}

/// Protocols compared in §5.6.
fn protocols() -> Vec<Protocol> {
    vec![Protocol::cs_on(), Protocol::cs_off_acks(), Protocol::cmap()]
}

/// Run the Fig 17/18 sweep: `experiments_per_n` topologies for each
/// N in `3..=max_aps`.
pub fn ap_sweep(spec: &Spec, max_aps: usize, experiments_per_n: usize) -> ApOutput {
    assert!((3..=6).contains(&max_aps));
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF17);

    // Pre-draw all topologies (selection must not consume run randomness).
    let mut jobs: Vec<(usize, usize, select::ApTopology)> = Vec::new();
    for n in 3..=max_aps {
        let mut found = 0;
        let mut attempts = 0;
        while found < experiments_per_n && attempts < experiments_per_n * 30 {
            attempts += 1;
            if let Some(topo) = select::ap_topology(&ctx.tb, &ctx.lm, n, &mut rng) {
                jobs.push((n, found, topo));
                found += 1;
            }
        }
        assert!(
            found > 0,
            "no AP topology with {n} APs on testbed seed {}",
            spec.testbed_seed
        );
    }

    let mut aggregates = Vec::new();
    let mut per_sender = Vec::new();
    for (pi, proto) in protocols().iter().enumerate() {
        let outs = parallel_map(spec.jobs, &jobs, |(n, idx, topo)| {
            let stream = 0xF17_0000u64
                ^ ((pi as u64) << 24)
                ^ ((*n as u64) << 16)
                ^ ((*idx as u64) << 8)
                ^ topo
                    .aps
                    .iter()
                    .fold(0u64, |a, &x| a.rotate_left(5) ^ x as u64);
            let out = run_links(
                &ctx,
                &topo.links,
                proto,
                spec,
                derive_seed(spec.run_seed, stream),
            );
            (*n, out)
        });
        let mut pooled = Vec::new();
        for n in 3..=max_aps {
            let samples: Vec<f64> = outs
                .iter()
                .filter(|(on, _)| *on == n)
                .map(|(_, o)| o.aggregate_mbps())
                .collect();
            aggregates.push((n, proto.label(), samples));
        }
        for (_, o) in &outs {
            pooled.extend(o.per_flow_mbps.iter().copied());
        }
        per_sender.push((proto.label(), pooled));
    }
    ApOutput {
        aggregates,
        per_sender,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn ap_sweep_produces_all_cells() {
        let spec = Spec {
            duration: secs(10),
            ..Spec::quick()
        };
        let out = ap_sweep(&spec, 4, 2);
        // 2 Ns x 3 protocols rows.
        assert_eq!(out.aggregates.len(), 6);
        for (n, label, samples) in &out.aggregates {
            assert!((3..=4).contains(n));
            assert!(!samples.is_empty(), "{label} N={n} empty");
            for &s in samples {
                assert!((0.0..40.0).contains(&s), "{label} N={n}: {s}");
            }
        }
        assert_eq!(out.per_sender.len(), 3);
        for (_, samples) in &out.per_sender {
            assert!(samples.len() >= 2 * 3); // >= experiments x min links
        }
    }
}
