//! Hidden interferers and hidden terminals: Fig 14 (§5.4) and Fig 15 (§5.5).

use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_topo::select;
use rand::Rng;

use crate::exposed::Curve;
use crate::protocol::Protocol;
use crate::runner::{parallel_map, run_links, testbed_ctx, Spec, TestbedCtx};

/// One point of the Fig 14 scatter.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Point {
    /// `min(PRR(I→R), PRR(I→S))` — how audible the interferer is.
    pub min_prr: f64,
    /// Throughput of S→R under interference, normalised by its clean
    /// throughput.
    pub normalized: f64,
    /// Lower bound on the probability both S and R hear I:
    /// `max(PRR(I→R) + PRR(I→S) − 1, 0)` (§5.4).
    pub p_heard: f64,
}

/// Fig 14 output: the scatter plus the paper's two summary numbers.
#[derive(Debug, Clone)]
pub struct Fig14Output {
    /// The scatter points.
    pub points: Vec<Fig14Point>,
    /// Fraction of points in the "hidden interferer" quadrant
    /// (normalised throughput < 0.5 *and* min PRR < 0.5); the paper
    /// reports ~8%.
    pub hidden_fraction: f64,
    /// Expected CMAP normalised throughput `E[p·1 + (1−p)·T]`; the paper
    /// computes 0.896.
    pub expected_cmap: f64,
}

/// Run the §5.4 hidden-interferer study over `spec.configs` random
/// (link, interferer) triples (the paper uses 500).
pub fn fig14(spec: &Spec) -> Fig14Output {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF14);
    let triples = select::interferer_triples(&ctx.lm, spec.configs, &mut rng);
    // Interferer destinations: random distinct node (traffic needs an
    // address; with ACKs disabled the destination only shapes geometry).
    let with_dst: Vec<(select::InterfererTriple, usize)> = triples
        .into_iter()
        .map(|t| {
            let dst = loop {
                let d = rng.gen_range(0..ctx.lm.len());
                if d != t.s && d != t.r && d != t.i {
                    break d;
                }
            };
            (t, dst)
        })
        .collect();

    let blast = Protocol::cs_off_no_acks();
    let points = parallel_map(spec.jobs, &with_dst, |&(t, i_dst)| {
        let stream = 0xF14_0000u64 ^ ((t.s as u64) << 14) ^ ((t.r as u64) << 7) ^ t.i as u64;
        let seed = derive_seed(spec.run_seed, stream);
        let alone = run_links(&ctx, &[(t.s, t.r)], &blast, spec, seed).per_flow_mbps[0];
        let both =
            run_links(&ctx, &[(t.s, t.r), (t.i, i_dst)], &blast, spec, seed ^ 1).per_flow_mbps[0];
        let normalized = if alone > 0.0 {
            (both / alone).min(1.0)
        } else {
            0.0
        };
        let (pr, ps) = (ctx.lm.prr(t.i, t.r), ctx.lm.prr(t.i, t.s));
        Fig14Point {
            min_prr: pr.min(ps),
            normalized,
            p_heard: (pr + ps - 1.0).max(0.0),
        }
    });

    let hidden = points
        .iter()
        .filter(|p| p.normalized < 0.5 && p.min_prr < 0.5)
        .count();
    let expected: f64 = points
        .iter()
        .map(|p| p.p_heard + (1.0 - p.p_heard) * p.normalized)
        .sum::<f64>()
        / points.len().max(1) as f64;
    Fig14Output {
        hidden_fraction: hidden as f64 / points.len().max(1) as f64,
        expected_cmap: expected,
        points,
    }
}

/// Fig 15: hidden-terminal pairs (Fig 11(c)) under CS-on, CS-off-with-ACKs
/// and CMAP — CMAP's loss-rate backoff must avoid degradation vs the
/// status quo.
pub fn fig15(spec: &Spec) -> Vec<Curve> {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF15);
    let pairs = select::hidden_pairs(&ctx.lm, spec.configs, &mut rng);
    assert!(!pairs.is_empty(), "no hidden-terminal pairs in testbed");
    let protocols = [Protocol::cs_on(), Protocol::cs_off_acks(), Protocol::cmap()];
    protocols
        .iter()
        .enumerate()
        .map(|(pi, proto)| {
            let samples = parallel_map(spec.jobs, &pairs, |pair| {
                let links = [(pair.s1, pair.r1), (pair.s2, pair.r2)];
                let stream = 0xF15_0000u64
                    ^ ((pi as u64) << 20)
                    ^ ((pair.s1 as u64) << 12)
                    ^ ((pair.s2 as u64) << 4)
                    ^ pair.r2 as u64;
                run_links(
                    &ctx,
                    &links,
                    proto,
                    spec,
                    derive_seed(spec.run_seed, stream),
                )
                .aggregate_mbps()
            });
            Curve {
                label: proto.label(),
                samples,
            }
        })
        .collect()
}

/// Shared helper for Fig 16: the CMAP runs over a pair set, returning
/// per-link `(header_rate, either_rate)` samples.
pub(crate) fn cmap_hdr_rates(
    ctx: &TestbedCtx,
    pairs: &[select::LinkPair],
    spec: &Spec,
    stream_tag: u64,
) -> Vec<(f64, f64)> {
    let cmap = Protocol::cmap();
    let per_pair = parallel_map(spec.jobs, pairs, |pair| {
        let links = [(pair.s1, pair.r1), (pair.s2, pair.r2)];
        let stream =
            stream_tag ^ ((pair.s1 as u64) << 12) ^ ((pair.s2 as u64) << 4) ^ pair.r1 as u64;
        let out = run_links(ctx, &links, &cmap, spec, derive_seed(spec.run_seed, stream));
        out.hdr_rates
            .iter()
            .map(|&(_, h, e)| (h, e))
            .collect::<Vec<_>>()
    });
    per_pair.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn fig14_summaries_in_range() {
        let spec = Spec {
            duration: secs(8),
            configs: 10,
            ..Spec::default()
        };
        let out = fig14(&spec);
        assert_eq!(out.points.len(), 10);
        assert!((0.0..=1.0).contains(&out.hidden_fraction));
        assert!((0.0..=1.0).contains(&out.expected_cmap));
        // Most interferers are audible or harmless; expectation well above 0.5.
        assert!(out.expected_cmap > 0.5, "{}", out.expected_cmap);
        for p in &out.points {
            assert!((0.0..=1.0).contains(&p.normalized));
            assert!((0.0..=1.0).contains(&p.min_prr));
            assert!(p.p_heard <= p.min_prr + 1e-9);
        }
    }

    #[test]
    fn fig15_cmap_not_degraded() {
        let spec = Spec {
            duration: secs(12),
            configs: 3,
            ..Spec::default()
        };
        let curves = fig15(&spec);
        let mean = |label: &str| {
            let c = curves.iter().find(|c| c.label == label).expect(label);
            c.samples.iter().sum::<f64>() / c.samples.len() as f64
        };
        let cs = mean("CS, acks");
        let cmap = mean("CMAP");
        assert!(
            cmap > 0.6 * cs,
            "CMAP hidden-terminal {cmap:.2} collapsed vs CS {cs:.2}"
        );
    }
}
