//! Two-hop content-dissemination mesh: §5.7, Fig 11(d).
//!
//! A source S feeds three relays A1..A3 which forward to leaves B1..B3.
//! Relaying is real (relay flows forward only what arrived), so per-leaf
//! throughput is the emergent minimum of the two hops. The paper reports a
//! 52% aggregate gain for CMAP over the status quo, driven by the
//! `Ai → Bi` transfers being exposed terminals with respect to each other.

use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_topo::select;

use crate::protocol::Protocol;
use crate::runner::{build_world, parallel_map, testbed_ctx, Spec};

/// Aggregate leaf throughput per topology, per protocol.
#[derive(Debug, Clone)]
pub struct MeshOutput {
    /// `(protocol label, per-topology aggregate Mbit/s at the leaves)`.
    pub aggregates: Vec<(String, Vec<f64>)>,
}

/// Run `spec.configs` (≤ selectable) mesh topologies under CS-on and CMAP.
pub fn mesh(spec: &Spec, fanout: usize) -> MeshOutput {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF57);
    let topos = select::mesh_topologies(&ctx.lm, fanout, spec.configs, &mut rng);
    assert!(!topos.is_empty(), "no mesh topologies in testbed");

    let protocols = [Protocol::cs_on(), Protocol::cmap()];
    let mut aggregates = Vec::new();
    for (pi, proto) in protocols.iter().enumerate() {
        let samples = parallel_map(spec.jobs, &topos, |topo| {
            let stream = 0xF57_0000u64
                ^ ((pi as u64) << 20)
                ^ ((topo.source as u64) << 12)
                ^ topo
                    .relays
                    .iter()
                    .fold(0u64, |a, &x| a.rotate_left(6) ^ x as u64);
            run_mesh_once(&ctx, topo, proto, spec, derive_seed(spec.run_seed, stream))
        });
        aggregates.push((proto.label(), samples));
    }
    MeshOutput { aggregates }
}

/// One mesh run: S→Ai saturated flows, Ai→Bi relay flows; returns the
/// aggregate delivered rate at the leaves.
fn run_mesh_once(
    ctx: &crate::runner::TestbedCtx,
    topo: &select::MeshTopology,
    proto: &Protocol,
    spec: &Spec,
    seed: u64,
) -> f64 {
    let mut world = build_world(ctx, seed);
    let mut leaf_flows = Vec::new();
    for (k, &a) in topo.relays.iter().enumerate() {
        let up = world.add_flow(topo.source, a, spec.payload);
        let down = world.add_relay_flow(a, topo.leaves[k], spec.payload, up);
        leaf_flows.push(down);
    }
    proto.install(&mut world);
    world.run_until(spec.duration);
    let (from, to) = (spec.measure_from(), spec.duration);
    leaf_flows
        .iter()
        .map(|&f| {
            world
                .stats()
                .flow_throughput_mbps(f, spec.payload, from, to)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn mesh_delivers_end_to_end() {
        let spec = Spec {
            duration: secs(15),
            configs: 2,
            ..Spec::default()
        };
        let out = mesh(&spec, 3);
        assert_eq!(out.aggregates.len(), 2);
        for (label, samples) in &out.aggregates {
            assert_eq!(samples.len(), 2, "{label}");
            // Two-hop relaying must actually deliver something at leaves.
            assert!(samples.iter().any(|&s| s > 0.3), "{label}: {samples:?}");
        }
    }
}
