//! The protocol line-up of §5.

use cmap_core::{CmapConfig, CmapMac};
use cmap_mac80211::{DcfConfig, DcfMac};
use cmap_phy::Rate;
use cmap_sim::World;

/// A link-layer protocol configuration installable on every node of a world.
#[derive(Debug, Clone)]
pub enum Protocol {
    /// 802.11 DCF in some configuration.
    Dcf(DcfConfig),
    /// CMAP in some configuration.
    Cmap(CmapConfig),
}

impl Protocol {
    /// "CS, acks" — the status quo.
    pub fn cs_on() -> Protocol {
        Protocol::Dcf(DcfConfig::status_quo())
    }

    /// "CS off, acks".
    pub fn cs_off_acks() -> Protocol {
        Protocol::Dcf(DcfConfig::cs_off_acks())
    }

    /// "CS off, no acks" — continuous blasting.
    pub fn cs_off_no_acks() -> Protocol {
        Protocol::Dcf(DcfConfig::cs_off_no_acks())
    }

    /// CMAP with the paper's parameters.
    pub fn cmap() -> Protocol {
        Protocol::Cmap(CmapConfig::default())
    }

    /// "CMAP, win=1" — the stop-and-wait ablation of Fig 12.
    pub fn cmap_win1() -> Protocol {
        Protocol::Cmap(CmapConfig::default().stop_and_wait())
    }

    /// The same protocol with its data rate changed (§5.8).
    pub fn at_rate(self, rate: Rate) -> Protocol {
        match self {
            Protocol::Dcf(cfg) => Protocol::Dcf(cfg.at_rate(rate)),
            Protocol::Cmap(cfg) => Protocol::Cmap(cfg.at_rate(rate)),
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> String {
        match self {
            Protocol::Dcf(cfg) => match (cfg.carrier_sense, cfg.acks) {
                (true, true) => "CS, acks".into(),
                (true, false) => "CS, no acks".into(),
                (false, true) => "CS off, acks".into(),
                (false, false) => "CS off, no acks".into(),
            },
            Protocol::Cmap(cfg) if cfg.n_window == 1 => "CMAP, win=1".into(),
            Protocol::Cmap(_) => "CMAP".into(),
        }
    }

    /// The data rate this protocol transmits at.
    pub fn rate(&self) -> Rate {
        match self {
            Protocol::Dcf(cfg) => cfg.rate,
            Protocol::Cmap(cfg) => cfg.data_rate,
        }
    }

    /// Install this protocol's MAC on every node of `world`.
    pub fn install(&self, world: &mut World) {
        for node in 0..world.node_count() {
            match self {
                Protocol::Dcf(cfg) => world.set_mac(node, Box::new(DcfMac::new(cfg.clone()))),
                Protocol::Cmap(cfg) => world.set_mac(node, Box::new(CmapMac::new(cfg.clone()))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(Protocol::cs_on().label(), "CS, acks");
        assert_eq!(Protocol::cs_off_acks().label(), "CS off, acks");
        assert_eq!(Protocol::cs_off_no_acks().label(), "CS off, no acks");
        assert_eq!(Protocol::cmap().label(), "CMAP");
        assert_eq!(Protocol::cmap_win1().label(), "CMAP, win=1");
    }

    #[test]
    fn rate_builder_applies() {
        assert_eq!(Protocol::cmap().at_rate(Rate::R18).rate(), Rate::R18);
        assert_eq!(Protocol::cs_on().at_rate(Rate::R12).rate(), Rate::R12);
    }
}
