//! # cmap-experiments — the paper's evaluation, as a library
//!
//! One module per experiment of §5, each reproducing the paper's method:
//! topology selection under the Fig 11 constraints (via `cmap-topo`),
//! saturated 1400-byte flows, runs measured over their final fraction
//! (§5.1 measures the last 60 of 100 seconds), and the same protocol
//! line-up — 802.11 with carrier sense on/off, ACKs on/off, CMAP, and
//! CMAP with a stop-and-wait window.
//!
//! | Module | Paper result |
//! |---|---|
//! | [`calibration`] | §4.2 single-link CMAP vs 802.11 |
//! | [`exposed`] | Fig 12 (and Fig 20 at higher bit-rates) |
//! | [`in_range`] | Fig 13 |
//! | [`hidden`] | Fig 14 (hidden interferers) and Fig 15 (hidden terminals) |
//! | [`header_trailer`] | Fig 16 and Fig 19 |
//! | [`ap`] | Fig 17 and Fig 18 |
//! | [`mesh`] | §5.7 two-hop content dissemination |
//! | [`convergence`] | §7's transient-loss concern, quantified (extension) |
//!
//! Every function takes a [`Spec`] so benchmark binaries can trade run
//! length for fidelity (`Spec::quick` / default / `Spec::full`), and returns
//! plain data that the `cmap-bench` binaries render with `cmap-stats`.

pub mod ap;
pub mod calibration;
pub mod convergence;
pub mod exposed;
pub mod header_trailer;
pub mod hidden;
pub mod in_range;
pub mod mesh;
pub mod protocol;
pub mod runner;

pub use protocol::Protocol;
pub use runner::{parallel_map, RunOutput, Spec, TestbedCtx};
