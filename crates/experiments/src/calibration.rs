//! Single-link calibration (§4.2).
//!
//! The paper tunes `N_vpkt` so that CMAP's single-link throughput matches
//! commodity 802.11 (5.04 vs 5.07 Mbit/s at 6 Mbit/s), making the
//! comparisons fair. This module reproduces that check.

use cmap_sim::rng::{derive_seed, stream_rng};
use rand::seq::SliceRandom;

use crate::protocol::Protocol;
use crate::runner::{run_links, testbed_ctx, Spec};

/// Single-link throughputs for the calibration table.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// CMAP single-link throughput, Mbit/s.
    pub cmap_mbps: f64,
    /// 802.11 (CS + ACKs) single-link throughput, Mbit/s.
    pub dot11_mbps: f64,
    /// The link used, as (sender, receiver).
    pub link: (usize, usize),
}

/// Measure both protocols on a randomly chosen strong potential link.
pub fn single_link(spec: &Spec) -> Calibration {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xCA1);
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for a in 0..ctx.lm.len() {
        for b in 0..ctx.lm.len() {
            if a != b && ctx.lm.potential_link(a, b) && ctx.lm.strong(a, b) {
                candidates.push((a, b));
            }
        }
    }
    assert!(!candidates.is_empty(), "no strong potential links");
    let link = *candidates.choose(&mut rng).expect("non-empty");

    let cmap = run_links(
        &ctx,
        &[link],
        &Protocol::cmap(),
        spec,
        derive_seed(spec.run_seed, 0xCA11),
    )
    .per_flow_mbps[0];
    let dot11 = run_links(
        &ctx,
        &[link],
        &Protocol::cs_on(),
        spec,
        derive_seed(spec.run_seed, 0xCA12),
    )
    .per_flow_mbps[0];
    Calibration {
        cmap_mbps: cmap,
        dot11_mbps: dot11,
        link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn single_link_rates_are_comparable() {
        let spec = Spec {
            duration: secs(10),
            ..Spec::quick()
        };
        let c = single_link(&spec);
        assert!(
            (4.4..6.0).contains(&c.cmap_mbps),
            "CMAP {} Mbit/s",
            c.cmap_mbps
        );
        assert!(
            (4.4..6.0).contains(&c.dot11_mbps),
            "802.11 {} Mbit/s",
            c.dot11_mbps
        );
        // §4.2's point: the two are within a few percent of each other.
        assert!(
            (c.cmap_mbps - c.dot11_mbps).abs() < 0.7,
            "CMAP {} vs 802.11 {}",
            c.cmap_mbps,
            c.dot11_mbps
        );
    }
}
