//! Shared run machinery: specs, world construction, measurement.

use cmap_sim::time::{secs, Time};
use cmap_sim::{CounterId, MediumBuilder, PhyConfig, World};
use cmap_topo::{LinkMeasurements, RadioEnv, Testbed};

use crate::protocol::Protocol;

/// Parameters every experiment takes.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Seed for testbed generation (the "building").
    pub testbed_seed: u64,
    /// Seed for run randomness (fading, backoff draws, selection).
    pub run_seed: u64,
    /// Simulated duration of each run.
    pub duration: Time,
    /// Fraction of the run discarded as warm-up; throughput is measured
    /// over the rest (the paper measures the last 60 of 100 seconds).
    pub warmup_frac: f64,
    /// Application payload per packet (the paper uses 1400 bytes).
    pub payload: usize,
    /// Number of configurations (link pairs, topologies, ...) to evaluate.
    pub configs: usize,
    /// Worker-pool width for fanning independent runs across cores. `1`
    /// (the default) runs everything serially on the calling thread. Runs
    /// are joined in job-index order, so this knob never changes results —
    /// it is deliberately *not* serialized into report spec blocks.
    pub jobs: usize,
}

impl Default for Spec {
    fn default() -> Spec {
        Spec {
            testbed_seed: 42,
            run_seed: 1,
            duration: secs(30),
            warmup_frac: 0.4,
            payload: 1400,
            configs: 50,
            jobs: 1,
        }
    }
}

impl Spec {
    /// Short runs for unit/integration tests.
    pub fn quick() -> Spec {
        Spec {
            duration: secs(10),
            configs: 6,
            ..Spec::default()
        }
    }

    /// The paper's full method: 100-second runs measured over the last 60.
    pub fn full() -> Spec {
        Spec {
            duration: secs(100),
            warmup_frac: 0.4,
            ..Spec::default()
        }
    }

    /// Start of the measurement window.
    pub fn measure_from(&self) -> Time {
        cmap_sim::time::scale(self.duration, self.warmup_frac)
    }
}

/// A generated testbed plus its pre-run link measurements.
pub struct TestbedCtx {
    /// The testbed.
    pub tb: Testbed,
    /// Analytic PRR/RSS measurements at the base rate.
    pub lm: LinkMeasurements,
    /// The PHY configuration all runs use.
    pub phy: PhyConfig,
}

/// Translate the simulator's PHY config into the measurement environment.
pub fn radio_env(phy: &PhyConfig) -> RadioEnv {
    RadioEnv {
        tx_power_dbm: phy.tx_power_dbm,
        noise_floor_dbm: phy.noise_floor_dbm,
        fading_sigma_db: phy.fading_sigma_db,
        fading_boost_prob: phy.fading_boost_prob,
        fading_boost_db: phy.fading_boost_db,
        sensitivity_dbm: phy.sensitivity_dbm,
    }
}

/// Generate the testbed for `spec` and measure its links (as the authors
/// did "shortly before running the corresponding experiment", §5.1).
pub fn testbed_ctx(spec: &Spec) -> TestbedCtx {
    let phy = PhyConfig::default();
    let tb = Testbed::office_floor(spec.testbed_seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&phy), cmap_phy::Rate::R6, spec.payload);
    TestbedCtx { tb, lm, phy }
}

/// Build a world over the testbed's medium.
pub fn build_world(ctx: &TestbedCtx, seed: u64) -> World {
    let medium = MediumBuilder::new(&ctx.phy)
        .gains_db(ctx.tb.len(), &ctx.tb.gains_db, &ctx.tb.delay_ns)
        .build();
    World::builder()
        .medium(medium)
        .phy(ctx.phy.clone())
        .seed(seed)
        .build()
}

/// What one run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Throughput of each flow in Mbit/s over the measurement window, in
    /// the order the links were given.
    pub per_flow_mbps: Vec<f64>,
    /// Per intended link `(src, dst)`: virtual-packet header reception rate
    /// and header-or-trailer reception rate (CMAP runs only).
    pub hdr_rates: Vec<((usize, usize), f64, f64)>,
    /// Selected run counters for diagnostics.
    pub defers: u64,
    /// Total transmissions.
    pub txs: u64,
}

impl RunOutput {
    /// Sum of flow throughputs.
    pub fn aggregate_mbps(&self) -> f64 {
        self.per_flow_mbps.iter().sum()
    }
}

/// Run saturated flows over `links` under `protocol` and measure.
pub fn run_links(
    ctx: &TestbedCtx,
    links: &[(usize, usize)],
    protocol: &Protocol,
    spec: &Spec,
    run_seed: u64,
) -> RunOutput {
    let mut world = build_world(ctx, run_seed);
    let flows: Vec<u16> = links
        .iter()
        .map(|&(s, r)| world.add_flow(s, r, spec.payload))
        .collect();
    protocol.install(&mut world);
    world.run_until(spec.duration);

    let from = spec.measure_from();
    let to = spec.duration;
    let per_flow_mbps = flows
        .iter()
        .map(|&f| {
            world
                .stats()
                .flow_throughput_mbps(f, spec.payload, from, to)
        })
        .collect();
    let hdr_rates = links
        .iter()
        .filter_map(|&(s, r)| {
            world
                .stats()
                .vpkt_stats(s, r)
                .map(|v| ((s, r), v.header_rate(), v.either_rate()))
        })
        .collect();
    RunOutput {
        per_flow_mbps,
        hdr_rates,
        defers: world.stats().counter(CounterId::CmapDefer),
        txs: world.stats().counter(CounterId::SimTx),
    }
}

/// Map `f` over `items` on a deterministic worker pool of width `jobs`
/// (see `spec.jobs`). Outputs are ordered by input index regardless of
/// completion order, and `jobs == 1` is a plain serial loop, so results
/// are identical for every pool width. All threading lives in the approved
/// executor crate (`cmap-exec`); this is a thin delegation.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    cmap_exec::Pool::new(jobs).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_windows() {
        let s = Spec::default();
        assert_eq!(s.measure_from(), secs(12));
        assert_eq!(Spec::full().duration, secs(100));
        assert_eq!(Spec::full().measure_from(), secs(40));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        for jobs in [1, 4] {
            assert_eq!(parallel_map(jobs, &items, |&x| x * 2), expect);
        }
    }

    #[test]
    fn default_spec_is_serial() {
        assert_eq!(Spec::default().jobs, 1);
        assert_eq!(Spec::quick().jobs, 1);
    }

    #[test]
    fn single_link_run_produces_throughput() {
        let spec = Spec {
            duration: secs(5),
            ..Spec::quick()
        };
        let ctx = testbed_ctx(&spec);
        // Find any potential transmission link.
        let link = (0..ctx.tb.len())
            .flat_map(|a| (0..ctx.tb.len()).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && ctx.lm.potential_link(a, b))
            .expect("a potential link exists");
        let out = run_links(&ctx, &[link], &Protocol::cs_on(), &spec, 7);
        assert_eq!(out.per_flow_mbps.len(), 1);
        assert!(
            out.per_flow_mbps[0] > 3.0,
            "potential link only reached {} Mbit/s",
            out.per_flow_mbps[0]
        );
    }
}
