//! Exposed-terminal experiments: Fig 12 (§5.2) and Fig 20 (§5.8).
//!
//! Pairs of strong potential transmission links whose senders are in range
//! of each other while everything else is weak (Fig 11(a)). The paper's
//! headline: CMAP lets ~82% of such pairs transmit concurrently for a ~2×
//! gain over carrier sense, and the windowed ACK protocol (vs win=1) is
//! what protects that gain from ACK loss.

use cmap_phy::Rate;
use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_topo::select;

use crate::protocol::Protocol;
use crate::runner::{parallel_map, run_links, testbed_ctx, Spec};

/// One labelled sample set (a CDF curve's raw data).
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// One sample per evaluated configuration (aggregate Mbit/s).
    pub samples: Vec<f64>,
}

/// Run the Fig 12 protocol line-up over randomly selected exposed-terminal
/// pairs. Returns one curve per protocol, each with `spec.configs` samples.
pub fn fig12(spec: &Spec) -> Vec<Curve> {
    let protocols = vec![
        Protocol::cs_on(),
        Protocol::cs_off_no_acks(),
        Protocol::cmap(),
        Protocol::cmap_win1(),
    ];
    run_pairs(spec, &protocols, Rate::R6, select_exposed(spec))
}

/// Fig 20: exposed terminals at 6, 12 and 18 Mbit/s, CMAP vs the status quo.
/// Curve labels are `"CS@<rate>"` / `"CMAP@<rate>"`.
pub fn fig20(spec: &Spec) -> Vec<Curve> {
    let pairs = select_exposed(spec);
    let mut curves = Vec::new();
    for rate in [Rate::R6, Rate::R12, Rate::R18] {
        let mbps = rate.bits_per_sec() / 1_000_000;
        for (proto, tag) in [
            (Protocol::cs_on().at_rate(rate), "CS"),
            (Protocol::cmap().at_rate(rate), "CMAP"),
        ] {
            let mut c = run_pairs(spec, &[proto], rate, pairs.clone());
            let mut only = c.pop().expect("one curve");
            only.label = format!("{tag}@{mbps}");
            curves.push(only);
        }
    }
    curves
}

fn select_exposed(spec: &Spec) -> Vec<select::LinkPair> {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    assert!(
        !pairs.is_empty(),
        "testbed seed {} yields no exposed-terminal pairs",
        spec.testbed_seed
    );
    pairs
}

fn run_pairs(
    spec: &Spec,
    protocols: &[Protocol],
    _rate: Rate,
    pairs: Vec<select::LinkPair>,
) -> Vec<Curve> {
    let ctx = testbed_ctx(spec);
    protocols
        .iter()
        .enumerate()
        .map(|(pi, proto)| {
            let samples = parallel_map(spec.jobs, &pairs, |pair| {
                let links = [(pair.s1, pair.r1), (pair.s2, pair.r2)];
                let stream = 0xF12_0000u64
                    ^ ((pi as u64) << 20)
                    ^ ((pair.s1 as u64) << 12)
                    ^ ((pair.s2 as u64) << 4)
                    ^ pair.r1 as u64;
                let seed = derive_seed(spec.run_seed, stream);
                run_links(&ctx, &links, proto, spec, seed).aggregate_mbps()
            });
            Curve {
                label: proto.label(),
                samples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn exposed_cmap_beats_carrier_sense() {
        let spec = Spec {
            duration: secs(12),
            configs: 3,
            ..Spec::default()
        };
        let curves = fig12(&spec);
        assert_eq!(curves.len(), 4);
        let get = |label: &str| {
            curves
                .iter()
                .find(|c| c.label == label)
                .unwrap_or_else(|| panic!("missing curve {label}"))
        };
        let mean = |c: &Curve| c.samples.iter().sum::<f64>() / c.samples.len() as f64;
        let cs = mean(get("CS, acks"));
        let cmap = mean(get("CMAP"));
        // The headline claim, with slack for the tiny quick-spec sample.
        assert!(
            cmap > 1.4 * cs,
            "CMAP {cmap:.2} not clearly above CS {cs:.2} on exposed pairs"
        );
        assert!(cs > 3.0, "carrier-sense baseline implausibly low: {cs:.2}");
    }
}
