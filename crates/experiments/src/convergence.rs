//! Conflict-map convergence dynamics.
//!
//! The paper notes that "flows under CMAP may experience transient packet
//! loss before conflict map entries converge" (§7) but does not quantify
//! it. This module does: over conflicting in-range pairs it measures
//!
//! * the time until both senders hold a defer-table entry, and
//! * the throughput of the pre-convergence transient vs. steady state,
//!
//! as a function of the interferer-list broadcast period — an ablation of
//! the feedback path's responsiveness.

use cmap_core::{CmapConfig, CmapMac};
use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_sim::time::{millis, secs, Time};
use cmap_topo::select;

use crate::runner::{build_world, testbed_ctx, Spec};

/// Convergence measurements for one pair.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Time (s) until both senders hold at least one defer entry;
    /// `None` if never within the run (e.g. the pair never conflicted).
    pub converged_at_s: Option<f64>,
    /// Aggregate Mbit/s over the first 5 seconds (the transient).
    pub transient_mbps: f64,
    /// Aggregate Mbit/s over the final 40% of the run (steady state).
    pub steady_mbps: f64,
}

/// Sweep output: one entry per broadcast period.
#[derive(Debug, Clone)]
pub struct ConvergenceSweep {
    /// Broadcast period in milliseconds.
    pub period_ms: u64,
    /// Per-pair measurements.
    pub points: Vec<ConvergencePoint>,
}

/// Run the sweep over `periods_ms` with `spec.configs` in-range pairs each.
pub fn sweep(spec: &Spec, periods_ms: &[u64]) -> Vec<ConvergenceSweep> {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xC0);
    let pairs = select::in_range_pairs(&ctx.lm, spec.configs, &mut rng);
    assert!(!pairs.is_empty());

    periods_ms
        .iter()
        .map(|&period_ms| {
            let points = pairs
                .iter()
                .map(|pair| {
                    let cfg = CmapConfig {
                        broadcast_period: millis(period_ms),
                        ..CmapConfig::default()
                    };
                    let stream = 0xC0_0000u64
                        ^ (period_ms << 24)
                        ^ ((pair.s1 as u64) << 12)
                        ^ pair.s2 as u64;
                    measure_pair(
                        &ctx,
                        (pair.s1, pair.r1),
                        (pair.s2, pair.r2),
                        &cfg,
                        spec,
                        derive_seed(spec.run_seed, stream),
                    )
                })
                .collect();
            ConvergenceSweep { period_ms, points }
        })
        .collect()
}

fn measure_pair(
    ctx: &crate::runner::TestbedCtx,
    l1: (usize, usize),
    l2: (usize, usize),
    cfg: &CmapConfig,
    spec: &Spec,
    seed: u64,
) -> ConvergencePoint {
    let mut world = build_world(ctx, seed);
    let f1 = world.add_flow(l1.0, l1.1, spec.payload);
    let f2 = world.add_flow(l2.0, l2.1, spec.payload);
    for node in 0..world.node_count() {
        world.set_mac(node, Box::new(CmapMac::new(cfg.clone())));
    }

    // Step in 100 ms increments watching the senders' defer tables.
    let step = millis(100);
    let mut converged_at: Option<Time> = None;
    let mut t = 0;
    while t < spec.duration {
        t += step;
        world.run_until(t);
        if converged_at.is_none() {
            let has = |node: usize| {
                world
                    .mac_ref(node)
                    .as_any()
                    .downcast_ref::<CmapMac>()
                    .expect("cmap mac")
                    .defer_table()
                    .len_at(world.now())
                    > 0
            };
            if has(l1.0) && has(l2.0) {
                converged_at = Some(t);
            }
        }
    }

    let tput = |f: u16, from: Time, to: Time| {
        world
            .stats()
            .flow_throughput_mbps(f, spec.payload, from, to)
    };
    let transient_end = secs(5).min(spec.duration);
    ConvergencePoint {
        converged_at_s: converged_at.map(|t| t as f64 / 1e9),
        transient_mbps: tput(f1, 0, transient_end) + tput(f2, 0, transient_end),
        steady_mbps: tput(f1, spec.measure_from(), spec.duration)
            + tput(f2, spec.measure_from(), spec.duration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_points_and_sane_values() {
        let spec = Spec {
            duration: secs(10),
            configs: 2,
            ..Spec::default()
        };
        let out = sweep(&spec, &[500, 2000]);
        assert_eq!(out.len(), 2);
        for s in &out {
            assert_eq!(s.points.len(), 2);
            for p in &s.points {
                assert!(p.transient_mbps >= 0.0 && p.transient_mbps < 25.0);
                assert!(p.steady_mbps >= 0.0 && p.steady_mbps < 25.0);
                if let Some(t) = p.converged_at_s {
                    assert!(t > 0.0 && t <= 10.0);
                }
            }
        }
    }
}
