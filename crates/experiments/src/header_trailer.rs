//! Header/trailer reception: Fig 16 (§5.5) and Fig 19 (§5.6).
//!
//! Fig 16 validates the design decision to transmit both headers *and*
//! trailers: the probability that a receiver gets at least one of the two
//! per virtual packet is what keeps the conflict map fed, and it stays high
//! even when data payloads are being destroyed. Fig 19 shows how that
//! probability behaves as concurrency grows.

use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_stats::Summary;
use cmap_topo::select;
use rand::seq::SliceRandom;

use crate::hidden::cmap_hdr_rates;
use crate::protocol::Protocol;
use crate::runner::{parallel_map, run_links, testbed_ctx, Spec};

/// Fig 16 output: per-link reception-rate samples for the four curves.
#[derive(Debug, Clone)]
pub struct Fig16Output {
    /// In-range sender pairs (§5.3 experiment): header-only rates.
    pub in_range_header: Vec<f64>,
    /// In-range pairs: header-or-trailer rates.
    pub in_range_either: Vec<f64>,
    /// Out-of-range (hidden-terminal, §5.5) pairs: header-only rates.
    pub out_of_range_header: Vec<f64>,
    /// Out-of-range pairs: header-or-trailer rates.
    pub out_of_range_either: Vec<f64>,
}

/// Recompute Fig 16 from fresh CMAP runs over the §5.3 and §5.5 pair sets.
pub fn fig16(spec: &Spec) -> Fig16Output {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF16);
    let in_range = select::in_range_pairs(&ctx.lm, spec.configs, &mut rng);
    let hidden = select::hidden_pairs(&ctx.lm, spec.configs, &mut rng);
    assert!(!in_range.is_empty() && !hidden.is_empty());

    let ir = cmap_hdr_rates(&ctx, &in_range, spec, 0xF16_1000);
    let oor = cmap_hdr_rates(&ctx, &hidden, spec, 0xF16_2000);
    Fig16Output {
        in_range_header: ir.iter().map(|&(h, _)| h).collect(),
        in_range_either: ir.iter().map(|&(_, e)| e).collect(),
        out_of_range_header: oor.iter().map(|&(h, _)| h).collect(),
        out_of_range_either: oor.iter().map(|&(_, e)| e).collect(),
    }
}

/// Fig 19 output: header-or-trailer reception statistics per concurrency
/// level.
#[derive(Debug, Clone)]
pub struct Fig19Row {
    /// Number of concurrent senders.
    pub senders: usize,
    /// Distribution of per-receiver header-or-trailer reception rates.
    pub summary: Summary,
}

/// Run `experiments_per_k` CMAP runs with `k` spatially spread concurrent
/// potential links, for `k` in `2..=7`, and summarise the per-receiver
/// header-or-trailer reception probability.
pub fn fig19(spec: &Spec, experiments_per_k: usize) -> Vec<Fig19Row> {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF19);
    // All potential links, as (sender, receiver).
    let mut all_links: Vec<(usize, usize)> = Vec::new();
    for a in 0..ctx.lm.len() {
        for b in 0..ctx.lm.len() {
            if a != b && ctx.lm.potential_link(a, b) {
                all_links.push((a, b));
            }
        }
    }
    let cmap = Protocol::cmap();
    let mut rows = Vec::new();
    for k in 2..=7usize {
        // Build experiment link sets: random node-disjoint selections.
        let mut link_sets = Vec::new();
        'outer: for _ in 0..experiments_per_k * 8 {
            if link_sets.len() >= experiments_per_k {
                break 'outer;
            }
            let mut pool = all_links.clone();
            pool.shuffle(&mut rng);
            let mut used = Vec::new();
            let mut set = Vec::new();
            for (s, r) in pool {
                if used.contains(&s) || used.contains(&r) {
                    continue;
                }
                set.push((s, r));
                used.push(s);
                used.push(r);
                if set.len() == k {
                    break;
                }
            }
            if set.len() == k {
                link_sets.push(set);
            }
        }
        let rates: Vec<f64> = parallel_map(spec.jobs, &link_sets, |set| {
            let stream = 0xF19_0000u64
                ^ ((k as u64) << 16)
                ^ set.iter().fold(0u64, |acc, &(s, r)| {
                    acc.rotate_left(7) ^ ((s as u64) << 8) ^ r as u64
                });
            let out = run_links(&ctx, set, &cmap, spec, derive_seed(spec.run_seed, stream));
            out.hdr_rates.iter().map(|&(_, _, e)| e).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        if !rates.is_empty() {
            rows.push(Fig19Row {
                senders: k,
                summary: Summary::of(&rates),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn trailers_add_to_headers() {
        let spec = Spec {
            duration: secs(12),
            configs: 3,
            ..Spec::default()
        };
        let out = fig16(&spec);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        // header-or-trailer >= header-only, pointwise by construction;
        // check the aggregate and that the out-of-range case benefits more
        // (the paper's observation).
        assert!(mean(&out.in_range_either) >= mean(&out.in_range_header) - 1e-9);
        assert!(mean(&out.out_of_range_either) >= mean(&out.out_of_range_header) - 1e-9);
        // On in-range pairs the either-rate should be high.
        assert!(
            mean(&out.in_range_either) > 0.6,
            "in-range either rate {}",
            mean(&out.in_range_either)
        );
    }

    #[test]
    fn fig19_rows_cover_concurrency_levels() {
        let spec = Spec {
            duration: secs(8),
            configs: 2,
            ..Spec::default()
        };
        let rows = fig19(&spec, 1);
        assert!(rows.len() >= 4, "got {} rows", rows.len());
        for r in &rows {
            assert!((2..=7).contains(&r.senders));
            assert!(r.summary.mean >= 0.0 && r.summary.mean <= 1.0);
        }
    }
}
