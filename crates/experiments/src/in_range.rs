//! Two senders in range of each other: Fig 13 (§5.3).
//!
//! Unlike the exposed-terminal selection, the cross-link signal strengths
//! are unconstrained: some pairs conflict (carrier sense was right), some
//! are exposed terminals (carrier sense was wasteful). The figure shows
//! CMAP tracking whichever of CS-on / CS-off is better per pair — it
//! *discriminates* instead of guessing.

use cmap_sim::rng::{derive_seed, stream_rng};
use cmap_topo::select;

use crate::exposed::Curve;
use crate::protocol::Protocol;
use crate::runner::{parallel_map, run_links, testbed_ctx, Spec};

/// The Fig 13 line-up over in-range sender pairs.
pub fn fig13(spec: &Spec) -> Vec<Curve> {
    let ctx = testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0xF13);
    let pairs = select::in_range_pairs(&ctx.lm, spec.configs, &mut rng);
    assert!(!pairs.is_empty(), "no in-range pairs in testbed");
    let protocols = [
        Protocol::cs_on(),
        Protocol::cs_off_acks(),
        Protocol::cs_off_no_acks(),
        Protocol::cmap(),
    ];
    protocols
        .iter()
        .enumerate()
        .map(|(pi, proto)| {
            let samples = parallel_map(spec.jobs, &pairs, |pair| {
                let links = [(pair.s1, pair.r1), (pair.s2, pair.r2)];
                let stream = 0xF13_0000u64
                    ^ ((pi as u64) << 20)
                    ^ ((pair.s1 as u64) << 12)
                    ^ ((pair.s2 as u64) << 4)
                    ^ pair.r1 as u64;
                run_links(
                    &ctx,
                    &links,
                    proto,
                    spec,
                    derive_seed(spec.run_seed, stream),
                )
                .aggregate_mbps()
            });
            Curve {
                label: proto.label(),
                samples,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;

    #[test]
    fn cmap_is_never_much_worse_than_the_best_baseline() {
        let spec = Spec {
            duration: secs(12),
            configs: 3,
            ..Spec::default()
        };
        let curves = fig13(&spec);
        assert_eq!(curves.len(), 4);
        let mean = |label: &str| {
            let c = curves.iter().find(|c| c.label == label).expect(label);
            c.samples.iter().sum::<f64>() / c.samples.len() as f64
        };
        let cs_on = mean("CS, acks");
        let cmap = mean("CMAP");
        // CMAP should at least roughly match carrier sense on mixed pairs
        // (it converges to it when pairs conflict, §5.3).
        assert!(
            cmap > 0.7 * cs_on,
            "CMAP {cmap:.2} collapsed vs CS {cs_on:.2}"
        );
    }
}
