//! Precomputed BER-vs-SINR interpolation tables for the grading hot path.
//!
//! Frame grading evaluates the decode BER once per interference segment of
//! every reception — tens of millions of calls per benchmark suite. The
//! direct evaluator ([`crate::error_model::ber`]) walks `erfc` plus a
//! Horner union-bound per call; measurement showed the old `(sinr.to_bits(),
//! rate)` memo cache in front of it almost never hit (suite-wide 3.3%),
//! because fading makes nearly every SINR bit pattern unique. This module
//! replaces both with per-rate tables sampled once per process:
//!
//! * **Grid**: [`GRID_POINTS`] nodes per rate, uniform in `log2(sinr)` over
//!   `[`[`LOG2_SINR_LO`]`, `[`LOG2_SINR_HI`]`]` (−60 dB … +90 dB, ~0.037 dB
//!   spacing). Every node stores the *exact* `f64` the direct evaluator
//!   produces — bit-exact on the sampled grid by construction.
//! * **Lookup**: linear interpolation between the two surrounding nodes.
//!   Outside the grid the curve is flat to double precision (0.5 below,
//!   ~0 above), so lookups clamp. Piecewise-linear interpolation through
//!   monotone nodes preserves the monotonicity the PHY proptests pin.
//! * **Error mode**: this is the *versioned, error-bounded* mode of the
//!   tentpole spec ([`TABLE_VERSION`]). The builder measures the deviation
//!   against the direct evaluator at every segment midpoint — the worst
//!   case for linear interpolation — and [`BerTable::max_abs_err`] is
//!   recorded in the perf artifact (`BENCH_perf.json`, `ber_table` block).
//!   [`ERR_BOUND`] is the documented ceiling, property-tested per rate in
//!   `tests/phy_props.rs`.
//!
//! The table is immutable after construction and shared process-wide
//! ([`BerTable::shared`]): it is a pure function of nothing — no
//! configuration, seed or ambient state reaches the builder — so sharing
//! cannot couple runs, and per-`World` construction cost (8 × 4097 direct
//! evaluations ≈ milliseconds) would otherwise dominate short runs.

use std::sync::OnceLock;

use crate::rate::Rate;

/// Version tag of the error-bounded table mode, recorded in perf artifacts
/// alongside the measured max error. Bump on any change to the grid or
/// interpolation scheme.
pub const TABLE_VERSION: &str = "ber-table/v1";

/// `log2` of the smallest tabulated SINR (−60 dB). Below this every rate's
/// BER has saturated at 0.5 to double precision.
pub const LOG2_SINR_LO: f64 = -20.0;

/// `log2` of the largest tabulated SINR (+90 dB). Above this every rate's
/// BER has underflowed to 0 to double precision.
pub const LOG2_SINR_HI: f64 = 30.0;

/// Grid nodes per rate ([`GRID_SEGMENTS`] + 1).
pub const GRID_POINTS: usize = GRID_SEGMENTS + 1;

/// Interpolation segments per rate. A power of two so the grid step
/// (50/4096 in log2-SINR) is exactly representable.
const GRID_SEGMENTS: usize = 4096;

/// Documented ceiling on `|table − direct|` for any in-range lookup,
/// enforced by the per-rate bounded-error proptest. Measured midpoint
/// maxima ([`BerTable::max_abs_err`]) sit near 1.1e-3, all of it in the
/// never-decodes shoulder (BER > 0.4); where frames can actually decode
/// (direct BER < 0.1) the measured maximum is under 2.5e-4.
pub const ERR_BOUND: f64 = 2e-3;

/// Grid step in `log2(sinr)`.
const STEP: f64 = (LOG2_SINR_HI - LOG2_SINR_LO) / GRID_SEGMENTS as f64;

/// Per-rate BER-vs-SINR interpolation tables. Construct via
/// [`BerTable::shared`] (or [`BerTable::build`] in tests).
#[derive(Debug)]
pub struct BerTable {
    /// `Rate::ALL.len() * GRID_POINTS` node values, rate-major. Nodes hold
    /// the *unsaturated* union bound ([`crate::error_model::ber_union_bound`]);
    /// lookups saturate at 0.5 after interpolating, so the clamp kink is
    /// reproduced exactly instead of being smeared across a segment.
    values: Vec<f64>,
    /// Largest `|table − direct|` observed at any segment midpoint during
    /// construction, across all rates.
    max_abs_err: f64,
}

impl BerTable {
    /// The process-wide shared table, built on first use.
    pub fn shared() -> &'static BerTable {
        // cmap-analyze: allow(shared-state) — write-once immutable table of a pure function; cannot couple runs
        static SHARED: OnceLock<BerTable> = OnceLock::new();
        SHARED.get_or_init(BerTable::build)
    }

    /// Sample the direct evaluator at every grid node and measure the
    /// interpolation error at every segment midpoint.
    pub fn build() -> BerTable {
        let n_rates = Rate::ALL.len();
        let mut values = vec![0.0; n_rates * GRID_POINTS];
        let mut max_abs_err = 0.0_f64;
        for (r, &rate) in Rate::ALL.iter().enumerate() {
            let row = &mut values[r * GRID_POINTS..(r + 1) * GRID_POINTS];
            for (i, v) in row.iter_mut().enumerate() {
                *v = crate::error_model::ber_union_bound(Self::grid_sinr(i), rate);
            }
            for i in 0..GRID_SEGMENTS {
                let mid = (LOG2_SINR_LO + (i as f64 + 0.5) * STEP).exp2();
                let direct = crate::error_model::ber(mid, rate);
                let interp = ((row[i] + row[i + 1]) * 0.5).min(0.5);
                max_abs_err = max_abs_err.max((interp - direct).abs());
            }
        }
        BerTable {
            values,
            max_abs_err,
        }
    }

    /// The linear SINR of grid node `i` (same for every rate).
    pub fn grid_sinr(i: usize) -> f64 {
        (LOG2_SINR_LO + i as f64 * STEP).exp2()
    }

    /// The exact direct-evaluator value stored at grid node `i` for `rate`
    /// — bit-exactness on the sampled grid is tested against this.
    pub fn grid_value(&self, rate: Rate, i: usize) -> f64 {
        self.values[rate.to_u8() as usize * GRID_POINTS + i].min(0.5)
    }

    /// Largest midpoint deviation from the direct evaluator measured at
    /// construction (recorded in `BENCH_perf.json`).
    pub fn max_abs_err(&self) -> f64 {
        self.max_abs_err
    }

    /// The information-bit error rate at linear `sinr` and `rate`,
    /// interpolated. Non-positive (or NaN) SINR saturates at 0.5, matching
    /// the direct evaluator's clamp.
    #[inline]
    pub fn ber(&self, sinr: f64, rate: Rate) -> f64 {
        if sinr <= 0.0 || sinr.is_nan() {
            return 0.5;
        }
        let x = sinr.log2();
        let row = rate.to_u8() as usize * GRID_POINTS;
        if x <= LOG2_SINR_LO {
            return self.values[row].min(0.5);
        }
        if x >= LOG2_SINR_HI {
            return self.values[row + GRID_SEGMENTS].min(0.5);
        }
        let f = (x - LOG2_SINR_LO) * (1.0 / STEP);
        let i = (f as usize).min(GRID_SEGMENTS - 1);
        let frac = f - i as f64;
        let lo = self.values[row + i];
        let hi = self.values[row + i + 1];
        (lo + (hi - lo) * frac).min(0.5)
    }
}

#[cfg(test)]
// Boundary tests assert exact IEEE semantics where bit equality is the
// property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::error_model::ber;

    #[test]
    fn grid_nodes_are_exact_direct_values() {
        let t = BerTable::build();
        for rate in Rate::ALL {
            for i in [0, 1, GRID_SEGMENTS / 2, GRID_SEGMENTS - 1, GRID_SEGMENTS] {
                assert_eq!(
                    t.grid_value(rate, i).to_bits(),
                    ber(BerTable::grid_sinr(i), rate).to_bits(),
                    "{rate} node {i}"
                );
            }
        }
    }

    #[test]
    fn lookups_stay_probabilities_and_monotone() {
        let t = BerTable::shared();
        for rate in Rate::ALL {
            let mut last = f64::INFINITY;
            for db in -700..=1000 {
                let sinr = 10f64.powf(f64::from(db) / 10.0 / 10.0);
                let v = t.ber(sinr, rate);
                assert!((0.0..=0.5).contains(&v), "{rate} ber({sinr}) = {v}");
                assert!(v <= last + 1e-15, "{rate} not monotone at {db}");
                last = v;
            }
        }
    }

    #[test]
    fn out_of_range_and_degenerate_inputs_clamp() {
        let t = BerTable::shared();
        for rate in Rate::ALL {
            assert_eq!(t.ber(0.0, rate), 0.5);
            assert_eq!(t.ber(-1.0, rate), 0.5);
            assert_eq!(t.ber(f64::NAN, rate), 0.5);
            assert_eq!(t.ber(1e-30, rate), 0.5, "{rate} deep below grid");
            assert!(t.ber(1e30, rate) < 1e-300, "{rate} far above grid");
        }
    }

    #[test]
    fn measured_midpoint_error_is_within_the_documented_bound() {
        let t = BerTable::shared();
        assert!(t.max_abs_err() > 0.0, "builder measured nothing");
        assert!(
            t.max_abs_err() < ERR_BOUND,
            "midpoint error {} exceeds documented bound {ERR_BOUND}",
            t.max_abs_err()
        );
    }

    #[test]
    fn shared_table_is_one_instance() {
        let a: *const BerTable = BerTable::shared();
        let b: *const BerTable = BerTable::shared();
        assert_eq!(a, b);
    }
}
