//! # cmap-phy — 802.11a physical-layer model
//!
//! This crate models the physical layer of the Atheros 802.11a radios used by
//! the CMAP testbed (Vutukuru et al., NSDI 2008) well enough to reproduce the
//! paper's evaluation in simulation:
//!
//! * all eight 802.11a OFDM bit-rates with exact airtime computation
//!   ([`Rate`], [`Rate::frame_airtime_ns`]),
//! * a SINR → BER → packet-error-rate chain using textbook modulation BER
//!   formulas plus a union-bound model of the IEEE 802.11 rate-1/2 / 2/3 / 3/4
//!   convolutional codes ([`error_model`]),
//! * PLCP preamble / SIGNAL-field detection probabilities used for receiver
//!   frame lock and preamble capture ([`preamble`]),
//! * decibel/linear power conversions and the link-budget helpers shared by the
//!   propagation model in `cmap-topo` ([`units`], [`propagation`]).
//!
//! The crate is pure math: it owns no randomness and no mutable global
//! state. Reception *probabilities* are computed here; the simulator
//! (`cmap-sim`) draws the Bernoulli outcomes from its deterministic per-run
//! RNG. The one shared structure, [`BerTable`], is an immutable
//! once-per-process sampling of [`ber`] for the grading hot path.

pub mod error_model;
pub mod preamble;
pub mod propagation;
pub mod rate;
pub mod table;
pub mod units;

pub use error_model::{ber, packet_success_prob, per};
pub use preamble::{preamble_success_prob, PLCP_PREAMBLE_NS, PLCP_SIG_NS};
pub use rate::{Modulation, Rate};
pub use table::BerTable;
pub use units::{dbm_to_mw, mw_to_dbm, NOISE_FLOOR_DBM};
