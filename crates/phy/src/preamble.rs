//! PLCP preamble and SIGNAL-field reception.
//!
//! A receiver can only lock onto a frame whose PLCP preamble it detects and
//! whose SIGNAL field it decodes; otherwise the frame is just interference
//! energy. 802.11a sends a 16 µs preamble followed by one 4 µs SIGNAL symbol
//! at BPSK rate-1/2 regardless of the payload rate. CMAP's note 1 observes
//! that commodity chipsets use *preamble detection* for carrier sense — this
//! module is therefore also the basis of the DCF carrier-sense model in
//! `cmap-mac80211`.

use crate::error_model::{coded_ber, modulation_ber};
use crate::rate::{CodeRate, Modulation};

/// Duration of the PLCP preamble (short+long training sequences): 16 µs.
pub const PLCP_PREAMBLE_NS: u64 = 16_000;

/// Duration of the SIGNAL field: one OFDM symbol, 4 µs.
pub const PLCP_SIG_NS: u64 = 4_000;

/// SIGNAL field payload: RATE(4) + reserved(1) + LENGTH(12) + parity(1) +
/// tail(6) = 24 bits, BPSK rate-1/2.
pub const SIG_BITS: u64 = 24;

/// Per-coded-bit SNR of the SIGNAL field given the linear SINR over the
/// 20 MHz channel. The SIGNAL symbol carries 48 coded bits in 4 µs, i.e. a
/// 12 Mbit/s coded stream.
#[inline]
fn sig_gamma(sinr: f64) -> f64 {
    sinr * crate::error_model::BANDWIDTH_HZ / 12e6
}

/// Probability that a receiver detects the preamble and decodes the SIGNAL
/// field at the given linear SINR, thereby locking onto the frame.
///
/// Model: the synchronisation itself is assumed to succeed whenever the
/// SIGNAL field would decode (training sequences are at least as robust as
/// BPSK-1/2 data), so the gate is the 24 SIGNAL bits surviving Viterbi
/// decoding at the preamble-time SINR.
pub fn preamble_success_prob(sinr: f64) -> f64 {
    if sinr <= 0.0 {
        return 0.0;
    }
    let raw = modulation_ber(Modulation::Bpsk, sig_gamma(sinr));
    let ber = coded_ber(raw, CodeRate::Half);
    if ber >= 0.5 {
        return 0.0;
    }
    ((SIG_BITS as f64) * (-ber).ln_1p()).exp()
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::units::db_to_ratio;

    #[test]
    fn preamble_detection_is_monotone() {
        let mut last = 0.0;
        for db in -10..20 {
            let p = preamble_success_prob(db_to_ratio(f64::from(db)));
            assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    fn preamble_robust_at_low_snr() {
        // The SIGNAL field must decode a couple of dB below the 6 Mbit/s
        // payload threshold: headers are salvaged where payloads die.
        assert!(preamble_success_prob(db_to_ratio(3.0)) > 0.99);
        assert!(preamble_success_prob(db_to_ratio(-5.0)) < 0.2);
        assert_eq!(preamble_success_prob(0.0), 0.0);
    }

    #[test]
    fn timing_constants() {
        assert_eq!(PLCP_PREAMBLE_NS + PLCP_SIG_NS, 20_000);
    }
}
