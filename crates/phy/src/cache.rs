//! A bounded, bit-exact memo cache for the `ber(sinr, rate)` hot path.
//!
//! Frame grading evaluates the decode BER once per interference segment of
//! every reception; within a run the same `(sinr, rate)` pairs recur
//! heavily (a topology has a fixed gain matrix, so the set of distinct
//! interference sums is small). The cache is:
//!
//! * **bit-exact** — a hit returns the very `f64` a miss computed, and the
//!   key is `(sinr.to_bits(), rate)`, so `-0.0`/`0.0`, NaN payloads and
//!   denormals never alias;
//! * **bounded and deterministic** — direct-mapped over a power-of-two
//!   slot array; a colliding insert *always* overwrites its slot
//!   (deterministic eviction, no clocks, no randomness), so the hit/miss
//!   sequence — and therefore the hit-rate counters — is a pure function
//!   of the lookup sequence;
//! * **owned per `World`** — no sharing, no locks, no cross-run leakage;
//!   parallel runs each carry their own cache.

use crate::rate::Rate;

/// Default slot count ([`BerCache::new`] for custom sizes).
pub const DEFAULT_SLOTS: usize = 4096;

/// Rate tag meaning "slot is empty" (real tags are 0..8).
const EMPTY: u8 = u8::MAX;

/// Direct-mapped memo cache for [`crate::error_model::ber`].
#[derive(Debug, Clone)]
pub struct BerCache {
    key_bits: Vec<u64>,
    key_rate: Vec<u8>,
    vals: Vec<f64>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl Default for BerCache {
    fn default() -> BerCache {
        BerCache::new(DEFAULT_SLOTS)
    }
}

impl BerCache {
    /// A cache with `slots` entries, rounded up to a power of two (min 16).
    pub fn new(slots: usize) -> BerCache {
        let slots = slots.max(16).next_power_of_two();
        BerCache {
            key_bits: vec![0; slots],
            key_rate: vec![EMPTY; slots],
            vals: vec![0.0; slots],
            mask: slots - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Slot index of a key: Fibonacci multiplicative hash of the SINR bits
    /// mixed with the rate tag, reduced by the high bits.
    #[inline]
    fn slot(&self, bits: u64, rate_tag: u8) -> usize {
        let h = (bits ^ (u64::from(rate_tag) << 56)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & self.mask
    }

    /// The information-bit error rate at linear `sinr` and `rate`: a cached
    /// value when present, otherwise computed via
    /// [`crate::error_model::ber`] and inserted (overwriting any collider).
    #[inline]
    pub fn ber(&mut self, sinr: f64, rate: Rate) -> f64 {
        let bits = sinr.to_bits();
        let tag = rate.to_u8();
        let i = self.slot(bits, tag);
        if self.key_rate[i] == tag && self.key_bits[i] == bits {
            self.hits += 1;
            return self.vals[i];
        }
        self.misses += 1;
        let v = crate::error_model::ber(sinr, rate);
        self.key_bits[i] = bits;
        self.key_rate[i] = tag;
        self.vals[i] = v;
        v
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to compute (and inserted).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Slot capacity (the eviction bound).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }
}

#[cfg(test)]
// Bit-exact equality is the property under test here.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::error_model::ber;

    #[test]
    fn hits_return_the_exact_miss_value() {
        let mut c = BerCache::new(64);
        for rate in Rate::ALL {
            for db in -100..=300 {
                let sinr = 10f64.powf(f64::from(db) / 100.0);
                let first = c.ber(sinr, rate);
                let second = c.ber(sinr, rate);
                assert_eq!(first.to_bits(), ber(sinr, rate).to_bits());
                assert_eq!(first.to_bits(), second.to_bits());
            }
        }
        assert!(c.hits() > 0 && c.misses() > 0);
    }

    #[test]
    fn capacity_rounds_up_and_bounds_memory() {
        assert_eq!(BerCache::new(0).capacity(), 16);
        assert_eq!(BerCache::new(100).capacity(), 128);
        assert_eq!(BerCache::default().capacity(), DEFAULT_SLOTS);
    }

    #[test]
    fn eviction_is_deterministic_overwrite() {
        // Force collisions in a tiny cache: with 16 slots, >16 distinct
        // keys must evict. Replaying the same lookup sequence twice must
        // produce identical hit/miss counts and identical values.
        let run = || {
            let mut c = BerCache::new(16);
            let mut vals = Vec::new();
            for pass in 0..3 {
                let _ = pass;
                for k in 0..40u32 {
                    let sinr = 1.0 + f64::from(k) * 0.37;
                    vals.push(c.ber(sinr, Rate::R6).to_bits());
                }
            }
            (vals, c.hits(), c.misses())
        };
        let (vals_a, hits_a, misses_a) = run();
        let (vals_b, hits_b, misses_b) = run();
        assert_eq!(vals_a, vals_b);
        assert_eq!(hits_a, hits_b);
        assert_eq!(misses_a, misses_b);
        // The bound really evicted: three passes over 40 keys in 16 slots
        // cannot all hit after the first pass.
        assert!(misses_a > 40, "expected evictions, misses={misses_a}");
        // And every value, hit or recomputed, is the exact function value.
        for (j, &v) in vals_a.iter().enumerate() {
            let sinr = 1.0 + f64::from(j as u32 % 40) * 0.37;
            assert_eq!(v, ber(sinr, Rate::R6).to_bits());
        }
    }

    #[test]
    fn negative_zero_does_not_alias_zero() {
        let mut c = BerCache::new(64);
        let a = c.ber(0.0, Rate::R6);
        let b = c.ber(-0.0, Rate::R6);
        assert_eq!(a.to_bits(), ber(0.0, Rate::R6).to_bits());
        assert_eq!(b.to_bits(), ber(-0.0, Rate::R6).to_bits());
        assert_eq!(c.misses(), 2, "-0.0 must occupy its own key");
    }
}
