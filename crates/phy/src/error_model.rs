//! SINR → bit-error-rate → packet-error-rate chain for 802.11a OFDM.
//!
//! The model follows the approach of the widely used NIST error-rate model
//! (Pal, Miller et al.; also the default in ns-3): per-modulation uncoded
//! BER from the per-coded-bit SNR, then a union bound over the weight
//! spectrum of the IEEE K=7 convolutional code using the Bhattacharyya
//! parameter `D = sqrt(4p(1-p))`, and finally
//! `PER = 1 - (1 - BER_coded)^bits`.
//!
//! Absolute accuracy of a fraction of a dB is irrelevant for the CMAP
//! reproduction — what matters is the *relative* shape: each rate has a sharp
//! SINR threshold, higher rates need higher SINR (this drives Fig 20's
//! "fewer exposed-terminal opportunities at higher bit-rates"), and longer
//! frames are more fragile (this drives header/trailer salvage, Fig 5/16).

use crate::rate::{CodeRate, Modulation, Rate};

/// Receiver channel bandwidth in Hz (802.11a, 20 MHz).
pub const BANDWIDTH_HZ: f64 = 20e6;

/// Complementary error function.
///
/// Rational approximation from Abramowitz & Stegun 7.1.26 (max absolute
/// error 1.5e-7), extended to negative arguments via `erfc(-x) = 2 - erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Gaussian tail probability `Q(x) = P[N(0,1) > x]`.
#[inline]
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Uncoded BER of a modulation at a given SNR **per coded bit** (linear).
///
/// Standard Gray-coded AWGN approximations:
/// * BPSK/QPSK: `Q(sqrt(2γ))`
/// * 16-QAM:    `(3/4)·Q(sqrt(4γ/5))`
/// * 64-QAM:    `(7/12)·Q(sqrt(2γ/7))`
pub fn modulation_ber(modulation: Modulation, gamma_bit: f64) -> f64 {
    if gamma_bit <= 0.0 {
        return 0.5;
    }
    let ber = match modulation {
        Modulation::Bpsk | Modulation::Qpsk => q_func((2.0 * gamma_bit).sqrt()),
        Modulation::Qam16 => 0.75 * q_func((0.8 * gamma_bit).sqrt()),
        Modulation::Qam64 => (7.0 / 12.0) * q_func((2.0 * gamma_bit / 7.0).sqrt()),
    };
    ber.min(0.5)
}

/// Union-bound weight spectrum of the K=7 convolutional code at one
/// puncturing, pre-arranged for Horner evaluation: every tabulated distance
/// is `first + i * step`, so the bound
/// `Σ coeffs[i] · D^(first + i·step)` factors into
/// `D^first · P(D^step)` with `P` an ordinary polynomial. This turns the
/// per-call loop of `powi(dist)` calls (the old shape, ~10 `powi` per BER
/// evaluation on the reception hot path) into exactly two `powi` plus a
/// fused multiply-add chain, with no per-call table construction.
struct CodeSpectrum {
    /// Free distance of the code (lowest tabulated distance).
    first: i32,
    /// Distance increment between consecutive coefficients.
    step: i32,
    /// Error-weight coefficients, lowest distance first.
    coeffs: &'static [f64],
    /// Union-bound normalisation (1 / puncturing-period input bits).
    scale: f64,
}

/// The standard tabulated spectra (Frenger et al.), also used by the NIST
/// model. Rate 1/2 has only even distances; the punctured rates step by 1.
fn code_spectrum(code: CodeRate) -> &'static CodeSpectrum {
    const HALF: CodeSpectrum = CodeSpectrum {
        first: 10,
        step: 2,
        coeffs: &[
            36.0,
            211.0,
            1404.0,
            11633.0,
            77433.0,
            502_690.0,
            3_322_763.0,
            21_292_910.0,
            134_365_911.0,
        ],
        scale: 0.5,
    };
    const TWO_THIRDS: CodeSpectrum = CodeSpectrum {
        first: 6,
        step: 1,
        coeffs: &[
            3.0,
            70.0,
            285.0,
            1276.0,
            6160.0,
            27128.0,
            117_019.0,
            498_860.0,
            2_103_891.0,
            8_784_123.0,
        ],
        scale: 1.0 / 4.0,
    };
    const THREE_QUARTERS: CodeSpectrum = CodeSpectrum {
        first: 5,
        step: 1,
        coeffs: &[
            42.0,
            201.0,
            1492.0,
            10469.0,
            62935.0,
            379_644.0,
            2_253_373.0,
            13_073_811.0,
            75_152_755.0,
            428_005_675.0,
        ],
        scale: 1.0 / 6.0,
    };
    match code {
        CodeRate::Half => &HALF,
        CodeRate::TwoThirds => &TWO_THIRDS,
        CodeRate::ThreeQuarters => &THREE_QUARTERS,
    }
}

/// Post-Viterbi BER given the raw channel BER `p` and the code rate, via the
/// Bhattacharyya union bound. Saturates at 0.5.
///
/// `D = sqrt(4p(1-p)) ∈ (0, 1]`, so the Horner accumulation below is
/// numerically benign (every partial result is bounded by the coefficient
/// sum) and needs no early-exit guard: the 0.5 clamp already absorbs the
/// saturated regime.
pub fn coded_ber(p: f64, code: CodeRate) -> f64 {
    coded_ber_union_bound(p, code).min(0.5)
}

/// The raw union-bound sum behind [`coded_ber`], *before* the 0.5
/// saturation (it can exceed 0.5 by orders of magnitude near `p = 0.5`).
///
/// Exposed so the BER interpolation tables (`cmap_phy::table`) can sample
/// the smooth unsaturated curve: interpolating across the saturation kink
/// would cost ~1e-2 absolute error at the corner, while interpolating the
/// smooth bound and saturating *after* reproduces the clamp exactly.
pub fn coded_ber_union_bound(p: f64, code: CodeRate) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    let p = p.min(0.5);
    let d = (4.0 * p * (1.0 - p)).sqrt();
    let sp = code_spectrum(code);
    let x = d.powi(sp.step);
    let mut acc = 0.0;
    for &c in sp.coeffs.iter().rev() {
        acc = acc * x + c;
    }
    sp.scale * acc * d.powi(sp.first)
}

/// Per-coded-bit SNR for a transmission at `rate` received with linear `sinr`.
///
/// Coded bits stream at `bit_rate / code_rate`; despreading the 20 MHz channel
/// onto that stream gives `γ_c = SINR · B / R_coded`.
#[inline]
pub fn gamma_per_coded_bit(sinr: f64, rate: Rate) -> f64 {
    let coded_bit_rate = rate.bits_per_sec() as f64 / rate.code_rate().ratio();
    sinr * BANDWIDTH_HZ / coded_bit_rate
}

/// Information-bit error rate after decoding, for a given linear SINR.
pub fn ber(sinr: f64, rate: Rate) -> f64 {
    ber_union_bound(sinr, rate).min(0.5)
}

/// [`ber`] before its final 0.5 saturation — the smooth curve the BER
/// interpolation tables sample (see [`coded_ber_union_bound`]).
pub fn ber_union_bound(sinr: f64, rate: Rate) -> f64 {
    let gamma = gamma_per_coded_bit(sinr, rate);
    let raw = modulation_ber(rate.modulation(), gamma);
    coded_ber_union_bound(raw, rate.code_rate())
}

/// Probability that `bits` information bits all decode correctly at the given
/// linear SINR (i.e. the complement of the PER for that span of bits).
///
/// Computed in log space so very small error rates don't underflow to 1.
pub fn bits_success_prob(sinr: f64, rate: Rate, bits: u64) -> f64 {
    if bits == 0 {
        return 1.0;
    }
    let b = ber(sinr, rate);
    if b >= 0.5 {
        // Channel is pure noise for this span; a frame of any real length dies.
        return 0.5f64.powf(bits.min(64) as f64);
    }
    ((bits as f64) * (-b).ln_1p()).exp()
}

/// Packet error rate of a PSDU of `psdu_bytes` at the given linear SINR,
/// counting SERVICE and tail bits like the real PLCP does.
pub fn per(sinr: f64, rate: Rate, psdu_bytes: usize) -> f64 {
    let bits = crate::rate::SERVICE_BITS + 8 * psdu_bytes as u64 + crate::rate::TAIL_BITS;
    1.0 - bits_success_prob(sinr, rate, bits)
}

/// Packet success probability; convenience complement of [`per`].
pub fn packet_success_prob(sinr: f64, rate: Rate, psdu_bytes: usize) -> f64 {
    1.0 - per(sinr, rate, psdu_bytes)
}

/// Linear SINR required to achieve a target packet success probability for a
/// given frame, found by bisection. Used by topology calibration and tests.
pub fn sinr_for_success_prob(target: f64, rate: Rate, psdu_bytes: usize) -> f64 {
    assert!((0.0..1.0).contains(&target) && target > 0.0);
    let (mut lo, mut hi) = (1e-3f64, 1e6f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if packet_success_prob(mid, rate, psdu_bytes) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::units::{db_to_ratio, ratio_to_db};

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(1) ~ 0.15730, erfc(2) ~ 0.004678
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(2.0) - 0.004678).abs() < 1e-5);
        assert!((erfc(-1.0) - (2.0 - 0.157299)).abs() < 1e-5);
    }

    #[test]
    fn q_func_reference_values() {
        assert!((q_func(0.0) - 0.5).abs() < 1e-9);
        assert!((q_func(1.0) - 0.158655).abs() < 1e-4);
        assert!((q_func(3.0) - 0.001350).abs() < 1e-5);
    }

    #[test]
    fn ber_monotonic_in_sinr() {
        for rate in Rate::ALL {
            let mut last = f64::INFINITY;
            for db in -10..30 {
                let b = ber(db_to_ratio(f64::from(db)), rate);
                assert!(b <= last + 1e-15, "{rate} BER not monotone at {db} dB");
                last = b;
            }
        }
    }

    #[test]
    fn higher_rates_need_more_sinr() {
        // The SINR needed for 90% success of a 1400-byte frame must strictly
        // increase along the rate ladder (this is what shrinks the set of
        // exposed-terminal opportunities at higher bit-rates, Fig 20).
        let mut last = 0.0;
        for rate in Rate::ALL {
            let s = sinr_for_success_prob(0.9, rate, 1400);
            assert!(s > last, "{rate} threshold {s} not above previous {last}");
            last = s;
        }
    }

    #[test]
    fn rate_thresholds_are_plausible() {
        // 6 Mbit/s should decode a 1400-byte frame around a few dB of SINR;
        // 54 Mbit/s should need roughly 17-26 dB. Wide tolerances: this pins
        // the model to reality without over-fitting.
        let s6 = ratio_to_db(sinr_for_success_prob(0.9, Rate::R6, 1400));
        let s54 = ratio_to_db(sinr_for_success_prob(0.9, Rate::R54, 1400));
        assert!((0.0..6.0).contains(&s6), "R6 threshold {s6} dB");
        assert!((15.0..28.0).contains(&s54), "R54 threshold {s54} dB");
    }

    #[test]
    fn per_increases_with_length() {
        let sinr = db_to_ratio(2.0);
        let mut last = 0.0;
        for len in [24, 100, 500, 1400] {
            let p = per(sinr, Rate::R6, len);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn short_frames_survive_where_long_frames_die() {
        // Core premise of header/trailer salvage (Fig 5): pick the SINR where
        // a 1400-byte frame is mostly lost and check a 24-byte header still
        // mostly gets through.
        let sinr = sinr_for_success_prob(0.10, Rate::R6, 1400);
        let hdr = packet_success_prob(sinr, Rate::R6, 24);
        assert!(hdr > 0.85, "24-byte success only {hdr}");
    }

    #[test]
    fn zero_sinr_kills_everything() {
        assert!(per(0.0, Rate::R6, 100) > 0.999999);
        assert!(bits_success_prob(0.0, Rate::R6, 0) == 1.0);
    }

    #[test]
    fn high_sinr_is_clean() {
        let sinr = db_to_ratio(30.0);
        for rate in Rate::ALL {
            assert!(per(sinr, rate, 1400) < 1e-9, "{rate}");
        }
    }

    #[test]
    fn coded_ber_saturates_and_vanishes() {
        for code in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            assert_eq!(coded_ber(0.0, code), 0.0);
            assert!(coded_ber(0.5, code) <= 0.5);
            assert!(coded_ber(0.4, code) > coded_ber(1e-4, code));
        }
    }

    #[test]
    fn horner_matches_naive_union_bound() {
        // The factored Horner evaluation must agree with the textbook
        // per-distance powi sum it replaced.
        for code in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let sp = code_spectrum(code);
            for p in [1e-8f64, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.3, 0.5] {
                let d = (4.0 * p * (1.0 - p)).sqrt();
                let naive: f64 = sp
                    .coeffs
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| c * d.powi(sp.first + i as i32 * sp.step))
                    .sum();
                let naive = (sp.scale * naive).min(0.5);
                let got = coded_ber(p, code);
                assert!(
                    (got - naive).abs() <= 1e-12 * naive.max(1e-300),
                    "{code:?} p={p}: horner {got} vs naive {naive}"
                );
            }
        }
    }

    #[test]
    fn coding_helps_at_moderate_snr() {
        // At the same per-coded-bit SNR, rate 1/2 must beat rate 3/4.
        let p = 0.01;
        assert!(coded_ber(p, CodeRate::Half) < coded_ber(p, CodeRate::ThreeQuarters));
    }

    #[test]
    fn bisection_inverts_per() {
        for rate in [Rate::R6, Rate::R18, Rate::R54] {
            let s = sinr_for_success_prob(0.5, rate, 1400);
            let got = packet_success_prob(s, rate, 1400);
            assert!((got - 0.5).abs() < 0.01, "{rate}: {got}");
        }
    }
}
