//! Power unit conversions and radio constants.
//!
//! All medium-level arithmetic in the simulator is done in **linear
//! milliwatts** (sums of interferer powers are linear); human-facing
//! configuration is in **dBm**. These helpers convert between the two and
//! define the thermal-noise floor of a 20 MHz 802.11a receiver.

/// Thermal noise floor of a 20 MHz 802.11a channel in dBm.
///
/// kTB at 290 K is -174 dBm/Hz; a 20 MHz channel adds
/// `10·log10(20e6) ≈ 73 dB`, and we budget a 7 dB receiver noise figure
/// (typical for the Atheros AR5212 used in the paper's testbed):
/// `-174 + 73 + 7 = -94 dBm`.
pub const NOISE_FLOOR_DBM: f64 = -94.0;

/// Speed of light in metres per second, used for propagation delay.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Convert a power in dBm to linear milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Convert a power in linear milliwatts to dBm.
///
/// Zero or negative inputs (an "off" signal) map to `f64::NEG_INFINITY`
/// rather than NaN so comparisons against thresholds behave sensibly.
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * mw.log10()
    }
}

/// Convert a dimensionless gain/loss in dB to a linear ratio.
#[inline]
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear ratio to dB (`NEG_INFINITY` for non-positive ratios).
#[inline]
pub fn ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Thermal noise floor in linear milliwatts (see [`NOISE_FLOOR_DBM`]).
#[inline]
pub fn noise_floor_mw() -> f64 {
    dbm_to_mw(NOISE_FLOOR_DBM)
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-120.0, -94.0, -60.0, 0.0, 20.0] {
            let back = mw_to_dbm(dbm_to_mw(dbm));
            assert!((back - dbm).abs() < 1e-9, "{dbm} -> {back}");
        }
    }

    #[test]
    fn zero_mw_is_negative_infinity_dbm() {
        assert_eq!(mw_to_dbm(0.0), f64::NEG_INFINITY);
        assert_eq!(mw_to_dbm(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn reference_points() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
        assert!((dbm_to_mw(-30.0) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn db_ratio_roundtrip() {
        for db in [-40.0, -3.0, 0.0, 3.0, 40.0] {
            assert!((ratio_to_db(db_to_ratio(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_floor_matches_constant() {
        assert!((mw_to_dbm(noise_floor_mw()) - NOISE_FLOOR_DBM).abs() < 1e-9);
    }

    #[test]
    fn linear_sum_dominates_correctly() {
        // Two equal interferers add 3 dB.
        let one = dbm_to_mw(-80.0);
        let sum_dbm = mw_to_dbm(one + one);
        assert!((sum_dbm - (-77.0)).abs() < 0.02);
    }
}
