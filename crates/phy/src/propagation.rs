//! Large-scale propagation: log-distance path loss for the 5 GHz indoor band.
//!
//! The paper's testbed is one large office floor (Fig 10) in the 5 GHz
//! 802.11a band. We model the *median* path loss here; per-link lognormal
//! shadowing (which produces the testbed's highly irregular link-quality
//! population, §5.1) is added by `cmap-topo` so it can be frozen per link
//! and made slightly asymmetric.

/// Carrier frequency of 802.11a channel 48, in Hz.
pub const CARRIER_HZ: f64 = 5.24e9;

/// Reference distance for the log-distance model, metres.
pub const REF_DISTANCE_M: f64 = 1.0;

/// Default path-loss exponent for a cluttered office floor.
pub const DEFAULT_PATH_LOSS_EXPONENT: f64 = 3.3;

/// Free-space path loss at [`REF_DISTANCE_M`] for [`CARRIER_HZ`], in dB:
/// `20·log10(4π·d0·f/c)`.
pub fn reference_loss_db() -> f64 {
    let c = crate::units::SPEED_OF_LIGHT_M_PER_S;
    20.0 * (4.0 * std::f64::consts::PI * REF_DISTANCE_M * CARRIER_HZ / c).log10()
}

/// Median path loss in dB over `distance_m` metres with the given exponent.
///
/// Distances below the reference distance clamp to the reference loss (the
/// model is not meant for near-field geometry).
pub fn path_loss_db(distance_m: f64, exponent: f64) -> f64 {
    let d = distance_m.max(REF_DISTANCE_M);
    reference_loss_db() + 10.0 * exponent * (d / REF_DISTANCE_M).log10()
}

/// Received signal strength in dBm for a transmit power and distance.
pub fn rss_dbm(tx_power_dbm: f64, distance_m: f64, exponent: f64) -> f64 {
    tx_power_dbm - path_loss_db(distance_m, exponent)
}

/// One-way propagation delay over `distance_m`, in nanoseconds (rounded up so
/// that a nonzero distance never yields a zero delay).
pub fn propagation_delay_ns(distance_m: f64) -> u64 {
    let secs = distance_m / crate::units::SPEED_OF_LIGHT_M_PER_S;
    (secs * 1e9).ceil() as u64
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn reference_loss_is_about_47_db() {
        let l = reference_loss_db();
        assert!((46.0..48.0).contains(&l), "{l}");
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let mut last = 0.0;
        for d in [1.0, 2.0, 5.0, 10.0, 30.0, 60.0] {
            let l = path_loss_db(d, DEFAULT_PATH_LOSS_EXPONENT);
            assert!(l > last);
            last = l;
        }
    }

    #[test]
    fn exponent_slope() {
        // Doubling distance with exponent n adds 10·n·log10(2) ≈ 3.01·n dB.
        let a = path_loss_db(10.0, 3.0);
        let b = path_loss_db(20.0, 3.0);
        assert!((b - a - 9.03).abs() < 0.01);
    }

    #[test]
    fn near_field_clamps() {
        assert_eq!(
            path_loss_db(0.1, DEFAULT_PATH_LOSS_EXPONENT),
            path_loss_db(1.0, DEFAULT_PATH_LOSS_EXPONENT)
        );
    }

    #[test]
    fn typical_office_link_budget() {
        // At 15 dBm tx power and 20 m, the RSS should land in the usable
        // range for 6 Mbit/s (noise floor -94 dBm, threshold a few dB above).
        let rss = rss_dbm(15.0, 20.0, DEFAULT_PATH_LOSS_EXPONENT);
        assert!((-94.0..-60.0).contains(&rss), "{rss}");
    }

    #[test]
    fn delay_rounds_up() {
        assert!(propagation_delay_ns(1.0) >= 3);
        assert_eq!(propagation_delay_ns(0.0), 0);
        // 30 m is about 100 ns.
        let d = propagation_delay_ns(30.0);
        assert!((100..=101).contains(&d), "{d}");
    }
}
