//! 802.11a OFDM bit-rates, modulations and airtime computation.
//!
//! 802.11a transmits OFDM symbols of 4 µs carrying `n_dbps` data bits each,
//! preceded by a 16 µs PLCP preamble and a 4 µs SIGNAL field (always BPSK
//! rate-1/2). The PSDU is wrapped with a 16-bit SERVICE field and 6 tail
//! bits before being split into symbols (IEEE 802.11-2007 §17.3.2).

/// Subcarrier modulation of an 802.11a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying, 1 coded bit per subcarrier.
    Bpsk,
    /// Quadrature phase-shift keying, 2 coded bits per subcarrier.
    Qpsk,
    /// 16-point quadrature amplitude modulation, 4 coded bits per subcarrier.
    Qam16,
    /// 64-point quadrature amplitude modulation, 6 coded bits per subcarrier.
    Qam64,
}

/// Convolutional code rate of an 802.11a rate (IEEE K=7 code, punctured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (mother code).
    Half,
    /// Rate 2/3 (punctured).
    TwoThirds,
    /// Rate 3/4 (punctured).
    ThreeQuarters,
}

impl CodeRate {
    /// The fraction of coded bits that carry data.
    pub fn ratio(self) -> f64 {
        match self {
            CodeRate::Half => 0.5,
            CodeRate::TwoThirds => 2.0 / 3.0,
            CodeRate::ThreeQuarters => 0.75,
        }
    }
}

/// One of the eight 802.11a OFDM bit-rates.
///
/// The paper's experiments use [`Rate::R6`], [`Rate::R12`] and [`Rate::R18`]
/// (§5.8); the full set is modelled so the library generalises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rate {
    /// 6 Mbit/s — BPSK, rate 1/2.
    R6,
    /// 9 Mbit/s — BPSK, rate 3/4.
    R9,
    /// 12 Mbit/s — QPSK, rate 1/2.
    R12,
    /// 18 Mbit/s — QPSK, rate 3/4.
    R18,
    /// 24 Mbit/s — 16-QAM, rate 1/2.
    R24,
    /// 36 Mbit/s — 16-QAM, rate 3/4.
    R36,
    /// 48 Mbit/s — 64-QAM, rate 2/3.
    R48,
    /// 54 Mbit/s — 64-QAM, rate 3/4.
    R54,
}

/// Duration of one OFDM symbol in nanoseconds.
pub const OFDM_SYMBOL_NS: u64 = 4_000;

/// SERVICE field bits prepended to the PSDU before encoding.
pub const SERVICE_BITS: u64 = 16;

/// Convolutional-encoder tail bits appended after the PSDU.
pub const TAIL_BITS: u64 = 6;

impl Rate {
    /// All rates, slowest first.
    pub const ALL: [Rate; 8] = [
        Rate::R6,
        Rate::R9,
        Rate::R12,
        Rate::R18,
        Rate::R24,
        Rate::R36,
        Rate::R48,
        Rate::R54,
    ];

    /// The lowest (most robust) rate; control frames and CMAP header/trailer,
    /// interferer-list and ACK packets are always sent at this rate (§5.8).
    pub const BASE: Rate = Rate::R6;

    /// Net data rate in bits per second.
    pub fn bits_per_sec(self) -> u64 {
        match self {
            Rate::R6 => 6_000_000,
            Rate::R9 => 9_000_000,
            Rate::R12 => 12_000_000,
            Rate::R18 => 18_000_000,
            Rate::R24 => 24_000_000,
            Rate::R36 => 36_000_000,
            Rate::R48 => 48_000_000,
            Rate::R54 => 54_000_000,
        }
    }

    /// Net data rate in Mbit/s.
    pub fn mbps(self) -> f64 {
        self.bits_per_sec() as f64 / 1e6
    }

    /// Subcarrier modulation.
    pub fn modulation(self) -> Modulation {
        match self {
            Rate::R6 | Rate::R9 => Modulation::Bpsk,
            Rate::R12 | Rate::R18 => Modulation::Qpsk,
            Rate::R24 | Rate::R36 => Modulation::Qam16,
            Rate::R48 | Rate::R54 => Modulation::Qam64,
        }
    }

    /// Convolutional code rate.
    pub fn code_rate(self) -> CodeRate {
        match self {
            Rate::R6 | Rate::R12 | Rate::R24 => CodeRate::Half,
            Rate::R48 => CodeRate::TwoThirds,
            Rate::R9 | Rate::R18 | Rate::R36 | Rate::R54 => CodeRate::ThreeQuarters,
        }
    }

    /// Data bits per OFDM symbol (`N_DBPS`).
    pub fn n_dbps(self) -> u64 {
        match self {
            Rate::R6 => 24,
            Rate::R9 => 36,
            Rate::R12 => 48,
            Rate::R18 => 72,
            Rate::R24 => 96,
            Rate::R36 => 144,
            Rate::R48 => 192,
            Rate::R54 => 216,
        }
    }

    /// Airtime of the PSDU portion only (SERVICE + payload + tail, padded to
    /// whole OFDM symbols), in nanoseconds. Excludes preamble and SIGNAL.
    pub fn psdu_airtime_ns(self, psdu_bytes: usize) -> u64 {
        let bits = SERVICE_BITS + 8 * psdu_bytes as u64 + TAIL_BITS;
        let symbols = bits.div_ceil(self.n_dbps());
        symbols * OFDM_SYMBOL_NS
    }

    /// Total airtime of a frame carrying `psdu_bytes` of MAC-layer bytes at
    /// this rate, including the 16 µs PLCP preamble and 4 µs SIGNAL field.
    pub fn frame_airtime_ns(self, psdu_bytes: usize) -> u64 {
        crate::preamble::PLCP_PREAMBLE_NS
            + crate::preamble::PLCP_SIG_NS
            + self.psdu_airtime_ns(psdu_bytes)
    }

    /// Next rate down, or `None` at the base rate. Useful for simple rate
    /// adaptation experiments built on top of the library.
    pub fn step_down(self) -> Option<Rate> {
        let idx = Rate::ALL
            .iter()
            .position(|&r| r == self)
            .expect("Rate::ALL lists every variant");
        idx.checked_sub(1).map(|i| Rate::ALL[i])
    }

    /// Next rate up, or `None` at 54 Mbit/s.
    pub fn step_up(self) -> Option<Rate> {
        let idx = Rate::ALL.iter().position(|&r| r == self).unwrap();
        Rate::ALL.get(idx + 1).copied()
    }

    /// Compact wire encoding (3 bits used); see `cmap-wire`.
    pub fn to_u8(self) -> u8 {
        Rate::ALL
            .iter()
            .position(|&r| r == self)
            .expect("Rate::ALL lists every variant") as u8
    }

    /// Inverse of [`Rate::to_u8`]; `None` for out-of-range values.
    pub fn from_u8(v: u8) -> Option<Rate> {
        Rate::ALL.get(v as usize).copied()
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Mbit/s", self.bits_per_sec() / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbps_consistent_with_rate() {
        // n_dbps * symbols/sec (250k) == bit rate
        for r in Rate::ALL {
            assert_eq!(r.n_dbps() * 250_000, r.bits_per_sec());
        }
    }

    #[test]
    fn airtime_1400_bytes_at_6mbps() {
        // 16 + 11200 + 6 = 11222 bits / 24 = 467.58 -> 468 symbols = 1872 us.
        assert_eq!(Rate::R6.psdu_airtime_ns(1400), 468 * 4_000);
        // plus 20 us PLCP
        assert_eq!(Rate::R6.frame_airtime_ns(1400), 1_872_000 + 20_000);
    }

    #[test]
    fn airtime_monotonic_in_length() {
        for r in Rate::ALL {
            let mut last = 0;
            for len in [0, 1, 24, 100, 512, 1400, 2304] {
                let t = r.frame_airtime_ns(len);
                assert!(t >= last);
                last = t;
            }
        }
    }

    #[test]
    fn airtime_decreases_with_rate() {
        let mut last = u64::MAX;
        for r in Rate::ALL {
            let t = r.frame_airtime_ns(1400);
            assert!(t < last, "{r} not faster than previous");
            last = t;
        }
    }

    #[test]
    fn empty_psdu_still_costs_one_symbol() {
        // SERVICE+tail = 22 bits, always at least 1 symbol.
        assert_eq!(Rate::R6.psdu_airtime_ns(0), 4_000);
        assert_eq!(Rate::R54.psdu_airtime_ns(0), 4_000);
    }

    #[test]
    fn u8_roundtrip() {
        for r in Rate::ALL {
            assert_eq!(Rate::from_u8(r.to_u8()), Some(r));
        }
        assert_eq!(Rate::from_u8(8), None);
    }

    #[test]
    fn step_up_down_are_inverses() {
        for r in Rate::ALL {
            if let Some(up) = r.step_up() {
                assert_eq!(up.step_down(), Some(r));
            }
            if let Some(down) = r.step_down() {
                assert_eq!(down.step_up(), Some(r));
            }
        }
        assert_eq!(Rate::R6.step_down(), None);
        assert_eq!(Rate::R54.step_up(), None);
    }

    #[test]
    fn code_rate_ratios() {
        assert!((CodeRate::Half.ratio() - 0.5).abs() < 1e-12);
        assert!((CodeRate::TwoThirds.ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((CodeRate::ThreeQuarters.ratio() - 0.75).abs() < 1e-12);
    }
}
