//! 802.11a MAC timing constants.

use cmap_sim::time::{micros, Time};

/// Slot time: 9 µs.
pub const SLOT_NS: Time = micros(9);

/// Short interframe space: 16 µs.
pub const SIFS_NS: Time = micros(16);

/// DCF interframe space: SIFS + 2 slots = 34 µs.
pub const DIFS_NS: Time = SIFS_NS + 2 * SLOT_NS;

/// Minimum contention window (slots) for 802.11a.
pub const CW_MIN: u32 = 15;

/// Maximum contention window (slots).
pub const CW_MAX: u32 = 1023;

/// Default retry limit before a frame is dropped.
pub const RETRY_LIMIT: u32 = 7;

/// Extended interframe space: used instead of DIFS after a reception the
/// PHY could not decode, protecting a possible ACK exchange the station
/// missed. `EIFS = SIFS + ACK airtime at the base rate + DIFS` ≈ 94 µs.
pub const EIFS_NS: Time = SIFS_NS + micros(44) + DIFS_NS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_is_sifs_plus_two_slots() {
        assert_eq!(DIFS_NS, 34_000);
        assert_eq!(SIFS_NS, 16_000);
        assert_eq!(SLOT_NS, 9_000);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariant, cheap to keep as a test
    fn eifs_exceeds_difs() {
        assert!(EIFS_NS > DIFS_NS);
        assert_eq!(EIFS_NS, 16_000 + 44_000 + 34_000);
    }

    #[test]
    fn cw_bounds_are_powers_of_two_minus_one() {
        assert_eq!((CW_MIN + 1).count_ones(), 1);
        assert_eq!((CW_MAX + 1).count_ones(), 1);
        const { assert!(CW_MIN < CW_MAX) };
    }
}
